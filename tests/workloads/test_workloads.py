"""Workload generators: device counts and structural properties."""

import pytest

from repro import extract
from repro.analysis import layout_stats
from repro.workloads import (
    CHIP_SPECS,
    build_chip,
    chip_suite,
    inverter_rows,
    mirrored_array,
    poly_diff_mesh,
    random_squares,
    transistor_array,
)
from repro.cif.writer import write as write_cif
from repro.wirelist import circuit_to_flat, compare_netlists


class TestArrays:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_cell_count(self, n):
        circuit = extract(transistor_array(n))
        assert len(circuit.devices) == n * n

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            transistor_array(6)

    def test_hierarchy_flag_preserves_netlist(self):
        hier = extract(transistor_array(4, hierarchical=True))
        flat = extract(transistor_array(4, hierarchical=False))
        report = compare_netlists(circuit_to_flat(hier), circuit_to_flat(flat))
        assert report.equivalent, report.reason

    def test_mirrored_array_counts(self):
        circuit = extract(mirrored_array(3))
        assert len(circuit.devices) == 9


class TestRows:
    def test_device_count(self):
        circuit = extract(inverter_rows(3, 5))
        assert len(circuit.devices) == 30

    def test_chain_connectivity(self):
        # Each row is a chain: stage k's output is stage k+1's gate net.
        circuit = extract(inverter_rows(1, 3))
        enh = [d for d in circuit.devices if d.kind == "nEnh"]
        gates = {d.gate for d in enh}
        outputs = set()
        for d in enh:
            outputs.update((d.source, d.drain))
        # Two of the three gates are driven by chain predecessors.
        assert len(gates & outputs) == 2

    def test_rails_named(self):
        circuit = extract(inverter_rows(2, 2))
        names = {name for net in circuit.nets for name in net.names}
        assert {"VDD", "GND", "IN0", "IN1", "OUT0", "OUT1"} <= names

    def test_rows_electrically_separate(self):
        circuit = extract(inverter_rows(2, 2))
        vdd_nets = [n for n in circuit.nets if "VDD" in n.names]
        assert len(vdd_nets) == 2


class TestMesh:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_quadratic_devices(self, n):
        layout = poly_diff_mesh(n)
        stats = layout_stats(layout)
        assert stats.boxes == 2 * n
        circuit = extract(layout)
        assert len(circuit.devices) == n * n

    def test_size_validation(self):
        with pytest.raises(ValueError):
            poly_diff_mesh(0)


class TestRandomModel:
    def test_deterministic_by_seed(self):
        a = layout_stats(random_squares(100, seed=7))
        b = layout_stats(random_squares(100, seed=7))
        assert a.boxes == b.boxes == 100
        assert a.boxes_by_layer == b.boxes_by_layer

    def test_seed_changes_layout(self):
        a = random_squares(100, seed=1)
        b = random_squares(100, seed=2)
        assert (
            layout_stats(a).boxes_by_layer != layout_stats(b).boxes_by_layer
            or extract(a).stats_line() != extract(b).stats_line()
        )

    def test_region_scales_with_sqrt_n(self):
        from repro.tech import DEFAULT_LAMBDA
        from repro.workloads.model import BOX_EDGE

        edge = BOX_EDGE * DEFAULT_LAMBDA
        small = layout_stats(random_squares(400, seed=3)).width - edge
        large = layout_stats(random_squares(25600, seed=3)).width - edge
        # Placement region side grows as sqrt(N): 8x for 64x the boxes.
        assert large / small == pytest.approx(8, rel=0.15)


class TestChips:
    def test_specs_cover_table_5_1(self):
        names = [spec.name for spec in CHIP_SPECS]
        assert names == [
            "cherry",
            "dchip",
            "schip2",
            "testram",
            "psc",
            "scheme81",
            "riscb",
        ]

    @pytest.mark.parametrize("name", ["cherry", "schip2", "testram", "riscb"])
    def test_device_count_near_target(self, name):
        scale = 0.05
        spec = next(s for s in CHIP_SPECS if s.name == name)
        circuit = extract(build_chip(name, scale))
        target = spec.paper_devices * scale
        assert len(circuit.devices) == pytest.approx(target, rel=0.25)

    def test_no_extraction_warnings(self):
        circuit = extract(build_chip("dchip", scale=0.05))
        assert circuit.warnings == []

    def test_unknown_chip(self):
        with pytest.raises(KeyError):
            build_chip("nonesuch")

    def test_suite_subset(self):
        suite = chip_suite(scale=0.02, names=("cherry", "testram"))
        assert set(suite) == {"cherry", "testram"}

    def test_deterministic(self):
        a = extract(build_chip("psc", scale=0.02))
        b = extract(build_chip("psc", scale=0.02))
        assert len(a.devices) == len(b.devices)
        assert len(a.nets) == len(b.nets)


class TestSeedThreading:
    def test_explicit_seed_is_deterministic(self):
        a = write_cif(build_chip("schip2", scale=0.02, seed=42))
        b = write_cif(build_chip("schip2", scale=0.02, seed=42))
        assert a == b

    def test_seed_changes_irregular_artwork(self):
        base = write_cif(build_chip("schip2", scale=0.02))
        reseeded = write_cif(build_chip("schip2", scale=0.02, seed=42))
        assert base != reseeded

    def test_default_seed_is_the_spec_seed(self):
        spec = next(s for s in CHIP_SPECS if s.name == "psc")
        implicit = write_cif(build_chip("psc", scale=0.02))
        explicit = write_cif(build_chip("psc", scale=0.02, seed=spec.seed))
        assert implicit == explicit

    def test_suite_seed_keeps_chips_distinct(self):
        suite = chip_suite(scale=0.02, names=("schip2", "psc"), seed=9)
        resuite = chip_suite(scale=0.02, names=("schip2", "psc"), seed=9)
        assert write_cif(suite["schip2"]) == write_cif(resuite["schip2"])
        assert write_cif(suite["schip2"]) != write_cif(suite["psc"])

    def test_reseeded_chip_still_extracts_clean(self):
        circuit = extract(build_chip("schip2", scale=0.02, seed=123))
        assert circuit.devices
        assert circuit.warnings == []
