"""The PLA generator: structure, and truth tables through the whole
toolchain (synthesize -> extract -> simulate -> compare to the spec)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import extract
from repro.analysis import static_check
from repro.hext import hext_extract
from repro.sim import SwitchSimulator
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads.pla import PlaSpec, pla

XOR = PlaSpec(
    num_inputs=2,
    products=({0: True, 1: False}, {0: False, 1: True}),
    outputs=(frozenset({0, 1}),),
)

MAJORITY3 = PlaSpec(
    num_inputs=3,
    products=(
        {0: True, 1: True},
        {0: True, 2: True},
        {1: True, 2: True},
    ),
    outputs=(frozenset({0, 1, 2}),),
)

DECODER2 = PlaSpec(
    num_inputs=2,
    products=(
        {0: False, 1: False},
        {0: True, 1: False},
        {0: False, 1: True},
        {0: True, 1: True},
    ),
    outputs=(
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({3}),
    ),
)


def _simulate_truth_table(spec: PlaSpec):
    circuit = extract(pla(spec))
    sim = SwitchSimulator(circuit)
    rows = []
    for inputs in itertools.product((0, 1), repeat=spec.num_inputs):
        for i, value in enumerate(inputs):
            sim.set_input(f"IN{i}", value)
            sim.set_input(f"NIN{i}", 1 - value)
        result = sim.simulate()
        rows.append(
            (inputs, [result.of(f"NOUT{o}") for o in range(len(spec.outputs))])
        )
    return rows


class TestStructure:
    def test_device_count_formula(self):
        circuit = extract(pla(MAJORITY3))
        n_products = len(MAJORITY3.products)
        n_outputs = len(MAJORITY3.outputs)
        literals = sum(len(p) for p in MAJORITY3.products)
        or_terms = sum(len(t) for t in MAJORITY3.outputs)
        dep = sum(1 for d in circuit.devices if d.kind == "nDep")
        enh = sum(1 for d in circuit.devices if d.kind == "nEnh")
        assert dep == n_products + n_outputs
        assert enh == literals + or_terms

    def test_no_extraction_warnings(self):
        assert extract(pla(DECODER2)).warnings == []

    def test_no_malformed_devices(self):
        circuit = extract(pla(XOR))
        report = static_check(circuit)
        assert not report.by_rule("malformed-terminals")
        assert not report.by_rule("multi-gate")
        assert not report.by_rule("rail-short")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PlaSpec(num_inputs=1, products=({3: True},), outputs=())
        with pytest.raises(ValueError):
            PlaSpec(num_inputs=1, products=(), outputs=(frozenset({0}),))

    def test_hext_equivalent(self):
        layout = pla(XOR)
        report = compare_netlists(
            circuit_to_flat(extract(layout)),
            circuit_to_flat(hext_extract(layout).circuit),
        )
        assert report.equivalent, report.reason


class TestTruthTables:
    def test_xor(self):
        for inputs, outputs in _simulate_truth_table(XOR):
            assert outputs == XOR.expected(inputs), inputs

    def test_majority3(self):
        for inputs, outputs in _simulate_truth_table(MAJORITY3):
            assert outputs == MAJORITY3.expected(inputs), inputs

    def test_decoder_outputs_one_hot(self):
        for inputs, outputs in _simulate_truth_table(DECODER2):
            assert outputs == DECODER2.expected(inputs), inputs
            # Exactly one active-low output fires per input combination.
            assert outputs.count(0) == 1


@settings(max_examples=12, deadline=None)
@given(
    st.integers(2, 3).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.dictionaries(
                    st.integers(0, n - 1), st.booleans(), min_size=1, max_size=n
                ),
                min_size=1,
                max_size=3,
            ),
        )
    ),
    st.data(),
)
def test_random_pla_truth_tables(spec_parts, data):
    """Synthesize a random PLA, extract it, and simulate every input
    combination: the hardware must compute exactly what the spec says."""
    n, products = spec_parts
    n_products = len(products)
    outputs = data.draw(
        st.lists(
            st.frozensets(st.integers(0, n_products - 1), min_size=1),
            min_size=1,
            max_size=2,
        )
    )
    spec = PlaSpec(num_inputs=n, products=tuple(products), outputs=tuple(outputs))
    for inputs, simulated in _simulate_truth_table(spec):
        assert simulated == spec.expected(inputs), (spec, inputs)
