"""Schematic entry and LVS."""

import pytest

from repro import extract
from repro.schematic import Schematic, lvs
from repro.workloads import inverter, inverter_rows, nand2


class TestEntry:
    def test_inverter_devices(self):
        sch = Schematic().inverter("IN", "OUT")
        assert sch.device_count == 2

    def test_nand_series_chain(self):
        sch = Schematic().nand(["A", "B", "C"], "OUT")
        assert sch.device_count == 4  # load + 3 series pulldowns

    def test_nor_parallel(self):
        sch = Schematic().nor(["A", "B"], "OUT")
        assert sch.device_count == 3

    def test_empty_gate_rejected(self):
        with pytest.raises(ValueError):
            Schematic().nand([], "OUT")
        with pytest.raises(ValueError):
            Schematic().nor([], "OUT")

    def test_anonymous_nets_unique(self):
        sch = Schematic()
        assert sch.net() != sch.net()

    def test_to_flat_names(self):
        flat = Schematic().inverter("IN", "OUT").to_flat()
        names = {n for bucket in flat.net_names.values() for n in bucket}
        assert {"IN", "OUT", "VDD", "GND"} <= names

    def test_to_flat_port_restriction(self):
        flat = Schematic().inverter("IN", "OUT").to_flat(named=("IN",))
        names = {n for bucket in flat.net_names.values() for n in bucket}
        assert names == {"IN"}


class TestLvs:
    def test_inverter_matches(self):
        report = lvs(extract(inverter()), Schematic().inverter("IN", "OUT"))
        assert report.equivalent, report.reason

    def test_nand_matches(self):
        # In the nand2 cell, B is the upper gate (nearest the output),
        # A the lower; nand() takes inputs output-side first.
        sch = Schematic().nand(["B", "A"], "OUT")
        report = lvs(extract(nand2()), sch)
        assert report.equivalent, report.reason

    def test_nand_stacking_order_matters(self):
        # The reversed stack is logically a NAND too, but its netlist
        # topology differs and LVS must say so.
        sch = Schematic().nand(["A", "B"], "OUT")
        report = lvs(extract(nand2()), sch)
        assert not report.equivalent

    def test_chain_matches(self):
        sch = Schematic()
        nets = ["IN0", "n1", "OUT0"]
        sch.inverter("IN0", "n1")
        sch.inverter("n1", "OUT0")
        # Restrict anchoring to external ports: the layout names its
        # internal node differently (not at all).
        report = lvs(
            extract(inverter_rows(1, 2)),
            sch,
            ports=("IN0", "OUT0", "VDD", "GND"),
        )
        assert report.equivalent, report.reason

    def test_wrong_gate_detected(self):
        # Schematic says NOR, layout is a NAND.
        sch = Schematic().nor(["A", "B"], "OUT")
        report = lvs(extract(nand2()), sch)
        assert not report.equivalent

    def test_missing_stage_detected(self):
        sch = Schematic().inverter("IN0", "OUT0")
        report = lvs(
            extract(inverter_rows(1, 2)),
            sch,
            ports=("IN0", "OUT0", "VDD", "GND"),
        )
        assert not report.equivalent
        assert "device counts" in report.reason

    def test_swapped_ports_detected(self):
        sch = Schematic().inverter("OUT", "IN")  # backwards
        report = lvs(extract(inverter()), sch)
        assert not report.equivalent
