"""Baseline extractors agree with ACE on every workload family."""

import pytest

from repro import extract
from repro.baselines import extract_polyflat, extract_raster
from repro.cif import Layout
from repro.geometry import Box
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import (
    build_chip,
    inverter,
    inverter_rows,
    mirrored_array,
    poly_diff_mesh,
    transistor_array,
)

WORKLOADS = [
    ("inverter", inverter),
    ("rows", lambda: inverter_rows(2, 4)),
    ("array", lambda: transistor_array(4)),
    ("mirrored", lambda: mirrored_array(3)),
    ("mesh", lambda: poly_diff_mesh(3)),
    ("cherry-small", lambda: build_chip("cherry", scale=0.05)),
    ("schip2-small", lambda: build_chip("schip2", scale=0.02)),
    ("testram-small", lambda: build_chip("testram", scale=0.01)),
]


@pytest.mark.parametrize("name,factory", WORKLOADS)
def test_raster_matches_ace(name, factory):
    layout = factory()
    report = compare_netlists(
        circuit_to_flat(extract(layout)),
        circuit_to_flat(extract_raster(layout)),
    )
    assert report.equivalent, f"{name}: {report.reason}"


@pytest.mark.parametrize("name,factory", WORKLOADS)
def test_polyflat_matches_ace(name, factory):
    layout = factory()
    report = compare_netlists(
        circuit_to_flat(extract(layout)),
        circuit_to_flat(extract_polyflat(layout)),
    )
    assert report.equivalent, f"{name}: {report.reason}"


class TestRasterSpecifics:
    def test_empty_layout(self):
        circuit = extract_raster(Layout())
        assert circuit.nets == [] and circuit.devices == []

    def test_device_sizes_match_ace(self):
        layout = inverter()
        ace = extract(layout)
        ras = extract_raster(layout)
        assert sorted((d.kind, d.length, d.width) for d in ace.devices) == sorted(
            (d.kind, d.length, d.width) for d in ras.devices
        )

    def test_coarse_grid_merges_close_features(self):
        # Two metal wires 1 lambda apart are distinct at grid=lambda but
        # a 4x grid cannot resolve the gap -- the fixed-grid constraint
        # the paper calls out.
        layout = Layout()
        layout.top.add_box("NM", Box(0, 0, 250, 1000))
        layout.top.add_box("NM", Box(500, 0, 750, 1000))
        fine = extract_raster(layout, grid=250)
        coarse = extract_raster(layout, grid=1000)
        assert len(fine.nets) == 2
        assert len(coarse.nets) == 1


class TestPolyflatSpecifics:
    def test_empty_layout(self):
        circuit = extract_polyflat(Layout())
        assert circuit.nets == [] and circuit.devices == []

    def test_overlapping_artwork_counted_once(self):
        # Duplicate poly boxes over one diffusion: area must not double.
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 4, 20))
        layout.top.add_box("NP", Box(-2, 8, 6, 12))
        layout.top.add_box("NP", Box(-2, 8, 6, 12))
        circuit = extract_polyflat(layout)
        (device,) = circuit.devices
        assert device.area == 4 * 4

    def test_labels_attach(self):
        layout = inverter()
        circuit = extract_polyflat(layout)
        names = {n.names[0] for n in circuit.nets if n.names}
        assert names == {"VDD", "GND", "IN", "OUT"}
