"""HEXT end-to-end: netlist equivalence with flat ACE and statistics."""

import pytest

from repro import extract
from repro.hext import hext_extract
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import (
    LayoutBuilder,
    build_chip,
    inverter,
    inverter_rows,
    mirrored_array,
    transistor_array,
)

EQUIV_WORKLOADS = [
    ("inverter", inverter),
    ("rows", lambda: inverter_rows(3, 4)),
    ("array8", lambda: transistor_array(8)),
    ("array-flat-calls", lambda: transistor_array(4, hierarchical=False)),
    ("mirrored", lambda: mirrored_array(4)),
    ("cherry-small", lambda: build_chip("cherry", scale=0.1)),
    ("schip2-small", lambda: build_chip("schip2", scale=0.03)),
    ("testram-small", lambda: build_chip("testram", scale=0.01)),
    ("riscb-small", lambda: build_chip("riscb", scale=0.01)),
]


@pytest.mark.parametrize("name,factory", EQUIV_WORKLOADS)
def test_hext_matches_flat(name, factory):
    layout = factory()
    flat = circuit_to_flat(extract(layout))
    hier = circuit_to_flat(hext_extract(layout).circuit)
    report = compare_netlists(flat, hier)
    assert report.equivalent, f"{name}: {report.reason}"


class TestMemoization:
    def test_ideal_array_single_flat_call(self):
        result = hext_extract(transistor_array(16))
        assert result.stats.flat_calls == 1
        # Binary tree of 256 cells: log2(256) compose levels.
        assert result.stats.compose_calls == 8
        assert result.stats.memo_hits == 8

    def test_unique_windows_grow_logarithmically(self):
        # One new pair-level per doubling of the array side: the memo
        # table is what delivers Table 4-1's O(sqrt N).
        uniques = [
            hext_extract(transistor_array(n)).stats.unique_windows
            for n in (4, 8, 16)
        ]
        assert uniques == [6, 8, 10]

    def test_fully_instantiated_design_gains_nothing(self):
        # A fully-instantiated description (raw geometry, no symbol
        # calls) leaves HEXT nothing to exploit: one whole-chip window,
        # one flat extraction -- the "gains nothing from hierarchy or
        # repetition" case of HEXT section 4.
        from repro.cif import Layout
        from repro.frontend import instantiate

        boxes, _ = instantiate(transistor_array(4))
        layout = Layout()
        for layer, box in boxes:
            layout.top.add_box(layer, box)
        flat = hext_extract(layout)
        assert flat.stats.flat_calls == 1
        assert flat.stats.compose_calls == 0
        assert flat.stats.memo_hits == 0
        assert len(flat.circuit.devices) == 16

    def test_shared_row_symbols_memoize(self):
        shared = hext_extract(
            inverter_rows(4, 4, shared_symbols=True)
        ).stats
        unique = hext_extract(
            inverter_rows(4, 4, shared_symbols=False)
        ).stats
        # Same artwork; per-row symbols force re-examination of windows
        # the shared version recognizes as redundant.
        assert shared.memo_hits >= unique.memo_hits
        assert shared.unique_windows <= unique.unique_windows


class TestPartialDevices:
    def test_horizontal_split(self):
        builder = LayoutBuilder()
        half = builder.new_symbol()
        half.box("ND", 0, 0, 4, 8)
        half.box("NP", 0, 3, 4, 5)
        wrap = builder.new_symbol()
        wrap.call(half, 0, 0)
        builder.top.call(wrap, 0, 0)
        builder.top.call(wrap, 4, 0)
        layout = builder.done()
        flat = extract(layout)
        hier = hext_extract(layout).circuit
        assert len(hier.devices) == 1
        (fd,), (hd,) = flat.devices, hier.devices
        assert (fd.area, fd.length, fd.width) == (hd.area, hd.length, hd.width)

    def test_quad_split(self):
        # A transistor split across FOUR windows (both axes).
        builder = LayoutBuilder()
        quad = builder.new_symbol()
        quad.box("ND", 0, 0, 4, 4)
        quad.box("NP", 0, 1, 4, 3)
        wrap = builder.new_symbol()
        wrap.call(quad, 0, 0)
        for dx, dy in [(0, 0), (4, 0), (0, 4), (4, 4)]:
            builder.top.call(wrap, dx, dy)
        layout = builder.done()
        flat = extract(layout)
        hier = hext_extract(layout).circuit
        report = compare_netlists(
            circuit_to_flat(flat), circuit_to_flat(hier)
        )
        assert report.equivalent, report.reason

    def test_chip_edge_channel_still_reported(self):
        builder = LayoutBuilder()
        cell = builder.new_symbol()
        cell.box("ND", 0, 0, 4, 8)
        cell.box("NP", 0, 6, 4, 8)  # channel touches the chip top
        wrap = builder.new_symbol()
        wrap.call(cell, 0, 0)
        builder.top.call(wrap, 0, 0)
        builder.top.call(wrap, 4, 0)
        layout = builder.done()
        hier = hext_extract(layout).circuit
        assert len(hier.devices) == len(extract(layout).devices) == 1


class TestStats:
    def test_timers_populated(self):
        result = hext_extract(build_chip("cherry", scale=0.05))
        result.circuit
        stats = result.stats
        assert stats.total_seconds > 0
        assert stats.backend_seconds >= stats.compose_seconds
        assert 0 <= stats.compose_share <= 1

    def test_circuit_cached(self):
        result = hext_extract(inverter())
        assert result.circuit is result.circuit
