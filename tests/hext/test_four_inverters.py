"""Reproduction of HEXT Figures 2-1 / 2-2: four inverters.

A 2x2 array of one inverter cell, built as pairs (Window2 = two
Window1s, Window3 = two Window2s), exactly the structure of Figure 2-2's
hierarchical wirelist.
"""

import pytest

from repro import extract
from repro.hext import hext_extract
from repro.hext.wirelist import to_hierarchical_wirelist
from repro.wirelist import (
    circuit_to_flat,
    compare_netlists,
    flatten,
    parse_wirelist,
    write_wirelist,
)
from repro.workloads import INVERTER_SIZE, LayoutBuilder, build_inverter_cell


@pytest.fixture(scope="module")
def four_inverters():
    builder = LayoutBuilder()
    cell = build_inverter_cell(builder)
    pair = builder.new_symbol()
    width = INVERTER_SIZE[0]
    pair.call(cell, 0, 0)
    pair.call(cell, width, 0)
    quad = builder.new_symbol()
    quad.call(pair, 0, 0)
    quad.call(pair, 0, INVERTER_SIZE[1] + 2)
    builder.top.call(quad, 0, 0)
    return builder.done()


class TestExtraction:
    def test_eight_devices(self, four_inverters):
        result = hext_extract(four_inverters)
        assert len(result.circuit.devices) == 8

    def test_matches_flat(self, four_inverters):
        flat = circuit_to_flat(extract(four_inverters))
        hier = circuit_to_flat(hext_extract(four_inverters).circuit)
        report = compare_netlists(flat, hier)
        assert report.equivalent, report.reason

    def test_one_cell_extracted_once(self, four_inverters):
        result = hext_extract(four_inverters)
        assert result.stats.flat_calls == 1
        assert result.stats.memo_hits >= 2


class TestWirelist:
    def test_figure_2_2_structure(self, four_inverters):
        result = hext_extract(four_inverters)
        text = write_wirelist(to_hierarchical_wirelist(result, name="four"))
        assert "(DefPart Window1" in text
        assert "(DefPart Window2" in text
        assert "(DefPart Window3" in text
        # Window composition instantiates windows, with net maps.
        assert "(Part Window1 (Name P1)" in text
        assert "(Part Window2 (Name P" in text
        assert "(Net P1/" in text
        assert "(Part Window3 (Name Top))" in text

    def test_flattened_wirelist_equivalent(self, four_inverters):
        result = hext_extract(four_inverters)
        text = write_wirelist(to_hierarchical_wirelist(result))
        recovered = flatten(parse_wirelist(text))
        flat = circuit_to_flat(extract(four_inverters))
        report = compare_netlists(flat, recovered)
        assert report.equivalent, report.reason
