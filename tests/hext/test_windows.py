"""HEXT front-end: subdivision and window canonicalization."""

from repro.cif import Layout
from repro.geometry import Box, Transform
from repro.hext import Content, WindowPlanner, content_key


def _two_cell_layout(offset=(20, 0)) -> Layout:
    layout = Layout()
    cell = layout.define(1)
    cell.add_box("ND", Box(0, 0, 10, 10))
    layout.top.add_call(1, Transform.identity())
    layout.top.add_call(1, Transform.translation(*offset))
    return layout


class TestTopContent:
    def test_region_covers_chip(self):
        planner = WindowPlanner(_two_cell_layout())
        top = planner.top_content()
        assert top.region == Box(0, 0, 30, 10)
        assert len(top.instances) == 2

    def test_empty_layout(self):
        planner = WindowPlanner(Layout())
        top = planner.top_content()
        assert top.is_primitive()


class TestSubdivide:
    def test_disjoint_instances_become_windows(self):
        planner = WindowPlanner(_two_cell_layout())
        windows = planner.subdivide(planner.top_content())
        # One window per instance bbox; the empty gap cell is dropped.
        assert sorted((w.region.xmin, w.region.xmax) for w in windows) == [
            (0, 10),
            (20, 30),
        ]
        assert all(len(w.instances) == 1 for w in windows)

    def test_overlapping_instances_expanded(self):
        layout = _two_cell_layout(offset=(5, 0))  # bboxes overlap
        planner = WindowPlanner(layout)
        windows = planner.subdivide(planner.top_content())
        # Overlap forces full expansion to geometry; artwork is preserved
        # (overlapping boxes stay overlapping -- the extractor merges them).
        assert all(not w.instances for w in windows)
        from repro.geometry import regions_equal

        parts = [b for w in windows for _, b in w.geometry]
        assert regions_equal(parts, [Box(0, 0, 15, 10)])

    def test_geometry_clipped_into_windows(self):
        layout = Layout()
        cell = layout.define(1)
        cell.add_box("ND", Box(0, 0, 10, 10))
        wrap = layout.define(2)
        wrap.add_call(1, Transform.identity())
        layout.top.add_call(2, Transform.identity())
        layout.top.add_call(2, Transform.translation(10, 0))
        # A metal strap spanning both windows at top level.
        layout.top.add_box("NM", Box(2, 4, 18, 6))
        planner = WindowPlanner(layout)
        windows = planner.subdivide(planner.top_content())
        metal_parts = [
            b for w in windows for layer, b in w.geometry if layer == "NM"
        ]
        assert len(metal_parts) == 2
        assert sum(b.area for b in metal_parts) == 16 * 2

    def test_labels_assigned_once(self):
        from repro.cif import Label

        layout = _two_cell_layout()
        layout.top.add_label(Label("A", 5, 5, "ND"))
        planner = WindowPlanner(layout)
        windows = planner.subdivide(planner.top_content())
        carried = [lb.name for w in windows for lb in w.labels]
        assert carried == ["A"]


class TestContentKey:
    def test_translation_invariant(self):
        a = Content(Box(0, 0, 10, 10), geometry=[("ND", Box(2, 2, 8, 8))])
        b = Content(Box(100, 50, 110, 60), geometry=[("ND", Box(102, 52, 108, 58))])
        assert content_key(a) == content_key(b)

    def test_size_matters(self):
        a = Content(Box(0, 0, 10, 10), geometry=[("ND", Box(2, 2, 8, 8))])
        b = Content(Box(0, 0, 12, 10), geometry=[("ND", Box(2, 2, 8, 8))])
        assert content_key(a) != content_key(b)

    def test_layer_matters(self):
        a = Content(Box(0, 0, 10, 10), geometry=[("ND", Box(2, 2, 8, 8))])
        b = Content(Box(0, 0, 10, 10), geometry=[("NP", Box(2, 2, 8, 8))])
        assert content_key(a) != content_key(b)

    def test_instance_orientation_matters(self):
        a = Content(Box(0, 0, 10, 10), instances=[(1, Transform.identity())])
        b = Content(
            Box(0, 0, 10, 10),
            instances=[(1, Transform.mirror_x())],
        )
        assert content_key(a) != content_key(b)

    def test_geometry_order_irrelevant(self):
        g1 = ("ND", Box(0, 0, 2, 2))
        g2 = ("NP", Box(4, 4, 6, 6))
        a = Content(Box(0, 0, 10, 10), geometry=[g1, g2])
        b = Content(Box(0, 0, 10, 10), geometry=[g2, g1])
        assert content_key(a) == content_key(b)
