"""Compose unit behaviour on hand-built fragments."""

from repro.geometry import Box
from repro.hext import DeviceRec, Fragment, IfaceRec, Placed, compose
from repro.tech import NMOS

TECH = NMOS()


def _metal_window(w=10, h=10) -> Fragment:
    """One metal wire crossing the window left to right at y 4..6."""
    return Fragment(
        region=(Box(0, 0, w, h),),
        net_count=1,
        net_locs={0: (6, 0)},
        interface=(
            IfaceRec("L", "NM", 0, 4, 6, 0),
            IfaceRec("R", "NM", w, 4, 6, 0),
        ),
    )


class TestNets:
    def test_matching_spans_union(self):
        a = Placed(_metal_window(), 0, 0)
        b = Placed(_metal_window(), 10, 0)
        merged = compose(a, b, TECH)
        assert merged.net_count == 2
        assert merged.equivalences == ((0, 1),)

    def test_non_touching_windows_do_not_union(self):
        a = Placed(_metal_window(), 0, 0)
        b = Placed(_metal_window(), 30, 0)  # a gap between them
        merged = compose(a, b, TECH)
        assert merged.equivalences == ()

    def test_offset_spans_do_not_union(self):
        low = _metal_window()
        high = Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,
            interface=(
                IfaceRec("L", "NM", 0, 7, 9, 0),
                IfaceRec("R", "NM", 10, 7, 9, 0),
            ),
        )
        merged = compose(Placed(low, 0, 0), Placed(high, 10, 0), TECH)
        assert merged.equivalences == ()

    def test_different_layers_do_not_union(self):
        metal = _metal_window()
        poly = Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,
            interface=(
                IfaceRec("L", "NP", 0, 4, 6, 0),
                IfaceRec("R", "NP", 10, 4, 6, 0),
            ),
        )
        merged = compose(Placed(metal, 0, 0), Placed(poly, 10, 0), TECH)
        assert merged.equivalences == ()


class TestInterface:
    def test_shared_boundary_consumed(self):
        merged = compose(
            Placed(_metal_window(), 0, 0), Placed(_metal_window(), 10, 0), TECH
        )
        faces = sorted((r.face, r.fixed) for r in merged.interface)
        assert faces == [("L", 0), ("R", 20)]

    def test_partial_overlap_keeps_remainder(self):
        tall = Fragment(
            region=(Box(0, 0, 10, 30),),
            net_count=1,
            interface=(IfaceRec("R", "NM", 10, 0, 30, 0),),
        )
        short = Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,
            interface=(IfaceRec("L", "NM", 0, 0, 10, 0),),
        )
        merged = compose(Placed(tall, 0, 0), Placed(short, 10, 0), TECH)
        survivors = [r for r in merged.interface if r.face == "R" and r.fixed == 10]
        assert [(r.lo, r.hi) for r in survivors] == [(10, 30)]


class TestPartials:
    def _half_device(self) -> Fragment:
        return Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,  # the gate poly net
            partials=(
                DeviceRec(
                    area=50, terms={}, gates={0}, impl=False, loc=(6, 0)
                ),
            ),
            interface=(
                IfaceRec("R", "__channel__", 10, 4, 6, 0),
                IfaceRec("R", "NP", 10, 4, 6, 0),
                IfaceRec("L", "ND", 0, 4, 6, 0),
            ),
        )

    def _mirror_half(self) -> Fragment:
        return Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,
            partials=(
                DeviceRec(
                    area=50, terms={}, gates={0}, impl=True, loc=(6, 0)
                ),
            ),
            interface=(
                IfaceRec("L", "__channel__", 0, 4, 6, 0),
                IfaceRec("L", "NP", 0, 4, 6, 0),
                IfaceRec("R", "ND", 10, 4, 6, 0),
            ),
        )

    def test_channel_halves_merge_and_complete(self):
        merged = compose(
            Placed(self._half_device(), 0, 0),
            Placed(self._mirror_half(), 10, 0),
            TECH,
        )
        assert len(merged.partials) == 0
        assert len(merged.devices) == 1
        device = merged.devices[0]
        assert device.area == 100
        assert device.impl  # implant flag ORs across the halves
        assert device.gates == {0, 1}

    def test_channel_facing_diffusion_gains_terminal(self):
        channel_side = self._half_device()
        diff_side = Fragment(
            region=(Box(0, 0, 10, 10),),
            net_count=1,
            interface=(IfaceRec("L", "ND", 0, 4, 6, 0),),
        )
        merged = compose(
            Placed(channel_side, 0, 0), Placed(diff_side, 10, 0), TECH
        )
        # Channel no longer on the boundary: completed with the terminal.
        (device,) = merged.devices
        assert device.terms == {1: 2}
