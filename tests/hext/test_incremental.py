"""Incremental extraction across edits."""

from repro import extract
from repro.hext.incremental import IncrementalExtractor
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import (
    LayoutBuilder,
    build_chain_inverter_cell,
    transistor_array,
)


def _chip(edited_column: int | None = None):
    """Four rows of six chain inverters; one column optionally edited."""
    builder = LayoutBuilder()
    normal = build_chain_inverter_cell(builder)
    edited = build_chain_inverter_cell(builder, load_length=5)
    for i in range(4):
        for j in range(6):
            cell = edited if j == edited_column else normal
            builder.top.call(cell, j * 10, i * 28)
    return builder.done()


class TestReuse:
    def test_second_identical_run_fully_cached(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        first = inc.last_stats
        assert first.reused_from_previous == 0
        inc.extract(_chip())
        second = inc.last_stats
        assert second.freshly_extracted == 0
        assert second.reused_from_previous > 0
        assert second.reuse_fraction == 1.0

    def test_edit_reextracts_only_changed_windows(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        before = len(inc)
        result = inc.extract(_chip(edited_column=2))
        stats = inc.last_stats
        # The edited cell is one new unique window (plus possibly a new
        # top composition); the 23 unchanged cells come from the cache.
        assert 1 <= stats.freshly_extracted <= 3
        assert stats.reused_from_previous >= 20
        assert len(inc) > before  # new variant cached alongside
        assert len(result.circuit.devices) == 48

    def test_edited_result_is_correct(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        incremental = inc.extract(_chip(edited_column=3)).circuit
        fresh = extract(_chip(edited_column=3))
        report = compare_netlists(
            circuit_to_flat(fresh), circuit_to_flat(incremental)
        )
        assert report.equivalent, report.reason
        # The edit must actually be visible: one column of longer loads
        # (5-lambda channel at lambda=250 centimicrons).
        long_loads = [d for d in incremental.devices if d.length == 1250]
        assert len(long_loads) == 4

    def test_cache_shared_across_different_chips(self):
        inc = IncrementalExtractor()
        inc.extract(transistor_array(4))
        inc.extract(transistor_array(8))
        stats = inc.last_stats
        # The 4x4 sub-blocks of the 8x8 array were already cached.
        assert stats.reused_from_previous >= 1


class TestCrossLayoutSafety:
    def test_same_symbol_number_different_content(self):
        # Symbol numbers are layout-local; a persistent cache keyed by
        # number would serve stale fragments here.  Regression test for
        # the structural-fingerprint keying.
        inc = IncrementalExtractor()

        def single_cell_chip(load_length):
            builder = LayoutBuilder()
            cell = build_chain_inverter_cell(builder, load_length=load_length)
            builder.top.call(cell, 0, 0)
            builder.top.call(cell, 10, 0)
            return builder.done()

        first = inc.extract(single_cell_chip(4)).circuit
        second = inc.extract(single_cell_chip(5)).circuit
        assert {d.length for d in first.devices} == {500, 1000}
        assert {d.length for d in second.devices} == {500, 1250}

    def test_structurally_identical_symbols_share_cache(self):
        # Two distinct symbol definitions with identical artwork get the
        # same fingerprint, so the second is a cache hit.
        builder = LayoutBuilder()
        a = build_chain_inverter_cell(builder)
        b = build_chain_inverter_cell(builder)  # identical twin
        wrap_a = builder.new_symbol()
        wrap_a.call(a, 0, 0)
        wrap_b = builder.new_symbol()
        wrap_b.call(b, 0, 0)
        builder.top.call(wrap_a, 0, 0)
        builder.top.call(wrap_b, 20, 0)
        inc = IncrementalExtractor()
        inc.extract(builder.done())
        assert inc.last_stats.reused_within_run >= 1


class TestPrune:
    def test_prune_drops_abandoned_revisions(self):
        inc = IncrementalExtractor()
        inc.extract(_chip(edited_column=1))
        inc.extract(_chip())  # revert the edit
        removed = inc.prune()
        assert removed >= 1
        # Pruning must not break subsequent extraction.
        result = inc.extract(_chip())
        assert len(result.circuit.devices) == 48

    def test_clear(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        assert len(inc) > 0
        inc.clear()
        assert len(inc) == 0


class TestCrossSessionMemo:
    """Explicit hit/miss accounting across separate extract() calls."""

    def test_untouched_windows_hit_without_reextraction(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        entries = len(inc)
        inc.extract(_chip())
        stats = inc.last_stats
        # Every window the second run needed came from the first run's
        # memo: zero fresh extractions, and the memo did not grow.
        assert stats.freshly_extracted == 0
        assert stats.reused_from_previous >= 1
        assert stats.reuse_fraction == 1.0
        assert len(inc) == entries

    def test_edited_window_misses_while_neighbors_hit(self):
        inc = IncrementalExtractor()
        inc.extract(_chip())
        entries = len(inc)
        inc.extract(_chip(edited_column=4))
        stats = inc.last_stats
        # The edited cell's fingerprint changed, so it (and the top
        # composition containing it) missed; the 5 untouched columns
        # still answered from the previous session's entries.
        assert stats.freshly_extracted >= 1
        assert stats.reused_from_previous >= 1
        assert stats.reuse_fraction < 1.0
        assert len(inc) > entries  # the miss was cached for next time

    def test_prune_keeps_exactly_the_latest_run(self):
        inc = IncrementalExtractor()
        inc.extract(_chip(edited_column=1))
        inc.extract(_chip())  # abandon the edited revision
        removed = inc.prune()
        assert removed >= 1
        # Idempotent: everything left was used by the latest run.
        assert inc.prune() == 0
        # And sufficient: re-running that run is still fully cached.
        inc.extract(_chip())
        assert inc.last_stats.freshly_extracted == 0
        assert inc.last_stats.reuse_fraction == 1.0

    def test_pruned_revision_is_a_miss_again(self):
        inc = IncrementalExtractor()
        inc.extract(_chip(edited_column=1))
        inc.extract(_chip())
        inc.prune()  # drops the edited-column entries
        inc.extract(_chip(edited_column=1))
        assert inc.last_stats.freshly_extracted >= 1


class TestExecuteOptions:
    def test_parallel_jobs_match_serial(self):
        serial = IncrementalExtractor().extract(_chip()).circuit
        parallel = IncrementalExtractor().extract(_chip(), jobs=2).circuit
        report = compare_netlists(
            circuit_to_flat(serial), circuit_to_flat(parallel)
        )
        assert report.equivalent, report.reason

    def test_persistent_pool_reused_across_extracts(self):
        from repro.parallel import PersistentPool
        from repro.tech import NMOS

        with PersistentPool(NMOS(), 50, 2) as pool:
            inc = IncrementalExtractor()
            first = inc.extract(_chip(), pool=pool).circuit
            edited = inc.extract(_chip(edited_column=2), pool=pool).circuit
        fresh = extract(_chip(edited_column=2))
        report = compare_netlists(
            circuit_to_flat(fresh), circuit_to_flat(edited)
        )
        assert report.equivalent, report.reason
        assert len(first.devices) == 48
