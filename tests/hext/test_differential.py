"""Differential property tests: HEXT vs flat ACE on random hierarchy.

The compose machinery (interface matching, partial-transistor merging,
survival subtraction) has many geometric edge cases: channels cut by
window boundaries in both axes, nets meeting at corners, geometry
straddling several windows.  Randomized layouts with real hierarchy
probe them all; flat ACE is the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import extract
from repro.cif import Layout
from repro.geometry import Box, Transform
from repro.hext import hext_extract
from repro.tech import NMOS
from repro.wirelist import circuit_to_flat, compare_netlists

TECH = NMOS(lambda_=10)

#: A leaf cell is a handful of boxes in a 12x12 unit frame (units of 10).
cell_boxes = st.lists(
    st.tuples(
        st.sampled_from(["NM", "NP", "ND", "NC", "NI", "NB"]),
        st.integers(0, 9),
        st.integers(0, 9),
        st.integers(1, 6),
        st.integers(1, 6),
    ),
    min_size=1,
    max_size=6,
)

#: The eight manhattan orientations (exercises compose under rotation).
orientations = st.sampled_from(
    [
        Transform.identity(),
        Transform.mirror_x(),
        Transform.mirror_y(),
        Transform.rotation(0, 1),
        Transform.rotation(-1, 0),
        Transform.rotation(0, -1),
        Transform.mirror_x().then(Transform.rotation(0, 1)),
        Transform.mirror_y().then(Transform.rotation(0, 1)),
    ]
)

#: Instance placements on a 12-unit grid (cells may abut, never overlap).
placements = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.booleans(), orientations),
    min_size=1,
    max_size=6,
    unique_by=lambda p: (p[0], p[1]),
)


def _build(cells, placement_list, strap) -> Layout:
    layout = Layout()
    numbers = []
    for index, boxes in enumerate(cells):
        symbol = layout.define(index + 1)
        for layer, x, y, w, h in boxes:
            x2 = min(12, x + w)
            y2 = min(12, y + h)
            symbol.add_box(
                layer, Box(x * 10, y * 10, x2 * 10, y2 * 10)
            )
        numbers.append(index + 1)
    wrap = layout.define(100)
    for gx, gy, which, orientation in placement_list:
        number = numbers[int(which) % len(numbers)]
        # Orient the 120x120 cell about its own center, then place it on
        # the grid: rotated instances still tile without overlap.
        placed = (
            Transform.translation(-60, -60)
            .then(orientation)
            .then(Transform.translation(60 + gx * 120, 60 + gy * 120))
        )
        wrap.add_call(number, placed)
    layout.top.add_call(100, Transform.identity())
    if strap is not None:
        layer, x, y, w, h = strap
        layout.top.add_box(
            layer, Box(x * 10, y * 10, (x + w) * 10, (y + h) * 10)
        )
    layout.validate()
    return layout


straps = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(["NM", "NP", "ND"]),
        st.integers(0, 30),
        st.integers(0, 30),
        st.integers(2, 12),
        st.integers(1, 3),
    ),
)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(cell_boxes, min_size=1, max_size=2),
    placements,
    straps,
)
def test_hext_matches_flat_on_random_hierarchy(cells, placement_list, strap):
    layout = _build(cells, placement_list, strap)
    flat = circuit_to_flat(extract(layout, TECH))
    hier = circuit_to_flat(hext_extract(layout, TECH).circuit)
    report = compare_netlists(flat, hier)
    assert report.equivalent, report.reason


@settings(max_examples=30, deadline=None)
@given(
    st.lists(cell_boxes, min_size=1, max_size=2),
    placements,
    straps,
)
def test_hext_device_sizes_match_flat(cells, placement_list, strap):
    layout = _build(cells, placement_list, strap)
    flat = extract(layout, TECH)
    hier = hext_extract(layout, TECH).circuit
    assert sorted(
        (d.kind, d.area, round(d.width, 6), round(d.length, 6))
        for d in flat.devices
    ) == sorted(
        (d.kind, d.area, round(d.width, 6), round(d.length, 6))
        for d in hier.devices
    )
