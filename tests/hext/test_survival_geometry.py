"""Interface-survival geometry: L-shaped and notched compositions.

The interface of a composed window must contain exactly the spans still
facing outward -- including around the concave corners that appear when
simple windows compose into complex ones (HEXT section 3's simple vs
complex windows).
"""

from repro.geometry import Box
from repro.hext import Fragment, IfaceRec, Placed, compose
from repro.tech import NMOS

TECH = NMOS()


def _full_perimeter_window(w: int, h: int) -> Fragment:
    """A window whose single metal net touches all four faces."""
    return Fragment(
        region=(Box(0, 0, w, h),),
        net_count=1,
        interface=(
            IfaceRec("L", "NM", 0, 0, h, 0),
            IfaceRec("R", "NM", w, 0, h, 0),
            IfaceRec("B", "NM", 0, 0, w, 0),
            IfaceRec("T", "NM", h, 0, w, 0),
        ),
    )


def _faces(fragment: Fragment):
    return sorted(
        (r.face, r.fixed, r.lo, r.hi, r.ident) for r in fragment.interface
    )


class TestLShape:
    def test_l_composition_keeps_notch_faces(self):
        # A tall window with a short one at its right: the tall right
        # face survives only above the short window.
        tall = Placed(_full_perimeter_window(10, 30), 0, 0)
        short = Placed(_full_perimeter_window(10, 10), 10, 0)
        merged = compose(tall, short, TECH)
        assert merged.equivalences == ((0, 1),)
        faces = _faces(merged)
        # The shared segment (x=10, y 0..10) is consumed from both sides.
        assert ("R", 10, 0, 10, 0) not in faces
        assert ("L", 10, 0, 10, 1) not in faces
        # The remainder of the tall window's right face survives.
        assert ("R", 10, 10, 30, 0) in faces
        # The short window's own right face moves outward with it.
        assert ("R", 20, 0, 10, 1) in faces

    def test_notch_fill_consumes_two_faces(self):
        # Fill the L's notch with a third window touching on two sides.
        tall = Placed(_full_perimeter_window(10, 30), 0, 0)
        short = Placed(_full_perimeter_window(10, 10), 10, 0)
        l_shape = Placed(compose(tall, short, TECH), 0, 0)
        filler = Placed(_full_perimeter_window(10, 20), 10, 10)
        merged = compose(l_shape, filler, TECH)
        # The filler touches the tall window's right face and the short
        # window's top face: both net pairs union.
        assert len(merged.equivalences) == 2
        faces = _faces(merged)
        # Nothing inward survives: the tall right face is fully gone...
        assert not any(f == "R" and fixed == 10 for f, fixed, *_ in faces)
        # ...and the composite's outline is a clean 20x30 rectangle.
        assert ("R", 20, 0, 10, 1) in faces
        assert ("R", 20, 10, 30, 2) in faces
        region_bbox = merged.bbox()
        assert (region_bbox.width, region_bbox.height) == (20, 30)

    def test_corner_only_contact_does_not_union(self):
        a = Placed(_full_perimeter_window(10, 10), 0, 0)
        b = Placed(_full_perimeter_window(10, 10), 10, 10)  # diagonal
        merged = compose(a, b, TECH)
        assert merged.equivalences == ()
        # All eight original faces survive untouched.
        assert len(merged.interface) == 8


class TestGapWindows:
    def test_disjoint_regions_keep_everything(self):
        a = Placed(_full_perimeter_window(10, 10), 0, 0)
        b = Placed(_full_perimeter_window(10, 10), 30, 0)
        merged = compose(a, b, TECH)
        assert merged.equivalences == ()
        assert len(merged.interface) == 8
        assert len(merged.region) == 2

    def test_gap_closed_by_third_window(self):
        a = Placed(_full_perimeter_window(10, 10), 0, 0)
        b = Placed(_full_perimeter_window(10, 10), 20, 0)
        split = Placed(compose(a, b, TECH), 0, 0)
        bridge = Placed(_full_perimeter_window(10, 10), 10, 0)
        merged = compose(split, bridge, TECH)
        # The bridge unions with both sides.
        assert len(merged.equivalences) == 2
        # Outline: one 30x10 rectangle; left and right outer faces only.
        lr = [r for r in merged.interface if r.face in ("L", "R")]
        assert sorted((r.face, r.fixed) for r in lr) == [("L", 0), ("R", 30)]
