"""Kill-and-resume crash consistency.

A child process streams a layout with checkpointing on and is SIGKILLed
mid-sweep by the crash-injection hooks
(``ACE_STREAM_KILL_AFTER_BANDS``/``ACE_STREAM_KILL_PHASE``); a second
launch with ``resume="auto"`` must finish the sweep and produce bytes
identical to an uninterrupted in-memory run.  The ``spill`` phase kills
in the torn window between a band's spill write and its checkpoint —
the worst case the atomic-replace commit protocol must absorb.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from tests.golden.cases import GOLDEN_CASES

from .harness import ENGINES, chip_height, expected_text

REPO = Path(__file__).resolve().parents[2]

CHILD = """\
import sys
from repro.streaming import stream_extract
from repro.tech import NMOS
from tests.golden.cases import GOLDEN_CASES

case, engine, band_height, checkpoint, out_path = sys.argv[1:6]
if case.startswith("mesh:"):
    from repro.workloads.mesh import poly_diff_mesh

    layout = poly_diff_mesh(int(case.split(":", 1)[1]))
else:
    layout = GOLDEN_CASES[case]()
with open(out_path, "w") as out:
    stream_extract(
        layout,
        NMOS(),
        name="case",
        out=out,
        engine=engine,
        band_height=int(band_height),
        checkpoint=checkpoint,
        resume="auto",
    )
"""


def run_child(args: "list[str]", env_extra: "dict[str, str]"):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO / 'src'}{os.pathsep}{REPO}"
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", CHILD, *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("phase", ["checkpoint", "spill"])
def test_sigkill_then_resume_is_byte_identical(engine, phase, tmp_path):
    case = "nand2"
    layout = GOLDEN_CASES[case]()
    expected = expected_text(layout)
    band_height = max(1, chip_height(layout) // 11)
    # Randomized but reproducible kill point, away from both ends.
    rng = random.Random(hash((engine, phase)) & 0xFFFF)
    kill_after = rng.randint(2, 8)

    ck = tmp_path / "sweep.ck"
    out = tmp_path / "out.wirelist"
    args = [case, engine, str(band_height), str(ck), str(out)]

    killed = run_child(
        args,
        {
            "ACE_STREAM_KILL_AFTER_BANDS": str(kill_after),
            "ACE_STREAM_KILL_PHASE": phase,
        },
    )
    assert killed.returncode == -signal.SIGKILL, (
        f"child should die by SIGKILL, got rc={killed.returncode}\n"
        f"stderr: {killed.stderr}"
    )
    assert out.read_text() == "", "no output may appear before emission"

    # Relaunch clean (kill hooks off); resume="auto" picks up the
    # checkpoint when one was committed, or starts over when the kill
    # landed before the first commit.
    resumed = run_child(args, {})
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_text() == expected


@pytest.mark.parametrize("engine", ENGINES)
def test_sigkill_then_resume_on_mesh_columnar_path(engine, tmp_path):
    """Kill+resume through the columnar host's buffer fast paths.

    The poly/diffusion mesh keeps every diffusion line live across the
    whole sweep, so its strips run entirely on the persistent
    active-interval buffers; a mid-sweep SIGKILL plus resume proves the
    buffer-backed host state survives the checkpoint round trip on the
    workload that stresses it hardest.
    """
    from repro.workloads.mesh import poly_diff_mesh

    layout = poly_diff_mesh(12)
    expected = expected_text(layout)
    band_height = max(1, chip_height(layout) // 9)

    ck = tmp_path / "sweep.ck"
    out = tmp_path / "out.wirelist"
    args = ["mesh:12", engine, str(band_height), str(ck), str(out)]

    killed = run_child(
        args,
        {
            "ACE_STREAM_KILL_AFTER_BANDS": "3",
            "ACE_STREAM_KILL_PHASE": "checkpoint",
        },
    )
    assert killed.returncode == -signal.SIGKILL, (
        f"child should die by SIGKILL, got rc={killed.returncode}\n"
        f"stderr: {killed.stderr}"
    )

    resumed = run_child(args, {})
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_text() == expected


@pytest.mark.parametrize("engine", ENGINES)
def test_repeated_kills_make_progress(engine, tmp_path):
    """A crash-looping supervisor still converges.

    Killing after one committed band per launch forces the maximum
    number of resume cycles; every launch must replay from the latest
    checkpoint and commit at least one more band, so the loop is bounded
    by the band count.
    """
    case = "nand2"
    layout = GOLDEN_CASES[case]()
    expected = expected_text(layout)
    band_height = max(1, chip_height(layout) // 7)

    ck = tmp_path / "sweep.ck"
    out = tmp_path / "out.wirelist"
    args = [case, engine, str(band_height), str(ck), str(out)]

    for attempt in range(30):
        result = run_child(
            args,
            {
                "ACE_STREAM_KILL_AFTER_BANDS": "1",
                "ACE_STREAM_KILL_PHASE": "checkpoint",
            },
        )
        if result.returncode == 0:
            break
        assert result.returncode == -signal.SIGKILL, result.stderr
    else:
        pytest.fail("sweep never finished despite per-launch progress")
    assert out.read_text() == expected
