"""Band-equivalence: streamed bytes == in-memory bytes, every plan.

The goldens cover the extractor's semantic corners deliberately
(butting/buried contacts, hierarchy); the fuzz smoke covers the corners
nobody thought to gold.  Both run every available strip engine, because
the spill/retire path exercises engine-specific retirement code
(`retire`/`live_roots`) that the in-memory path never calls.
"""

from __future__ import annotations

import pytest

from repro.difftest.generator import generate_layout, iteration_seed
from tests.golden.cases import GOLDEN_CASES

from .harness import ENGINES, assert_band_equivalent, band_plans

SMOKE_SEED = 20260808


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
def test_goldens_stream_byte_identical(case, engine):
    layout = GOLDEN_CASES[case]()
    assert_band_equivalent(layout, engine=engine, label=case)


@pytest.mark.parametrize("case", ["inverter", "hier_pair"])
def test_goldens_stream_with_geometry(case):
    """keep_geometry folds net artwork through the spill store too."""
    layout = GOLDEN_CASES[case]()
    assert_band_equivalent(layout, keep_geometry=True, label=case)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("index", range(6))
def test_fuzz_smoke(index, engine):
    """A few generated layouts per engine stay byte-identical."""
    case = generate_layout(iteration_seed(SMOKE_SEED, index))
    assert_band_equivalent(
        case.layout, engine=engine, label=f"seed {case.seed}"
    )


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
def test_fuzz_hundred_seeds(engine):
    """The acceptance sweep: 100 seeds, >= 3 band heights each.

    ``band_plans`` yields at least four plans per layout (single band,
    two uniform heights, band-per-strip), so each seed is checked at
    more heights than the floor the acceptance criteria set.
    """
    for index in range(100):
        case = generate_layout(iteration_seed(SMOKE_SEED, index))
        plans = band_plans(case.layout)
        assert len(plans) >= 3
        assert_band_equivalent(
            case.layout,
            engine=engine,
            plans=plans,
            label=f"seed {case.seed}",
        )
