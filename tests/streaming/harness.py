"""Shared helpers for the band-equivalence test harness.

The streaming contract under test is *byte identity*: for any layout
and any band plan whatsoever, :func:`repro.streaming.stream_extract`
must emit exactly the bytes the in-memory extract-to-wirelist path
does.  Every module in this package phrases its assertion through
:func:`assert_band_equivalent` so a failure always reports the same
way — which plan diverged and where the first differing line is.
"""

from __future__ import annotations

import difflib

from repro.core import extract
from repro.core.stripengine import numpy_available
from repro.frontend import GeometryStream
from repro.streaming import stream_extract
from repro.tech import NMOS
from repro.wirelist import to_wirelist, write_wirelist

TECH = NMOS()

#: Every strip engine importable in this interpreter.
ENGINES = ["python"] + (["numpy"] if numpy_available() else [])


def expected_text(
    layout, *, keep_geometry: bool = False, name: str = "case"
) -> str:
    """The in-memory reference wirelist the streamed bytes must match."""
    circuit = extract(layout, TECH, keep_geometry=keep_geometry)
    return write_wirelist(to_wirelist(circuit, name=name))


def chip_height(layout) -> int:
    bbox = GeometryStream(layout).chip_bbox
    return (bbox.ymax - bbox.ymin) if bbox else 0


def stop_boundaries(layout) -> list[int]:
    """Every natural scanline stop, descending: the band-per-strip plan.

    Placing a band floor at every stop y makes each band hold at most
    one stop (the first band is empty — no stop is strictly above the
    highest floor), the finest banding the scheduler can express.
    """
    stream = GeometryStream(layout)
    tops = []
    t = stream.next_top()
    while t is not None:
        stream.fetch(t)
        tops.append(t)
        t = stream.next_top()
    return sorted(set(tops), reverse=True)


def band_plans(layout) -> list[dict]:
    """The band plans equivalence is checked at, degenerate ends included.

    * single band (``band_height=None``): the in-memory schedule run
      through the streaming bookkeeping;
    * one band taller than the chip: same sweep, explicit height;
    * a handful of bands and many bands (height divided by primes that
      avoid landing floors on stop boundaries systematically);
    * band-per-strip: an explicit floor at every natural stop.
    """
    height = chip_height(layout)
    plans: list[dict] = [{"band_height": None}]
    if height > 0:
        plans.append({"band_height": height + 1})
        plans.append({"band_height": max(1, height // 5)})
        plans.append({"band_height": max(1, height // 23)})
    bounds = stop_boundaries(layout)
    if bounds:
        plans.append({"boundaries": bounds})
    return plans


def assert_band_equivalent(
    layout,
    *,
    engine: str = "auto",
    keep_geometry: bool = False,
    plans: "list[dict] | None" = None,
    label: str = "layout",
) -> None:
    """Streamed bytes must equal the in-memory bytes at every plan."""
    expected = expected_text(layout, keep_geometry=keep_geometry)
    for plan in plans if plans is not None else band_plans(layout):
        report = stream_extract(
            layout,
            TECH,
            name="case",
            engine=engine,
            keep_geometry=keep_geometry,
            **plan,
        )
        if report.text != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    report.text.splitlines(),
                    fromfile="in-memory",
                    tofile=f"streamed {plan}",
                    lineterm="",
                )
            )
            raise AssertionError(
                f"{label}: streamed wirelist diverged under plan {plan} "
                f"(engine={engine}, keep_geometry={keep_geometry}):\n"
                f"{diff}"
            )
