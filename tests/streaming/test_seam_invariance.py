"""Property: a band seam at *any* y leaves the wirelist untouched.

The band-equivalence tests sweep uniform plans; this one attacks the
seam itself.  For fuzzed layouts (the difftest generator, so the
geometry sits on the extractor's semantic edges — abutting boxes,
corner touches, devices straddling rows), a single explicit boundary is
dropped at an arbitrary y: through geometry, exactly on box edges, at
the bbox extremes.  Retirement at the seam must be invisible in the
bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.difftest.generator import generate_layout, iteration_seed
from repro.frontend import GeometryStream

from .harness import assert_band_equivalent

BASE_SEED = 771983


def seam_candidates(layout, rng: random.Random) -> list[int]:
    """Arbitrary seam ys: random interior points plus exact box edges."""
    bbox = GeometryStream(layout).chip_bbox
    if bbox is None or bbox.ymax - bbox.ymin < 2:
        return []
    ys = [rng.randint(bbox.ymin + 1, bbox.ymax - 1) for _ in range(2)]
    # A seam exactly on a natural stop: the floor coincides with a box
    # top, the case where an off-by-one in the "strictly above" rule
    # would double- or zero-count the stop.
    stream = GeometryStream(layout)
    t = stream.next_top()
    edges = []
    while t is not None:
        stream.fetch(t)
        edges.append(t)
        t = stream.next_top()
    interior = [y for y in edges if bbox.ymin < y < bbox.ymax]
    if interior:
        ys.append(rng.choice(interior))
    # Degenerate seams at (and beyond) the bbox extremes: empty bands.
    ys.extend([bbox.ymin, bbox.ymax, bbox.ymax + 100])
    return ys


@pytest.mark.parametrize("index", range(10))
def test_single_seam_anywhere(index):
    case = generate_layout(iteration_seed(BASE_SEED, index))
    rng = random.Random(case.seed)
    for y in seam_candidates(case.layout, rng):
        assert_band_equivalent(
            case.layout,
            plans=[{"boundaries": [y]}],
            label=f"seed {case.seed}, seam y={y}",
        )


@pytest.mark.parametrize("index", range(4))
def test_multi_seam(index):
    """Several random seams at once (unsorted input, duplicates)."""
    case = generate_layout(iteration_seed(BASE_SEED, 1000 + index))
    bbox = GeometryStream(case.layout).chip_bbox
    if bbox is None or bbox.ymax - bbox.ymin < 4:
        pytest.skip("degenerate layout")
    rng = random.Random(case.seed)
    seams = [
        rng.randint(bbox.ymin + 1, bbox.ymax - 1) for _ in range(5)
    ]
    seams.append(seams[0])  # duplicate floors must collapse
    assert_band_equivalent(
        case.layout,
        plans=[{"boundaries": seams}],
        label=f"seed {case.seed}, seams {sorted(set(seams))}",
    )


@pytest.mark.slow
def test_seam_sweep_hundred_seeds():
    """The acceptance-scale version: 100 seeds, several seams each."""
    for index in range(100):
        case = generate_layout(iteration_seed(BASE_SEED, index))
        rng = random.Random(case.seed)
        for y in seam_candidates(case.layout, rng):
            assert_band_equivalent(
                case.layout,
                plans=[{"boundaries": [y]}],
                label=f"seed {case.seed}, seam y={y}",
            )
