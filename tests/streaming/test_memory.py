"""Peak-memory regression: the streamed sweep is O(band), not O(chip).

tracemalloc allocator peaks, not RSS: deterministic, per-call, and
immune to the allocator never returning pages to the OS.  Controls that
keep the measurement honest:

* a warmup sweep pays every module's one-time allocations before
  anything is measured;
* streamed runs write to a real file sink, so the wirelist *text*
  (inherently O(chip)) does not masquerade as sweep state;
* runs keep geometry, making net artwork the dominant per-net payload —
  exactly the state the spill store exists to evict.  What remains
  resident by contract is O(band) sweep state plus the O(nets)
  order-key maps and union-finds (a few ints per retired net), which is
  why the scaling assertion allows slow growth rather than none.

Margins are deliberately loose (the measured in-memory/streamed ratio
at this size is ~5x, the assertion demands 3x) so the test pins the
asymptotic claim without flaking on allocator noise.
"""

from __future__ import annotations

import os
import tracemalloc

import pytest

from repro.core import extract
from repro.streaming import stream_extract
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads import inverter_rows

from .harness import TECH, chip_height

#: One absolute band height for every chip in this module, sized from
#: the smallest chip: O(band) predicts near-constant streamed peaks as
#: the chip grows past it.
BAND_HEIGHT = max(1, chip_height(inverter_rows(12, 6)) // 16)


def alloc_peak(fn) -> int:
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def in_memory_peak(layout) -> int:
    def run():
        circuit = extract(layout, TECH, keep_geometry=True)
        write_wirelist(to_wirelist(circuit, name="case"))

    return alloc_peak(run)


def streamed_peak(layout, band_height: int = BAND_HEIGHT) -> int:
    def run():
        with open(os.devnull, "w") as out:
            stream_extract(
                layout,
                TECH,
                name="case",
                band_height=band_height,
                keep_geometry=True,
                out=out,
            )

    return alloc_peak(run)


@pytest.fixture(scope="module", autouse=True)
def warmup():
    """Pay import-time and first-call allocations before measuring."""
    streamed_peak(inverter_rows(2, 2), 5000)
    in_memory_peak(inverter_rows(2, 2))


def test_streamed_peak_is_fraction_of_in_memory():
    layout = inverter_rows(48, 6)
    full = in_memory_peak(layout)
    banded = streamed_peak(layout)
    assert banded < full / 3, (
        f"streamed peak {banded / 1e6:.2f}MB is not well under the "
        f"in-memory peak {full / 1e6:.2f}MB -- retirement is not "
        "evicting state"
    )


def test_streamed_peak_tracks_band_not_chip():
    """Quadrupling the chip height must not quadruple the streamed peak.

    Both chips sweep at the same absolute band height, so O(band)
    predicts near-constant peaks while O(chip) predicts 4x.  The slack
    factor absorbs what legitimately grows with the chip: the O(nets)
    order keys and union-finds.
    """
    peak_short = streamed_peak(inverter_rows(12, 6))
    peak_tall = streamed_peak(inverter_rows(48, 6))
    assert peak_tall < peak_short * 2.2, (
        f"streamed peak grew {peak_tall / peak_short:.2f}x when the chip "
        "quadrupled -- residency is tracking the chip, not the band"
    )


def test_in_memory_peak_does_track_chip():
    """The control: the reference path really is O(chip).

    Without this, the other two tests could pass vacuously if the
    workload stopped exercising chip-proportional state.
    """
    peak_short = in_memory_peak(inverter_rows(12, 6))
    peak_tall = in_memory_peak(inverter_rows(48, 6))
    assert peak_tall > peak_short * 2.5, (
        f"in-memory peak grew only {peak_tall / peak_short:.2f}x for a "
        "4x chip -- the workload no longer stresses residency, so the "
        "streaming assertions above prove nothing"
    )
