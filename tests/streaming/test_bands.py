"""Unit tests for the banded front-end (repro.frontend.bands).

The contract under test: a :class:`BandFeed` over any floor list is
*observationally identical* to the raw :class:`GeometryStream` — same
``next_top``/``fetch`` traffic, same label visibility at every point of
the sweep — because byte-identical wirelists are downstream of exactly
that equivalence.
"""

from __future__ import annotations

import pytest

from repro.frontend import GeometryStream
from repro.frontend.bands import BandFeed, BandSource, plan_bands
from tests.golden.cases import GOLDEN_CASES

from .harness import chip_height


def replay(feed_like) -> list:
    """Drain a stream/feed, recording the engine-visible event trace."""
    trace = []
    t = feed_like.next_top()
    while t is not None:
        trace.append(("peek", t, [lb.name for lb in feed_like.labels()]))
        boxes = feed_like.fetch(t)
        trace.append(("fetch", t, len(boxes),
                      [lb.name for lb in feed_like.labels()]))
        t = feed_like.next_top()
    trace.append(("end", [lb.name for lb in feed_like.labels()]))
    return trace


def feed_for(layout, **plan_kwargs) -> BandFeed:
    stream = GeometryStream(layout)
    bbox = stream.chip_bbox
    floors = plan_bands(
        bbox.ymax if bbox else None,
        bbox.ymin if bbox else None,
        **plan_kwargs,
    )
    return BandFeed(BandSource(stream, floors))


class TestPlanBands:
    def test_no_height_is_single_band(self):
        assert plan_bands(100, 0) == [None]

    def test_uniform_floors_descend_to_bottom(self):
        assert plan_bands(100, 0, band_height=30) == [70, 40, 10, None]

    def test_exact_division_has_no_empty_tail(self):
        # A floor at the chip bottom would make an empty final band;
        # the planner stops strictly above it.
        assert plan_bands(90, 0, band_height=30) == [60, 30, None]

    def test_explicit_boundaries_sorted_and_deduped(self):
        assert plan_bands(None, None, boundaries=[10, 40, 10]) == [
            40,
            10,
            None,
        ]

    def test_nonpositive_height_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            plan_bands(100, 0, band_height=0)

    def test_empty_chip_is_single_band(self):
        assert plan_bands(None, None, band_height=10) == [None]


@pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
def test_feed_trace_matches_raw_stream(case):
    layout = GOLDEN_CASES[case]()
    raw = replay(GeometryStream(layout))
    height = chip_height(layout)
    for plan in ({}, {"band_height": max(1, height // 7)},
                 {"band_height": 1}):
        banded = replay(feed_for(layout, **plan))
        assert banded == raw, f"{case}: trace diverged under plan {plan}"


def test_feed_trace_matches_with_prefetch_thread():
    layout = GOLDEN_CASES["hier_pair"]()
    raw = replay(GeometryStream(layout))
    stream = GeometryStream(layout)
    bbox = stream.chip_bbox
    floors = plan_bands(bbox.ymax, bbox.ymin, band_height=500)
    feed = BandFeed(BandSource(stream, floors, prefetch=2))
    assert replay(feed) == raw


def test_fetch_off_head_returns_empty():
    """Pending-continuation stops fetch at a y the feed never recorded."""
    layout = GOLDEN_CASES["inverter"]()
    feed = feed_for(layout, band_height=300)
    t = feed.next_top()
    assert feed.fetch(t - 1) == []
    assert feed.fetch(t), "the recorded head must still be served"


def test_producer_error_surfaces_in_consumer():
    class Boom(RuntimeError):
        pass

    class ExplodingStream:
        _labels: list = []
        stats = None

        def next_top(self):
            raise Boom("mid-chip parse error")

        def fetch(self, y):  # pragma: no cover - never reached
            raise AssertionError

    source = BandSource(ExplodingStream(), [None], prefetch=1)
    with pytest.raises(Boom, match="mid-chip"):
        source.next_band()


def test_close_releases_blocked_producer():
    layout = GOLDEN_CASES["nand2"]()
    stream = GeometryStream(layout)
    bbox = stream.chip_bbox
    floors = plan_bands(bbox.ymax, bbox.ymin, band_height=100)
    source = BandSource(stream, floors, prefetch=1)
    # Consume one band, abandon the rest with the queue full.
    assert source.next_band() is not None
    source.close()
    assert source._thread is None
    source.close()  # idempotent
