"""Checkpoint serialization: round-trip fidelity and identity checks.

A checkpoint is only trustworthy if restoring it reproduces the paused
sweep *exactly* — same ScanStats counters, same suspension state, same
eventual bytes.  These tests pause a real sweep mid-chip, round-trip
the host snapshot through a fresh engine, and also drive the full
save/load/resume path end to end.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scanline import ScanlineEngine
from repro.frontend import GeometryStream
from repro.streaming import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    stream_extract,
)
from repro.workloads.mesh import poly_diff_mesh
from tests.golden.cases import GOLDEN_CASES

from .harness import ENGINES, TECH, chip_height, expected_text

nand2 = GOLDEN_CASES["nand2"]

#: Layouts the scratch-rebuild property samples: a golden cell with
#: contacts/labels/implants, and the dense mesh whose sweep lives on
#: the columnar host's persistent-buffer fast paths.
_PROPERTY_LAYOUTS = {
    "nand2": nand2,
    "mesh8": lambda: poly_diff_mesh(8),
}


def paused_engine(engine: str) -> ScanlineEngine:
    """An engine suspended mid-sweep (roughly half the chip consumed)."""
    layout = nand2()
    stream = GeometryStream(layout)
    bbox = stream.chip_bbox
    scan = ScanlineEngine(TECH, engine=engine)
    more = scan.advance(stream, (bbox.ymax + bbox.ymin) // 2)
    assert more, "the sweep should pause mid-chip, not exhaust"
    return scan


@pytest.mark.parametrize("engine", ENGINES)
def test_snapshot_roundtrip_is_exact(engine):
    scan = paused_engine(engine)
    snap = scan.snapshot_state()
    restored = ScanlineEngine(TECH, engine=engine)
    restored.restore_state(snap)
    assert restored.snapshot_state() == snap


def _advanced_to(engine: str, layout, y: int) -> ScanlineEngine:
    scan = ScanlineEngine(TECH, engine=engine)
    scan.advance(GeometryStream(layout), y)
    return scan


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(sorted(_PROPERTY_LAYOUTS)),
    frac=st.floats(min_value=0.02, max_value=0.98),
)
def test_restore_is_bit_identical_to_scratch_rebuild(engine, name, frac):
    """Snapshot/restore equals a from-scratch sweep paused at the same y.

    The host keeps per-layer active intervals in persistent columnar
    buffers that are updated incrementally across the whole sweep; this
    pins down that a restored host carries *no* incidental buffer state
    a fresh host would lack (and vice versa) at any pause point.
    """
    layout = _PROPERTY_LAYOUTS[name]()
    bbox = GeometryStream(layout).chip_bbox
    y = int(bbox.ymin + frac * (bbox.ymax - bbox.ymin))
    scratch = _advanced_to(engine, layout, y)
    snap = _advanced_to(engine, layout, y).snapshot_state()
    assert snap == scratch.snapshot_state()
    restored = ScanlineEngine(TECH, engine=engine)
    restored.restore_state(snap)
    assert restored.snapshot_state() == scratch.snapshot_state()


@pytest.mark.parametrize("engine", ENGINES)
def test_snapshot_restores_scanstats_counters(engine):
    scan = paused_engine(engine)
    restored = ScanlineEngine(TECH, engine=engine)
    restored.restore_state(scan.snapshot_state())
    for field in dataclasses.fields(scan.stats):
        assert getattr(restored.stats, field.name) == getattr(
            scan.stats, field.name
        ), f"counter {field.name} did not survive the round trip"


@pytest.mark.parametrize("engine", ENGINES)
def test_snapshot_survives_json(engine, tmp_path):
    """The snapshot must survive the actual serialization format used."""
    scan = paused_engine(engine)
    snap = scan.snapshot_state()
    path = tmp_path / "ck.json"
    save_checkpoint(path, {"host": snap})
    restored = ScanlineEngine(TECH, engine=engine)
    restored.restore_state(load_checkpoint(path)["host"])
    assert restored.snapshot_state() == snap


@pytest.mark.parametrize("engine", ENGINES)
def test_resume_completes_to_identical_bytes(engine, tmp_path):
    """Full path: checkpointed run, then resume replays the tail."""
    layout = nand2()
    expected = expected_text(layout)
    band_height = max(1, chip_height(layout) // 7)
    ck = tmp_path / "sweep.ck"
    first = stream_extract(
        layout,
        TECH,
        name="case",
        engine=engine,
        band_height=band_height,
        checkpoint=str(ck),
    )
    assert first.text == expected
    assert ck.exists()
    resumed = stream_extract(
        layout,
        TECH,
        name="case",
        engine=engine,
        band_height=band_height,
        checkpoint=str(ck),
        resume=True,
    )
    assert resumed.resumed
    assert resumed.text == expected
    for field in dataclasses.fields(first.stats):
        assert getattr(resumed.stats, field.name) == getattr(
            first.stats, field.name
        ), f"resumed ScanStats.{field.name} diverged"


def test_resume_refuses_option_mismatch(tmp_path):
    layout = nand2()
    ck = tmp_path / "sweep.ck"
    stream_extract(
        layout, TECH, band_height=1000, checkpoint=str(ck)
    )
    with pytest.raises(CheckpointError, match="options"):
        stream_extract(
            layout,
            TECH,
            band_height=1000,
            checkpoint=str(ck),
            resume=True,
            keep_geometry=True,
        )


def test_resume_refuses_layout_mismatch(tmp_path):
    ck = tmp_path / "sweep.ck"
    stream_extract(
        nand2(), TECH, band_height=1000, checkpoint=str(ck)
    )
    with pytest.raises(CheckpointError, match="layout"):
        stream_extract(
            GOLDEN_CASES["inverter"](),
            TECH,
            band_height=1000,
            checkpoint=str(ck),
            resume=True,
        )


def test_resume_refuses_corrupt_checkpoint(tmp_path):
    ck = tmp_path / "sweep.ck"
    stream_extract(nand2(), TECH, band_height=1000, checkpoint=str(ck))
    text = ck.read_text()
    ck.write_text(text.replace('"band"', '"bend"', 1))
    with pytest.raises(CheckpointError):
        stream_extract(
            nand2(),
            TECH,
            band_height=1000,
            checkpoint=str(ck),
            resume=True,
        )


def test_resume_without_checkpoint_path_rejected():
    with pytest.raises(ValueError, match="checkpoint"):
        stream_extract(nand2(), TECH, resume=True)


def test_resume_auto_starts_fresh_without_file(tmp_path):
    """``resume="auto"`` with no checkpoint on disk is a fresh sweep."""
    layout = nand2()
    report = stream_extract(
        layout,
        TECH,
        name="case",
        band_height=1000,
        checkpoint=str(tmp_path / "none-yet.ck"),
        resume="auto",
    )
    assert not report.resumed
    assert report.text == expected_text(layout)
