"""Eager instantiation and symbol bounding boxes."""

from repro.cif import Label, Layout, TOP_SYMBOL, parse
from repro.frontend import instantiate, symbol_bboxes
from repro.geometry import Box, Transform


def _cell_layout() -> Layout:
    layout = Layout()
    cell = layout.define(1)
    cell.add_box("ND", Box(0, 0, 4, 4))
    cell.add_label(Label("X", 2, 2, "ND"))
    layout.top.add_call(1, Transform.translation(10, 0))
    layout.top.add_call(1, Transform.translation(0, 10))
    return layout


class TestInstantiate:
    def test_two_instances(self):
        boxes, labels = instantiate(_cell_layout())
        assert {b for _, b in boxes} == {Box(10, 0, 14, 4), Box(0, 10, 4, 14)}
        assert {(lb.x, lb.y) for lb in labels} == {(12, 2), (2, 12)}

    def test_transform_composition(self):
        layout = Layout()
        inner = layout.define(1)
        inner.add_box("NP", Box(0, 0, 2, 2))
        outer = layout.define(2)
        outer.add_call(1, Transform.translation(10, 0))
        layout.top.add_call(2, Transform.translation(0, 100))
        boxes, _ = instantiate(layout)
        assert boxes == [("NP", Box(10, 100, 12, 102))]

    def test_mirror_through_hierarchy(self):
        layout = Layout()
        inner = layout.define(1)
        inner.add_box("NP", Box(1, 0, 3, 2))
        layout.top.add_call(1, Transform.mirror_x())
        boxes, _ = instantiate(layout)
        assert boxes == [("NP", Box(-3, 0, -1, 2))]

    def test_polygons_fracture_on_instantiation(self):
        layout = parse("DS 1; L ND; P 0 0 8 0 8 4 0 4; DF; C 1 T 2 2; E")
        boxes, _ = instantiate(layout)
        assert boxes == [("ND", Box(2, 2, 10, 6))]


class TestSymbolBboxes:
    def test_leaf_bbox(self):
        bboxes = symbol_bboxes(_cell_layout())
        assert bboxes[1] == Box(0, 0, 4, 4)

    def test_top_bbox_covers_instances(self):
        bboxes = symbol_bboxes(_cell_layout())
        assert bboxes[TOP_SYMBOL] == Box(0, 0, 14, 14)

    def test_empty_symbol_is_none(self):
        layout = Layout()
        layout.define(1)
        layout.top.add_call(1, Transform.identity())
        assert symbol_bboxes(layout)[1] is None
        assert symbol_bboxes(layout)[TOP_SYMBOL] is None

    def test_bbox_respects_rotation(self):
        layout = Layout()
        cell = layout.define(1)
        cell.add_box("ND", Box(0, 0, 10, 2))
        layout.top.add_call(1, Transform.rotation(0, 1))
        bboxes = symbol_bboxes(layout)
        top = bboxes[TOP_SYMBOL]
        assert (top.width, top.height) == (2, 10)
