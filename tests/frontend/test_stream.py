"""The lazy sorted geometry stream (ACE's front-end)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cif import Label, Layout
from repro.frontend import GeometryStream
from repro.geometry import Box, Transform
from repro.workloads import transistor_array


class TestOrdering:
    @given(
        st.lists(
            st.tuples(
                st.integers(-100, 100),
                st.integers(-100, 100),
                st.integers(1, 40),
                st.integers(1, 40),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_boxes_emerge_sorted_by_top(self, specs):
        layout = Layout()
        for x, y, w, h in specs:
            layout.top.add_box("ND", Box(x, y, x + w, y + h))
        stream = GeometryStream(layout)
        tops = [box.ymax for _, box in stream.drain()]
        assert tops == sorted(tops, reverse=True)
        assert len(tops) == len(specs)

    def test_fetch_returns_exact_top_matches(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 2, 10))
        layout.top.add_box("NP", Box(0, 5, 2, 10))
        layout.top.add_box("NM", Box(0, 0, 2, 8))
        stream = GeometryStream(layout)
        assert stream.next_top() == 10
        first = stream.fetch(10)
        assert {layer for layer, _ in first} == {"ND", "NP"}
        assert stream.next_top() == 8

    def test_empty_layout(self):
        stream = GeometryStream(Layout())
        assert stream.next_top() is None
        assert stream.chip_bbox is None


class TestLaziness:
    def test_cells_below_scanline_stay_folded(self):
        # Drain only the topmost event of a 16x16 array; most of the 511
        # internal symbols must remain unexpanded.
        layout = transistor_array(16)
        stream = GeometryStream(layout)
        top = stream.next_top()
        stream.fetch(top)
        partial = stream.stats.calls_expanded
        stream.drain()
        full = stream.stats.calls_expanded
        assert partial < full / 4

    def test_full_drain_counts_boxes(self):
        layout = transistor_array(4)
        stream = GeometryStream(layout)
        boxes = stream.drain()
        assert len(boxes) == 16 * 2
        assert stream.stats.boxes_out == 32


class TestLabels:
    def test_labels_surface_with_expansion(self):
        layout = Layout()
        cell = layout.define(1)
        cell.add_box("ND", Box(0, 0, 4, 4))
        cell.add_label(Label("A", 1, 1, "ND"))
        layout.top.add_call(1, Transform.translation(100, 100))
        stream = GeometryStream(layout)
        stream.drain()
        (label,) = stream.labels()
        assert (label.name, label.x, label.y) == ("A", 101, 101)

    def test_label_only_symbol_not_lost(self):
        layout = Layout()
        naming = layout.define(1)
        naming.add_label(Label("VDD", 5, 5, "NM"))
        layout.top.add_call(1, Transform.identity())
        layout.top.add_box("NM", Box(0, 0, 10, 10))
        stream = GeometryStream(layout)
        stream.drain()
        assert [lb.name for lb in stream.labels()] == ["VDD"]
