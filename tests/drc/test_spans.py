"""Interval-set helpers behind the DRC."""

from repro.drc.spans import (
    intersect_spans,
    overlaps_any,
    span_containing,
    subtract_spans,
    union_spans,
)


class TestIntersect:
    def test_basic_overlap(self):
        assert intersect_spans([(0, 10)], [(5, 15)]) == [(5, 10)]

    def test_touching_is_empty(self):
        assert intersect_spans([(0, 5)], [(5, 10)]) == []

    def test_multiple_pieces(self):
        assert intersect_spans(
            [(0, 4), (6, 10)], [(2, 8)]
        ) == [(2, 4), (6, 8)]

    def test_empty_inputs(self):
        assert intersect_spans([], [(0, 5)]) == []
        assert intersect_spans([(0, 5)], []) == []


class TestSubtract:
    def test_hole_splits_span(self):
        assert subtract_spans([(0, 10)], [(4, 6)]) == [(0, 4), (6, 10)]

    def test_full_cover_removes(self):
        assert subtract_spans([(2, 8)], [(0, 10)]) == []

    def test_no_overlap_keeps(self):
        assert subtract_spans([(0, 4)], [(6, 8)]) == [(0, 4)]

    def test_multiple_spans_share_hole_cursor(self):
        assert subtract_spans(
            [(0, 4), (6, 10)], [(2, 7)]
        ) == [(0, 2), (7, 10)]

    def test_hole_at_edges(self):
        assert subtract_spans([(0, 10)], [(0, 3), (8, 10)]) == [(3, 8)]


class TestUnion:
    def test_merges_overlap_and_abutment(self):
        assert union_spans([(0, 5)], [(5, 10)]) == [(0, 10)]
        assert union_spans([(0, 6)], [(4, 10)]) == [(0, 10)]

    def test_keeps_gaps(self):
        assert union_spans([(0, 2)], [(4, 6)]) == [(0, 2), (4, 6)]

    def test_interleaved(self):
        assert union_spans(
            [(0, 2), (8, 10)], [(1, 9)]
        ) == [(0, 10)]


class TestQueries:
    def test_overlaps_any_requires_positive_overlap(self):
        assert overlaps_any([(0, 5)], 4, 8)
        assert not overlaps_any([(0, 5)], 5, 8)
        assert not overlaps_any([], 0, 1)

    def test_span_containing(self):
        spans = [(0, 5), (10, 15)]
        assert span_containing(spans, 0) == (0, 5)
        assert span_containing(spans, 4) == (0, 5)
        assert span_containing(spans, 5) is None
        assert span_containing(spans, 12) == (10, 15)
        assert span_containing(spans, 20) is None
