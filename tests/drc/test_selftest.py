"""The DRC fault-planting self-test."""

import pytest

from repro.difftest.drcplant import (
    hosts_for,
    plant_violation,
    run_drc_self_test,
)
from repro.drc import run_drc
from repro.tech import CMOS, NMOS
from repro.workloads import cmos_inverter, single_transistor
from repro.workloads.violations import (
    VIOLATION_SNIPPETS,
    violation_snippets_for,
)

TECH = NMOS()
CMOS_TECH = CMOS()


def test_planting_keeps_host_geometry_clear():
    layout = plant_violation(single_transistor(), "drc.width", TECH.lambda_)
    report = run_drc(layout, TECH, attribute=False)
    assert report.rule_ids() == ["drc.width"]


def test_self_test_passes_on_one_host():
    result = run_drc_self_test(
        TECH,
        hosts={"single_transistor": single_transistor},
        do_shrink=True,
        max_probes=80,
    )
    assert result.ok
    assert result.clean_hosts == ["single_transistor"]
    assert len(result.plants) == len(VIOLATION_SNIPPETS)
    for plant in result.plants:
        assert plant.caught, plant.rule
        assert plant.shrunk is not None
        assert plant.shrunk.after <= plant.shrunk.before
        assert plant.shrunk_still_fails


def test_dirty_host_is_reported_not_planted():
    from repro.workloads.violations import drc_violations

    result = run_drc_self_test(
        TECH,
        hosts={"dirty": lambda lam: drc_violations(lam)},
        do_shrink=False,
    )
    assert not result.ok
    assert result.dirty_hosts == ["dirty"]
    assert result.plants == []


def test_snippets_remap_to_cmos_layers():
    table = violation_snippets_for(CMOS_TECH)
    # The CMOS deck has no buried windows, so that rule cannot plant.
    assert "drc.buried-enclosure" not in table
    layers = {layer for boxes in table.values() for layer, *_ in boxes}
    assert layers <= {"CM", "CP", "CD", "CC", "CW"}
    # The deckless/NMOS path is the canonical table, untouched.
    assert violation_snippets_for(TECH) == dict(VIOLATION_SNIPPETS)
    assert violation_snippets_for(None) == dict(VIOLATION_SNIPPETS)


def test_deck_hosts_follow_the_technology():
    assert "cmos_inverter" in hosts_for(CMOS_TECH)
    assert "inverter" in hosts_for(TECH)


def test_self_test_passes_on_one_cmos_host():
    result = run_drc_self_test(
        CMOS_TECH,
        hosts={"cmos_inverter": cmos_inverter},
        do_shrink=False,
    )
    assert result.ok
    assert result.clean_hosts == ["cmos_inverter"]
    planted = {plant.rule for plant in result.plants}
    assert planted == set(violation_snippets_for(CMOS_TECH))
    assert all(plant.caught for plant in result.plants)


@pytest.mark.slow
def test_self_test_full_hosts():
    result = run_drc_self_test(TECH, do_shrink=True)
    assert result.ok


@pytest.mark.slow
def test_self_test_full_cmos_hosts():
    result = run_drc_self_test(CMOS_TECH, do_shrink=True)
    assert result.ok
