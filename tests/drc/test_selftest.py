"""The DRC fault-planting self-test."""

import pytest

from repro.difftest.drcplant import (
    plant_violation,
    run_drc_self_test,
)
from repro.drc import run_drc
from repro.tech import NMOS
from repro.workloads import single_transistor
from repro.workloads.violations import VIOLATION_SNIPPETS

TECH = NMOS()


def test_planting_keeps_host_geometry_clear():
    layout = plant_violation(single_transistor(), "drc.width", TECH.lambda_)
    report = run_drc(layout, TECH, attribute=False)
    assert report.rule_ids() == ["drc.width"]


def test_self_test_passes_on_one_host():
    result = run_drc_self_test(
        TECH,
        hosts={"single_transistor": single_transistor},
        do_shrink=True,
        max_probes=80,
    )
    assert result.ok
    assert result.clean_hosts == ["single_transistor"]
    assert len(result.plants) == len(VIOLATION_SNIPPETS)
    for plant in result.plants:
        assert plant.caught, plant.rule
        assert plant.shrunk is not None
        assert plant.shrunk.after <= plant.shrunk.before
        assert plant.shrunk_still_fails


def test_dirty_host_is_reported_not_planted():
    from repro.workloads.violations import drc_violations

    result = run_drc_self_test(
        TECH,
        hosts={"dirty": lambda lam: drc_violations(lam)},
        do_shrink=False,
    )
    assert not result.ok
    assert result.dirty_hosts == ["dirty"]
    assert result.plants == []


@pytest.mark.slow
def test_self_test_full_hosts():
    result = run_drc_self_test(TECH, do_shrink=True)
    assert result.ok
