"""The streaming DRC: rule-by-rule units plus integration.

Horizontal variants of each rule are exercised by the snippet fixtures
in :mod:`repro.workloads.violations`; the vertical variants (which take
the graveyard / history / pending-queue machinery) get explicit layouts
here.
"""

import pytest

from repro.core import extract_report
from repro.drc import (
    ALL_RULES,
    RULE_BURIED_ENCLOSURE,
    RULE_CONTACT_ENCLOSURE,
    RULE_GATE_EXTENSION,
    RULE_IMPLANT_COVERAGE,
    RULE_SPACING,
    RULE_WIDTH,
    DrcChecker,
    run_drc,
)
from repro.tech import NMOS
from repro.workloads import inverter
from repro.workloads.builder import LayoutBuilder
from repro.workloads.violations import (
    VIOLATION_SNIPPETS,
    drc_violations,
    plant_snippet,
)

TECH = NMOS()


def rules_fired(layout):
    return [d.rule for d in run_drc(layout, TECH, attribute=False).diagnostics]


def build(*boxes):
    b = LayoutBuilder(TECH.lambda_)
    for layer, x1, y1, x2, y2 in boxes:
        b.top.box(layer, x1, y1, x2, y2)
    return b.done()


class TestSnippets:
    @pytest.mark.parametrize("rule", sorted(VIOLATION_SNIPPETS))
    def test_each_snippet_fires_exactly_its_rule(self, rule):
        b = LayoutBuilder(TECH.lambda_)
        plant_snippet(b, rule)
        assert rules_fired(b.done()) == [rule]

    def test_fixture_reports_one_region_per_rule(self):
        report = run_drc(drc_violations(), TECH, attribute=False)
        assert report.rule_ids() == sorted(VIOLATION_SNIPPETS)
        assert len(report.diagnostics) == len(VIOLATION_SNIPPETS)


class TestVerticalVariants:
    def test_width_of_a_short_run(self):
        # 2-lambda-tall metal bar; the minimum is 3 in any direction.
        assert rules_fired(build(("NM", 0, 0, 10, 2))) == [RULE_WIDTH]

    def test_vertical_spacing_gap(self):
        # Two diffusion regions 2 lambda apart vertically (minimum 3).
        layout = build(("ND", 0, 4, 6, 8), ("ND", 0, 0, 6, 2))
        assert rules_fired(layout) == [RULE_SPACING]

    def test_vertical_spacing_at_minimum_is_clean(self):
        layout = build(("ND", 0, 5, 6, 9), ("ND", 0, 0, 6, 2))
        assert rules_fired(layout) == []

    def test_vertical_gap_only_counts_with_x_overlap(self):
        layout = build(("ND", 0, 4, 6, 8), ("ND", 10, 0, 16, 2))
        assert rules_fired(layout) == []

    def test_gate_extension_missing_above(self):
        # Poly gate flush with the top of the diffusion: the channel's
        # top edge has no poly or diffusion overhang.
        layout = build(("ND", 0, 0, 2, 6), ("NP", -2, 4, 2, 6))
        assert RULE_GATE_EXTENSION in rules_fired(layout)

    def test_gate_extension_satisfied_vertically(self):
        # Classic cross: vertical diffusion, horizontal poly, both
        # overhanging by >= 1 lambda on every side.
        layout = build(("ND", 0, 0, 2, 6), ("NP", -2, 2, 4, 4))
        assert rules_fired(layout) == []

    def test_contact_uncovered_above_metal(self):
        layout = build(("NC", 0, 0, 2, 4), ("NM", -1, 0, 3, 3))
        assert rules_fired(layout) == [RULE_CONTACT_ENCLOSURE]

    def test_buried_uncovered_above_diffusion(self):
        layout = build(
            ("NB", 0, 0, 2, 4), ("ND", -1, 0, 3, 2), ("NP", 0, 0, 2, 4)
        )
        assert rules_fired(layout) == [RULE_BURIED_ENCLOSURE]

    def test_buried_without_poly_overlap(self):
        # Coverage is fine, but a buried window that never meets poly
        # connects nothing.
        layout = build(("NB", 0, 0, 2, 2), ("ND", -1, -1, 3, 3))
        fired = rules_fired(layout)
        assert fired == [RULE_BURIED_ENCLOSURE]

    def test_implant_flush_with_channel_top(self):
        layout = build(
            ("ND", 0, 0, 2, 8), ("NP", -2, 3, 4, 5), ("NI", -1, 2, 3, 5)
        )
        assert rules_fired(layout) == [RULE_IMPLANT_COVERAGE]

    def test_implant_with_full_margin_is_clean(self):
        layout = build(
            ("ND", 0, 0, 2, 8), ("NP", -2, 3, 4, 5), ("NI", -1, 2, 3, 6)
        )
        assert rules_fired(layout) == []


class TestReporting:
    def test_violation_regions_merge_across_strips(self):
        # A nearby diffusion box adds y-stops that slice the thin poly
        # wire into three strips; the per-strip flags still come out as
        # one merged diagnostic.
        layout = build(("NP", 0, 0, 1, 6), ("ND", 4, 2, 8, 4))
        report = run_drc(layout, TECH, attribute=False)
        width = report.by_rule(RULE_WIDTH)
        assert len(width) == 1
        assert width[0].box == (0, 0, 250, 1500)

    def test_wide_crossing_splits_violation_regions(self):
        # The same wire with a wide poly arm across the middle: the two
        # thin segments are genuinely separate violations.
        layout = build(("NP", 0, 0, 1, 6), ("NP", 0, 3, 5, 4))
        report = run_drc(layout, TECH, attribute=False)
        assert len(report.by_rule(RULE_WIDTH)) == 2

    def test_diagnostics_carry_layer_box_and_tool(self):
        (diag,) = run_drc(
            build(("NM", 0, 0, 1, 6)), TECH, attribute=False
        ).diagnostics
        assert diag.tool == "drc"
        assert diag.layer == "NM"
        assert diag.box is not None
        assert diag.rule == RULE_WIDTH

    def test_enabled_filter(self):
        report = run_drc(
            drc_violations(),
            TECH,
            attribute=False,
            enabled=frozenset({RULE_WIDTH}),
        )
        assert report.rule_ids() == [RULE_WIDTH]

    def test_attribution_points_at_defining_symbol(self):
        b = LayoutBuilder(TECH.lambda_)
        leaf = b.new_symbol()
        leaf.box("NP", 0, 0, 1, 6)  # too narrow
        b.top.call(leaf, 4, 0)
        (diag,) = run_drc(b.done(), TECH).diagnostics
        assert diag.source is not None
        assert diag.source.symbol == leaf.number

    def test_empty_layout(self):
        assert rules_fired(LayoutBuilder(TECH.lambda_).done()) == []


class TestIntegration:
    def test_checker_rides_the_extraction_pass(self):
        checker = DrcChecker(TECH)
        report = extract_report(inverter(), TECH, strip_consumers=(checker,))
        assert len(report.circuit.devices) == 2
        assert checker.report().ok

    def test_all_rules_catalog_matches_snippets(self):
        assert set(VIOLATION_SNIPPETS) == set(ALL_RULES)

    def test_run_drc_accepts_cif_text(self):
        cif = "DS 1;\nL NP;\nB 250 1500 125 750;\nDF;\nC 1;\nE\n"
        assert [
            d.rule for d in run_drc(cif, TECH, attribute=False).diagnostics
        ] == [RULE_WIDTH]
