"""Region algebra: normalization, union area, subtraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    normalize_region,
    regions_equal,
    subtract_region,
    union_area,
)

small_boxes = st.builds(
    lambda x, y, w, h: Box(x, y, x + w, y + h),
    st.integers(0, 30),
    st.integers(0, 30),
    st.integers(1, 10),
    st.integers(1, 10),
)
box_lists = st.lists(small_boxes, max_size=8)


def _covers(boxes, x, y):
    """Point-sample containment of a half-open cell [x,x+1)x[y,y+1)."""
    return any(
        b.xmin <= x < b.xmax and b.ymin <= y < b.ymax for b in boxes
    )


class TestNormalize:
    def test_empty(self):
        assert normalize_region([]) == []

    def test_single(self):
        assert normalize_region([Box(0, 0, 5, 5)]) == [Box(0, 0, 5, 5)]

    def test_duplicates_collapse(self):
        box = Box(0, 0, 5, 5)
        assert normalize_region([box, box, box]) == [box]

    def test_overlap_merged(self):
        out = normalize_region([Box(0, 0, 10, 10), Box(5, 0, 15, 10)])
        assert out == [Box(0, 0, 15, 10)]

    @given(box_lists)
    def test_result_is_disjoint(self, boxes):
        out = normalize_region(boxes)
        assert union_area(out) == sum(b.area for b in out)

    @given(box_lists)
    def test_same_region_pointwise(self, boxes):
        out = normalize_region(boxes)
        for x in range(0, 42, 7):
            for y in range(0, 42, 7):
                assert _covers(boxes, x, y) == _covers(out, x, y)

    @given(box_lists)
    def test_idempotent(self, boxes):
        once = normalize_region(boxes)
        assert normalize_region(once) == once

    @given(box_lists)
    def test_order_independent(self, boxes):
        assert normalize_region(boxes) == normalize_region(boxes[::-1])


class TestUnionArea:
    def test_overlap_counted_once(self):
        assert union_area([Box(0, 0, 10, 10), Box(5, 0, 15, 10)]) == 150

    @given(box_lists)
    def test_bounded_by_sum(self, boxes):
        assert union_area(boxes) <= sum(b.area for b in boxes)

    @given(small_boxes)
    def test_single_box(self, box):
        assert union_area([box]) == box.area


class TestSubtract:
    def test_hole_in_middle(self):
        out = subtract_region([Box(0, 0, 30, 30)], [Box(10, 10, 20, 20)])
        assert union_area(out) == 900 - 100
        assert not _covers(out, 15, 15)
        assert _covers(out, 5, 5)

    def test_disjoint_hole_noop(self):
        keep = [Box(0, 0, 10, 10)]
        assert regions_equal(subtract_region(keep, [Box(50, 50, 60, 60)]), keep)

    def test_full_subtraction(self):
        assert subtract_region([Box(0, 0, 5, 5)], [Box(0, 0, 5, 5)]) == []

    @given(box_lists, box_lists)
    def test_area_identity(self, keep, cut):
        # |A - B| = |A| - |A intersect B|
        left = union_area(subtract_region(keep, cut))
        overlap = sum(
            inter.area
            for inter in (
                k.intersection(c)
                for k in normalize_region(keep)
                for c in normalize_region(cut)
            )
            if inter is not None
        )
        assert left == union_area(keep) - overlap

    @given(box_lists, box_lists)
    def test_pointwise(self, keep, cut):
        out = subtract_region(keep, cut)
        for x in range(0, 42, 11):
            for y in range(0, 42, 11):
                expected = _covers(keep, x, y) and not _covers(cut, x, y)
                assert _covers(out, x, y) == expected
