"""Box: construction, predicates, and constructive operations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Box, bounding_box

coords = st.integers(min_value=-10_000, max_value=10_000)
sizes = st.integers(min_value=1, max_value=500)


def boxes():
    return st.builds(
        lambda x, y, w, h: Box(x, y, x + w, y + h), coords, coords, sizes, sizes
    )


class TestConstruction:
    def test_valid(self):
        box = Box(0, 0, 10, 20)
        assert box.width == 10
        assert box.height == 20
        assert box.area == 200

    @pytest.mark.parametrize(
        "args", [(0, 0, 0, 10), (0, 0, 10, 0), (5, 5, 4, 9), (5, 5, 9, 4)]
    )
    def test_degenerate_rejected(self, args):
        with pytest.raises(ValueError):
            Box(*args)

    def test_from_center_matches_cif_semantics(self):
        # "B L400 W1200 C-600 -1400" from Figure 3-4.
        box = Box.from_center(400, 1200, -600, -1400)
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (
            -800,
            -2000,
            -400,
            -800,
        )

    def test_from_center_rejects_odd_extents(self):
        with pytest.raises(ValueError):
            Box.from_center(3, 4, 0, 0)

    def test_from_center_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Box.from_center(0, 4, 0, 0)


class TestPredicates:
    def test_overlap_positive_area(self):
        assert Box(0, 0, 10, 10).overlaps(Box(5, 5, 15, 15))

    def test_edge_abutment_is_not_overlap(self):
        assert not Box(0, 0, 10, 10).overlaps(Box(10, 0, 20, 10))

    def test_edge_abutment_touches(self):
        assert Box(0, 0, 10, 10).touches(Box(10, 0, 20, 10))

    def test_corner_contact_does_not_conduct(self):
        # A single shared point must not connect nets (section 3 rules).
        assert not Box(0, 0, 10, 10).touches(Box(10, 10, 20, 20))

    def test_contains_point_closed(self):
        box = Box(0, 0, 10, 10)
        assert box.contains_point(0, 0)
        assert box.contains_point(10, 10)
        assert not box.contains_point(11, 5)

    def test_contains_box(self):
        assert Box(0, 0, 10, 10).contains_box(Box(2, 2, 8, 8))
        assert Box(0, 0, 10, 10).contains_box(Box(0, 0, 10, 10))
        assert not Box(0, 0, 10, 10).contains_box(Box(2, 2, 11, 8))

    @given(boxes(), boxes())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(boxes(), boxes())
    def test_touches_symmetric(self, a, b):
        assert a.touches(b) == b.touches(a)

    @given(boxes(), boxes())
    def test_overlap_implies_touch(self, a, b):
        if a.overlaps(b):
            assert a.touches(b)


class TestOperations:
    def test_intersection(self):
        both = Box(0, 0, 10, 10).intersection(Box(5, 5, 15, 15))
        assert both == Box(5, 5, 10, 10)

    def test_intersection_empty(self):
        assert Box(0, 0, 10, 10).intersection(Box(10, 0, 20, 10)) is None

    @given(boxes(), boxes())
    def test_intersection_consistent_with_overlap(self, a, b):
        result = a.intersection(b)
        assert (result is not None) == a.overlaps(b)
        if result is not None:
            assert a.contains_box(result)
            assert b.contains_box(result)

    def test_union_bbox(self):
        assert Box(0, 0, 1, 1).union_bbox(Box(5, 5, 6, 6)) == Box(0, 0, 6, 6)

    @given(boxes(), coords, coords)
    def test_translate_preserves_size(self, box, dx, dy):
        moved = box.translated(dx, dy)
        assert moved.width == box.width
        assert moved.height == box.height

    def test_bounding_box(self):
        assert bounding_box([Box(0, 0, 1, 1), Box(9, -5, 10, 2)]) == Box(
            0, -5, 10, 2
        )

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
