"""Seeded property-based invariants for the geometry kernel.

Hand-rolled generators (no hypothesis dependency -- the fuzzing budget
lives in :mod:`repro.difftest`): each property runs over a fixed range of
seeds, so a failure names the seed that broke it and replays exactly.
The invariants are the algebra the extractor silently leans on:

* region normalization preserves covered area and emits disjoint boxes;
* subtraction satisfies ``|A \\ H| == |A ∪ H| - |H|``;
* polygon fracturing covers exactly the polygon's area with disjoint
  boxes (manhattan polygons -- the exact case);
* the eight manhattan orientations are involutions/4-cycles and every
  transform composes with its inverse to the identity.
"""

import random

import pytest

from repro.geometry import (
    Box,
    Polygon,
    Transform,
    fracture_polygon,
    normalize_region,
    regions_equal,
    subtract_region,
    union_area,
)

SEEDS = range(25)


def _random_boxes(rng, n, span=40, max_side=12):
    out = []
    for _ in range(n):
        x = rng.randrange(-span, span)
        y = rng.randrange(-span, span)
        out.append(
            Box(x, y, x + rng.randrange(1, max_side), y + rng.randrange(1, max_side))
        )
    return out


def _pairwise_disjoint(boxes):
    return not any(
        a.overlaps(b)
        for i, a in enumerate(boxes)
        for b in boxes[i + 1 :]
    )


def _random_staircase(rng):
    """A random manhattan staircase polygon (x-monotone, closed)."""
    steps = rng.randrange(2, 6)
    xs = sorted(rng.sample(range(0, 50), steps + 1))
    top = [rng.randrange(10, 30) for _ in range(steps)]
    points = [(xs[0], 0)]
    for i in range(steps):
        points.append((xs[i], top[i]))
        points.append((xs[i + 1], top[i]))
    points.append((xs[-1], 0))
    return Polygon.from_points(points)


class TestNormalizeRegion:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_preserves_area_and_is_disjoint(self, seed):
        rng = random.Random(seed)
        boxes = _random_boxes(rng, rng.randrange(1, 15))
        region = normalize_region(boxes)
        assert sum(b.area for b in region) == union_area(boxes)
        assert _pairwise_disjoint(region)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_idempotent_and_order_free(self, seed):
        rng = random.Random(seed)
        boxes = _random_boxes(rng, rng.randrange(1, 12))
        region = normalize_region(boxes)
        assert regions_equal(region, normalize_region(region))
        shuffled = boxes[:]
        rng.shuffle(shuffled)
        assert regions_equal(region, normalize_region(shuffled))


class TestSubtractRegion:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_area_identity(self, seed):
        rng = random.Random(seed)
        boxes = _random_boxes(rng, rng.randrange(1, 10))
        holes = _random_boxes(rng, rng.randrange(0, 10))
        diff = subtract_region(boxes, holes)
        assert _pairwise_disjoint(diff)
        assert sum(b.area for b in diff) == union_area(boxes + holes) - union_area(
            holes
        )
        # Nothing of the holes survives in the difference.
        assert all(
            b.intersection(h) is None for b in diff for h in holes
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subtract_self_is_empty(self, seed):
        rng = random.Random(seed)
        boxes = _random_boxes(rng, rng.randrange(1, 10))
        assert subtract_region(boxes, boxes) == []


class TestFracturePolygon:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_manhattan_fracture_is_exact(self, seed):
        rng = random.Random(seed)
        polygon = _random_staircase(rng)
        boxes = fracture_polygon(polygon)
        assert _pairwise_disjoint(boxes)
        assert sum(b.area for b in boxes) == int(polygon.area)
        bbox = polygon.bbox()
        assert all(bbox.contains_box(b) for b in boxes)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rectangle_fractures_to_itself(self, seed):
        rng = random.Random(seed)
        box = _random_boxes(rng, 1)[0]
        assert regions_equal(
            fracture_polygon(Polygon.rectangle(box)), [box]
        )


ROT90 = Transform.rotation(0, 1)


class TestTransformRoundTrips:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_four_rotations_are_identity(self, seed):
        rng = random.Random(seed)
        box = _random_boxes(rng, 1)[0]
        t = ROT90.then(ROT90).then(ROT90).then(ROT90)
        assert t.is_identity
        assert t.apply_box(box) == box

    @pytest.mark.parametrize("mirror", [Transform.mirror_x(), Transform.mirror_y()])
    @pytest.mark.parametrize("seed", range(8))
    def test_mirrors_are_involutions(self, mirror, seed):
        rng = random.Random(seed)
        box = _random_boxes(rng, 1)[0]
        assert mirror.then(mirror).is_identity
        assert mirror.then(mirror).apply_box(box) == box

    @pytest.mark.parametrize("seed", SEEDS)
    def test_inverse_composes_to_identity(self, seed):
        rng = random.Random(seed)
        # A random manhattan transform: orientation + translation.
        t = Transform.translation(rng.randrange(-99, 99), rng.randrange(-99, 99))
        for _ in range(rng.randrange(0, 4)):
            t = t.then(ROT90)
        if rng.random() < 0.5:
            t = t.then(Transform.mirror_x())
        box = _random_boxes(rng, 1)[0]
        assert t.then(t.inverse()).is_identity
        assert t.inverse().apply_box(t.apply_box(box)) == box
        x, y = rng.randrange(-50, 50), rng.randrange(-50, 50)
        assert t.inverse().apply_point(*t.apply_point(x, y)) == (x, y)
