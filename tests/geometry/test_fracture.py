"""Fracturing polygons and wires into boxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    Polygon,
    fracture_polygon,
    fracture_wire,
    regions_equal,
    union_area,
)


def _l_shape():
    return Polygon.from_points(
        [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
    )


class TestManhattan:
    def test_rectangle_is_one_box(self):
        boxes = fracture_polygon(Polygon.rectangle(Box(0, 0, 10, 20)))
        assert boxes == [Box(0, 0, 10, 20)]

    def test_l_shape_exact(self):
        boxes = fracture_polygon(_l_shape())
        assert union_area(boxes) == _l_shape().area
        assert regions_equal(boxes, [Box(0, 0, 10, 5), Box(0, 5, 5, 10)])

    def test_boxes_are_disjoint(self):
        boxes = fracture_polygon(_l_shape())
        assert union_area(boxes) == sum(b.area for b in boxes)

    def test_vertical_coalescing(self):
        # A plus-shape fractures into 3 boxes, not 5 slabs.
        plus = Polygon.from_points(
            [
                (2, 0), (4, 0), (4, 2), (6, 2), (6, 4), (4, 4),
                (4, 6), (2, 6), (2, 4), (0, 4), (0, 2), (2, 2),
            ]
        )
        boxes = fracture_polygon(plus)
        assert union_area(boxes) == plus.area
        assert len(boxes) == 3

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 20), st.integers(0, 20),
                st.integers(1, 10), st.integers(1, 10),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_manhattan_union_area_preserved(self, rects):
        # Fracture each rectangle-polygon and compare regions.
        sources = [Box(x, y, x + w, y + h) for x, y, w, h in rects]
        fractured = [
            b for box in sources
            for b in fracture_polygon(Polygon.rectangle(box))
        ]
        assert regions_equal(fractured, sources)


class TestNonManhattan:
    def test_triangle_area_approximate(self):
        tri = Polygon.from_points([(0, 0), (1000, 0), (0, 1000)])
        boxes = fracture_polygon(tri, resolution=50)
        approx = union_area(boxes)
        assert approx == pytest.approx(tri.area, rel=0.11)

    def test_finer_resolution_tighter(self):
        tri = Polygon.from_points([(0, 0), (1000, 0), (0, 1000)])
        coarse = abs(union_area(fracture_polygon(tri, resolution=200)) - tri.area)
        fine = abs(union_area(fracture_polygon(tri, resolution=10)) - tri.area)
        assert fine <= coarse

    def test_resolution_must_be_positive(self):
        with pytest.raises(ValueError):
            fracture_polygon(_l_shape(), resolution=0)

    def test_degenerate_bowtie_rejected(self):
        # The symmetric bowtie has zero net signed area and is rejected
        # at construction, before fracturing can mis-handle it.
        with pytest.raises(ValueError):
            Polygon.from_points([(0, 0), (10, 10), (10, 0), (0, 10)])


class TestWires:
    def test_horizontal_segment(self):
        boxes = fracture_wire([(0, 0), (100, 0)], width=20)
        assert boxes == [Box(-10, -10, 110, 10)]

    def test_vertical_segment(self):
        boxes = fracture_wire([(0, 0), (0, 50)], width=10)
        assert boxes == [Box(-5, -5, 5, 55)]

    def test_single_point_wire_is_square(self):
        assert fracture_wire([(5, 5)], width=4) == [Box(3, 3, 7, 7)]

    def test_l_wire_covers_corner(self):
        boxes = fracture_wire([(0, 0), (40, 0), (40, 40)], width=8)
        # Two 48x8 arms sharing one 8x8 corner square.
        assert union_area(boxes) == 48 * 8 + 48 * 8 - 8 * 8
        assert any(b.contains_point(40, 0) for b in boxes)

    def test_diagonal_wire_approximated(self):
        boxes = fracture_wire([(0, 0), (100, 100)], width=10, resolution=20)
        assert len(boxes) >= 5
        assert any(b.contains_point(0, 0) for b in boxes)
        assert any(b.contains_point(100, 100) for b in boxes)

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            fracture_wire([(0, 0), (10, 0)], width=3)

    def test_empty_wire_rejected(self):
        with pytest.raises(ValueError):
            fracture_wire([], width=4)
