"""Transforms: the manhattan affine group and CIF call semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Box, Transform

translations = st.integers(min_value=-1000, max_value=1000)


def transforms():
    base = st.sampled_from(
        [
            Transform.identity(),
            Transform.mirror_x(),
            Transform.mirror_y(),
            Transform.rotation(0, 1),
            Transform.rotation(-1, 0),
            Transform.rotation(0, -1),
        ]
    )
    return st.builds(
        lambda t, dx, dy: t.then(Transform.translation(dx, dy)),
        base,
        translations,
        translations,
    )


class TestConstruction:
    def test_identity(self):
        assert Transform.identity().apply_point(3, 4) == (3, 4)

    def test_translation(self):
        assert Transform.translation(10, -5).apply_point(1, 1) == (11, -4)

    def test_mirror_x_negates_x(self):
        assert Transform.mirror_x().apply_point(3, 4) == (-3, 4)

    def test_mirror_y_negates_y(self):
        assert Transform.mirror_y().apply_point(3, 4) == (3, -4)

    def test_rotation_90(self):
        # R 0 1: +x axis maps to +y.
        assert Transform.rotation(0, 1).apply_point(1, 0) == (0, 1)
        assert Transform.rotation(0, 1).apply_point(0, 1) == (-1, 0)

    def test_rotation_180(self):
        assert Transform.rotation(-1, 0).apply_point(2, 3) == (-2, -3)

    def test_off_axis_rotation_rejected(self):
        with pytest.raises(ValueError):
            Transform.rotation(1, 1)

    def test_bad_orientation_matrix_rejected(self):
        with pytest.raises(ValueError):
            Transform(a=2, b=0, c=0, d=1)


class TestGroup:
    def test_then_order(self):
        # Translate then rotate differs from rotate then translate.
        t = Transform.translation(10, 0)
        r = Transform.rotation(0, 1)
        assert t.then(r).apply_point(0, 0) == (0, 10)
        assert r.then(t).apply_point(0, 0) == (10, 0)

    @given(transforms(), st.integers(-500, 500), st.integers(-500, 500))
    def test_inverse_roundtrip(self, t, x, y):
        ix, iy = t.inverse().apply_point(*t.apply_point(x, y))
        assert (ix, iy) == (x, y)

    @given(transforms(), transforms(), st.integers(-50, 50), st.integers(-50, 50))
    def test_composition_associative_on_points(self, t1, t2, x, y):
        composed = t1.then(t2)
        stepwise = t2.apply_point(*t1.apply_point(x, y))
        assert composed.apply_point(x, y) == stepwise

    def test_mirror_is_involution(self):
        m = Transform.mirror_x()
        assert m.then(m).is_identity


class TestBoxes:
    @given(transforms())
    def test_apply_box_preserves_area(self, t):
        box = Box(1, 2, 7, 11)
        assert t.apply_box(box).area == box.area

    def test_rotated_box_swaps_extents(self):
        box = Box(0, 0, 4, 2)
        rotated = Transform.rotation(0, 1).apply_box(box)
        assert {rotated.width, rotated.height} == {4, 2}
        assert rotated.width == 2

    def test_orientation_key(self):
        assert Transform.identity().orientation == (1, 0, 0, 1)
        assert Transform.mirror_x().orientation == (-1, 0, 0, 1)
