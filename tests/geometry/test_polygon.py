"""Polygons: areas, crossings, and validity checks."""

import pytest

from repro.geometry import Box, Polygon


class TestConstruction:
    def test_triangle(self):
        tri = Polygon.from_points([(0, 0), (10, 0), (0, 10)])
        assert tri.area == 50

    def test_rectangle_helper(self):
        poly = Polygon.rectangle(Box(0, 0, 4, 6))
        assert poly.area == 24
        assert poly.is_manhattan()

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon.from_points([(0, 0), (1, 1)])

    def test_zero_area(self):
        with pytest.raises(ValueError):
            Polygon.from_points([(0, 0), (5, 0), (10, 0)])


class TestProperties:
    def test_signed_area_orientation(self):
        ccw = Polygon.from_points([(0, 0), (10, 0), (10, 10), (0, 10)])
        cw = Polygon.from_points([(0, 0), (0, 10), (10, 10), (10, 0)])
        assert ccw.signed_area2() == 200
        assert cw.signed_area2() == -200
        assert ccw.area == cw.area == 100

    def test_bbox(self):
        poly = Polygon.from_points([(0, 0), (10, 0), (5, 8)])
        assert poly.bbox() == Box(0, 0, 10, 8)

    def test_manhattan_detection(self):
        L = Polygon.from_points(
            [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
        )
        assert L.is_manhattan()
        assert not Polygon.from_points([(0, 0), (10, 0), (5, 8)]).is_manhattan()


class TestCrossings:
    def test_rectangle_crossings(self):
        poly = Polygon.rectangle(Box(0, 0, 10, 10))
        assert poly.crossings_at(5.0) == [0, 10]

    def test_l_shape_crossings(self):
        L = Polygon.from_points(
            [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
        )
        assert L.crossings_at(2.5) == [0, 10]
        assert L.crossings_at(7.5) == [0, 5]

    def test_triangle_interpolation(self):
        tri = Polygon.from_points([(0, 0), (10, 0), (0, 10)])
        xs = tri.crossings_at(5.0)
        assert xs == [0, 5]

    def test_outside_is_empty(self):
        poly = Polygon.rectangle(Box(0, 0, 10, 10))
        assert poly.crossings_at(11.0) == []
