"""Cross-subsystem integration: every path from CIF text to netlist.

The full pipeline matrix: CIF text -> parse -> {ACE, HEXT, raster,
polyflat} -> wirelist text -> parse -> flatten, all agreeing with each
other, over workloads exercising hierarchy, transforms, and every layer.
"""

import pytest

from repro import extract
from repro.baselines import extract_polyflat, extract_raster
from repro.cif import parse, write
from repro.hext import hext_extract
from repro.hext.wirelist import to_hierarchical_wirelist
from repro.wirelist import (
    circuit_to_flat,
    compare_netlists,
    flatten,
    parse_wirelist,
    to_wirelist,
    write_wirelist,
)
from repro.workloads import (
    build_chip,
    inverter,
    inverter_rows,
    mirrored_array,
    transistor_array,
)

CASES = [
    ("inverter", inverter),
    ("rows", lambda: inverter_rows(2, 3)),
    ("array", lambda: transistor_array(4)),
    ("mirrored", lambda: mirrored_array(2)),
    ("dchip", lambda: build_chip("dchip", scale=0.02)),
]


@pytest.mark.parametrize("name,factory", CASES)
def test_cif_roundtrip_preserves_netlist(name, factory):
    layout = factory()
    direct = circuit_to_flat(extract(layout))
    roundtripped = circuit_to_flat(extract(parse(write(layout))))
    report = compare_netlists(direct, roundtripped)
    assert report.equivalent, f"{name}: {report.reason}"


@pytest.mark.parametrize("name,factory", CASES)
def test_all_four_extractors_agree(name, factory):
    layout = factory()
    reference = circuit_to_flat(extract(layout))
    for label, circuit in (
        ("raster", extract_raster(layout)),
        ("polyflat", extract_polyflat(layout)),
        ("hext", hext_extract(layout).circuit),
    ):
        report = compare_netlists(reference, circuit_to_flat(circuit))
        assert report.equivalent, f"{name}/{label}: {report.reason}"


@pytest.mark.parametrize("name,factory", CASES)
def test_flat_wirelist_text_roundtrip(name, factory):
    layout = factory()
    circuit = extract(layout, keep_geometry=True)
    text = write_wirelist(to_wirelist(circuit, name=name))
    recovered = flatten(parse_wirelist(text))
    report = compare_netlists(circuit_to_flat(circuit), recovered)
    assert report.equivalent, f"{name}: {report.reason}"


@pytest.mark.parametrize("name,factory", CASES)
def test_hierarchical_wirelist_text_roundtrip(name, factory):
    layout = factory()
    result = hext_extract(layout)
    text = write_wirelist(to_hierarchical_wirelist(result, name=name))
    recovered = flatten(parse_wirelist(text))
    report = compare_netlists(
        circuit_to_flat(extract(layout)), recovered
    )
    assert report.equivalent, f"{name}: {report.reason}"


def test_geometry_option_does_not_change_netlist():
    layout = build_chip("cherry", scale=0.05)
    plain = circuit_to_flat(extract(layout))
    with_geometry = circuit_to_flat(extract(layout, keep_geometry=True))
    assert compare_netlists(plain, with_geometry).equivalent
