"""Union-find invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind()
        a, b = uf.make(), uf.make()
        assert a != b
        assert not uf.same(a, b)

    def test_union(self):
        uf = UnionFind()
        a, b, c = uf.make(), uf.make(), uf.make()
        uf.union(a, b)
        assert uf.same(a, b)
        assert not uf.same(a, c)

    def test_union_returns_root(self):
        uf = UnionFind()
        a, b = uf.make(), uf.make()
        root = uf.union(a, b)
        assert uf.find(a) == uf.find(b) == root

    def test_roots(self):
        uf = UnionFind()
        ids = [uf.make() for _ in range(4)]
        uf.union(ids[0], ids[1])
        uf.union(ids[2], ids[3])
        assert len(uf.roots()) == 2

    def test_fold(self):
        uf = UnionFind()
        a, b, c = uf.make(), uf.make(), uf.make()
        uf.union(a, b)
        folded = uf.fold({a: [1], b: [2], c: [3]})
        assert sorted(folded[uf.find(a)]) == [1, 2]
        assert folded[uf.find(c)] == [3]


class TestProperties:
    @given(
        st.integers(1, 50),
        st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=100),
    )
    def test_equivalence_closure(self, n, pairs):
        uf = UnionFind()
        for _ in range(n):
            uf.make()
        pairs = [(a % n, b % n) for a, b in pairs]
        for a, b in pairs:
            uf.union(a, b)
        # Reference: naive closure by repeated merging of sets.
        groups = [{i} for i in range(n)]
        for a, b in pairs:
            ga = next(g for g in groups if a in g)
            gb = next(g for g in groups if b in g)
            if ga is not gb:
                ga |= gb
                groups.remove(gb)
        for group in groups:
            items = sorted(group)
            for x in items[1:]:
                assert uf.same(items[0], x)
        assert len(uf.roots()) == len(groups)
