"""Reproduction of Figures 3-3 / 3-4: the inverter and its wirelist."""

import pytest

from repro import extract
from repro.wirelist import parse_wirelist, to_wirelist, write_wirelist


@pytest.fixture(scope="module")
def circuit(inverter_layout):
    return extract(inverter_layout, keep_geometry=True)


class TestCircuitShape:
    def test_two_devices_four_nets(self, circuit):
        assert len(circuit.devices) == 2
        assert len(circuit.nets) == 4

    def test_net_names(self, circuit):
        names = {n.names[0] for n in circuit.nets if n.names}
        assert names == {"VDD", "GND", "IN", "OUT"}

    def test_one_enhancement_one_depletion(self, circuit):
        kinds = sorted(d.kind for d in circuit.devices)
        assert kinds == ["nDep", "nEnh"]

    def test_pulldown_connectivity(self, circuit):
        enh = next(d for d in circuit.devices if d.kind == "nEnh")
        by_index = {n.index: n for n in circuit.nets}
        assert "IN" in by_index[enh.gate].names
        terminal_names = {
            by_index[enh.source].names[0],
            by_index[enh.drain].names[0],
        }
        assert terminal_names == {"OUT", "GND"}

    def test_pullup_connectivity(self, circuit):
        dep = next(d for d in circuit.devices if d.kind == "nDep")
        by_index = {n.index: n for n in circuit.nets}
        # The load's gate is tied to the output through the buried contact.
        assert "OUT" in by_index[dep.gate].names
        terminal_names = {
            by_index[dep.source].names[0],
            by_index[dep.drain].names[0],
        }
        assert terminal_names == {"VDD", "OUT"}

    def test_sizes(self, circuit):
        enh = next(d for d in circuit.devices if d.kind == "nEnh")
        dep = next(d for d in circuit.devices if d.kind == "nDep")
        # 2x2 lambda pulldown, 2x8 lambda depletion load (lambda = 250).
        assert (enh.length, enh.width) == (500, 500)
        assert (dep.length, dep.width) == (2000, 500)

    def test_ratio_is_4(self, circuit):
        enh = next(d for d in circuit.devices if d.kind == "nEnh")
        dep = next(d for d in circuit.devices if d.kind == "nDep")
        z_up = dep.length / dep.width
        z_down = enh.length / enh.width
        assert z_up / z_down == 4.0


class TestWirelistText:
    def test_format_matches_figure_3_4(self, circuit):
        text = write_wirelist(to_wirelist(circuit, name="inverter.cif"))
        assert text.startswith('(DefPart "inverter.cif"')
        assert "(DefPart nEnh (Export Source Gate Drain))" in text
        assert "(DefPart nDep (Export Source Gate Drain))" in text
        assert "(Part nEnh (InstName" in text
        assert "(Part nDep (InstName" in text
        assert "(Channel (Length" in text
        assert "(Net N1 VDD" in text
        assert "(Local N1 N2 N3 N4 )" in text

    def test_geometry_emitted_as_cif(self, circuit):
        text = write_wirelist(to_wirelist(circuit, name="inv"))
        assert "L NX; B" in text  # channel geometry pseudo-layer
        assert "L NM; B" in text  # net geometry

    def test_geometry_can_be_suppressed(self, circuit):
        text = write_wirelist(
            to_wirelist(circuit, name="inv", include_geometry=False)
        )
        assert "CIF" not in text

    def test_roundtrip_parse(self, circuit):
        text = write_wirelist(to_wirelist(circuit, name="inv"))
        back = parse_wirelist(text)
        part = back.top_part
        assert len(part.devices) == 2
        assert {d.kind for d in part.devices} == {"nEnh", "nDep"}
        lengths = sorted(d.length for d in part.devices)
        assert lengths == [500, 2000]
