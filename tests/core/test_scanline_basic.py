"""Scanline connectivity rules, exercised through tiny hand layouts."""

from repro import extract
from repro.cif import Label, Layout
from repro.core import extract_report
from repro.geometry import Box


def _layout(boxes, labels=()):
    layout = Layout()
    for layer, x1, y1, x2, y2 in boxes:
        layout.top.add_box(layer, Box(x1, y1, x2, y2))
    for name, x, y, layer in labels:
        layout.top.add_label(Label(name, x, y, layer))
    return layout


class TestSameLayerConnectivity:
    def test_overlapping_boxes_one_net(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NM", 5, 5, 15, 15)]))
        assert len(circuit.nets) == 1

    def test_horizontally_abutting_boxes_one_net(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NM", 10, 0, 20, 10)]))
        assert len(circuit.nets) == 1

    def test_vertically_abutting_boxes_one_net(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NM", 0, 10, 10, 20)]))
        assert len(circuit.nets) == 1

    def test_corner_contact_two_nets(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NM", 10, 10, 20, 20)]))
        assert len(circuit.nets) == 2

    def test_disjoint_boxes_two_nets(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NM", 20, 0, 30, 10)]))
        assert len(circuit.nets) == 2

    def test_u_shape_merges_back(self):
        # Two arms going up from a base: one net, discovered top-down as
        # two and merged when the scanline reaches the base.
        circuit = extract(
            _layout(
                [
                    ("NM", 0, 0, 30, 10),
                    ("NM", 0, 10, 10, 40),
                    ("NM", 20, 10, 30, 40),
                ]
            )
        )
        assert len(circuit.nets) == 1

    def test_different_layers_do_not_connect(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NP", 0, 0, 10, 10)]))
        assert len(circuit.nets) == 2

    def test_taller_box_split_and_merged(self):
        # A tall box overlapped mid-way by a short one: the continuation
        # mechanism must keep it a single net.
        report = extract_report(
            _layout([("NM", 0, 0, 4, 100), ("NM", 2, 40, 20, 60)])
        )
        assert len(report.circuit.nets) == 1
        assert report.stats.splits >= 1


class TestCrossLayer:
    def test_contact_joins_metal_and_poly(self):
        circuit = extract(
            _layout(
                [
                    ("NM", 0, 0, 10, 10),
                    ("NP", 0, 0, 10, 10),
                    ("NC", 2, 2, 8, 8),
                ]
            )
        )
        assert len(circuit.nets) == 1

    def test_contact_joins_metal_and_diffusion(self):
        circuit = extract(
            _layout(
                [
                    ("NM", 0, 0, 10, 10),
                    ("ND", 0, 0, 10, 10),
                    ("NC", 2, 2, 8, 8),
                ]
            )
        )
        assert len(circuit.nets) == 1

    def test_butting_contact_joins_all_three(self):
        circuit = extract(
            _layout(
                [
                    ("NM", 0, 0, 20, 10),
                    ("NP", 0, 0, 10, 10),
                    ("ND", 10, 0, 20, 10),
                    ("NC", 4, 2, 16, 8),
                ]
            )
        )
        assert len(circuit.nets) == 1

    def test_metal_over_poly_without_cut_stays_separate(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10), ("NP", 0, 0, 10, 10)]))
        assert len(circuit.nets) == 2

    def test_buried_contact_joins_poly_and_diffusion(self):
        circuit = extract(
            _layout(
                [
                    ("NP", 0, 0, 10, 10),
                    ("ND", 0, 0, 10, 10),
                    ("NB", 0, 0, 10, 10),
                ]
            )
        )
        assert len(circuit.nets) == 1
        assert len(circuit.devices) == 0  # buried suppresses the channel


class TestChannelBreaksDiffusion:
    def test_poly_crossing_splits_diffusion(self):
        circuit = extract(
            _layout([("ND", 0, 0, 4, 30), ("NP", -10, 10, 14, 20)])
        )
        # Diffusion above and below the gate are distinct nets; poly is a third.
        assert len(circuit.devices) == 1
        assert len(circuit.nets) == 3
        device = circuit.devices[0]
        assert device.source != device.drain

    def test_poly_not_over_diffusion_no_device(self):
        circuit = extract(
            _layout([("ND", 0, 0, 4, 10), ("NP", 20, 0, 24, 10)])
        )
        assert circuit.devices == []
        assert len(circuit.nets) == 2


class TestLabels:
    def test_label_names_net(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 10, 10)],
                labels=[("CLK", 5, 5, "NM")],
            )
        )
        assert circuit.nets[0].names == ["CLK"]

    def test_two_labels_same_net(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 30, 10)],
                labels=[("A", 2, 5, "NM"), ("B", 28, 5, "NM")],
            )
        )
        assert circuit.nets[0].names == ["A", "B"]

    def test_layerless_label_searches_conducting_layers(self):
        circuit = extract(
            _layout([("ND", 0, 0, 10, 10)], labels=[("S", 5, 5, None)])
        )
        assert circuit.nets[0].names == ["S"]

    def test_unattached_label_warns(self):
        circuit = extract(
            _layout([("NM", 0, 0, 10, 10)], labels=[("LOST", 50, 50, "NM")])
        )
        assert any("LOST" in w for w in circuit.warnings)

    def test_label_on_implant_attaches_nothing(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 10, 10), ("NI", 20, 0, 30, 10)],
                labels=[("X", 25, 5, "NI")],
            )
        )
        assert any("X" in w for w in circuit.warnings)


class TestStatistics:
    def test_stops_at_edges_only(self):
        # Two boxes with 4 distinct horizontal edges -> 4 stops.
        report = extract_report(
            _layout([("NM", 0, 0, 10, 10), ("NM", 20, 5, 30, 15)])
        )
        assert report.stats.stops == 4
        assert report.stats.boxes_in == 2

    def test_shared_edges_coalesce_stops(self):
        report = extract_report(
            _layout([("NM", 0, 0, 10, 10), ("NM", 20, 0, 30, 10)])
        )
        assert report.stats.stops == 2

    def test_net_geometry_kept_on_request(self):
        circuit = extract(
            _layout([("NM", 0, 0, 10, 10)]), keep_geometry=True
        )
        assert circuit.nets[0].geometry == [("NM", Box(0, 0, 10, 10))]

    def test_net_geometry_suppressed_by_default(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10)]))
        assert circuit.nets[0].geometry == []

    def test_net_location_is_topmost_leftmost(self):
        circuit = extract(
            _layout([("NM", 5, 0, 10, 8), ("NM", 0, 6, 30, 10)])
        )
        assert circuit.nets[0].location == (0, 10)
