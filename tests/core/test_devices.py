"""Device recognition and sizing through the scanline engine."""

from repro import extract
from repro.cif import Layout
from repro.geometry import Box


def _layout(boxes):
    layout = Layout()
    for layer, x1, y1, x2, y2 in boxes:
        layout.top.add_box(layer, Box(x1, y1, x2, y2))
    return layout


class TestRecognition:
    def test_simple_crossing(self):
        circuit = extract(
            _layout([("ND", 10, 0, 14, 30), ("NP", 0, 10, 24, 14)])
        )
        (device,) = circuit.devices
        assert device.kind == "nEnh"
        assert device.area == 4 * 4
        assert device.length == 4
        assert device.width == 4

    def test_implant_makes_depletion(self):
        circuit = extract(
            _layout(
                [
                    ("ND", 10, 0, 14, 30),
                    ("NP", 0, 10, 24, 14),
                    ("NI", 8, 8, 16, 16),
                ]
            )
        )
        (device,) = circuit.devices
        assert device.kind == "nDep"
        assert device.depletion

    def test_implant_elsewhere_stays_enhancement(self):
        circuit = extract(
            _layout(
                [
                    ("ND", 10, 0, 14, 30),
                    ("NP", 0, 10, 24, 14),
                    ("NI", 100, 100, 108, 108),
                ]
            )
        )
        assert circuit.devices[0].kind == "nEnh"

    def test_buried_blocks_channel(self):
        circuit = extract(
            _layout(
                [
                    ("ND", 10, 0, 14, 30),
                    ("NP", 0, 10, 24, 14),
                    ("NB", 10, 10, 14, 14),
                ]
            )
        )
        assert circuit.devices == []
        assert len(circuit.nets) == 1  # everything tied through the buried

    def test_two_crossings_two_devices(self):
        circuit = extract(
            _layout(
                [
                    ("ND", 10, 0, 14, 50),
                    ("NP", 0, 10, 24, 14),
                    ("NP", 0, 30, 24, 34),
                ]
            )
        )
        assert len(circuit.devices) == 2
        # Middle diffusion is shared between the two devices.
        mid = set(
            t for d in circuit.devices for t in (d.source, d.drain)
        )
        assert len(mid) == 3

    def test_mesh_counts(self):
        # 2 poly lines x 2 diffusion lines = 4 transistors.
        circuit = extract(
            _layout(
                [
                    ("NP", 0, 10, 40, 14),
                    ("NP", 0, 30, 40, 34),
                    ("ND", 10, 0, 14, 40),
                    ("ND", 30, 0, 34, 40),
                ]
            )
        )
        assert len(circuit.devices) == 4


class TestTerminals:
    def test_gate_is_poly_net(self):
        circuit = extract(
            _layout([("ND", 10, 0, 14, 30), ("NP", 0, 10, 24, 14)])
        )
        (device,) = circuit.devices
        poly_net = next(
            n.index
            for n in circuit.nets
            if n.index not in (device.source, device.drain)
        )
        assert device.gate == poly_net

    def test_horizontal_channel_terminals(self):
        # Poly column crossing a diffusion row: source/drain left & right.
        circuit = extract(
            _layout([("ND", 0, 10, 30, 14), ("NP", 10, 0, 14, 24)])
        )
        (device,) = circuit.devices
        assert device.width == 4
        assert device.length == 4
        assert sorted(device.terminals.values()) == [4, 4]

    def test_l_shaped_channel(self):
        # Diffusion bends under an L of poly; W is the mean of the two
        # contact edges, L = area / W (section 3's algorithm).
        circuit = extract(
            _layout(
                [
                    ("ND", 0, 0, 4, 20),
                    ("NP", -2, 8, 10, 16),
                ]
            )
        )
        (device,) = circuit.devices
        assert device.area == 4 * 8
        assert device.width == 4
        assert device.length == 8

    def test_wide_transistor(self):
        circuit = extract(
            _layout([("ND", 0, 0, 40, 30), ("NP", -10, 10, 50, 14)])
        )
        (device,) = circuit.devices
        assert device.width == 40
        assert device.length == 4


class TestMalformed:
    def test_dead_end_channel_single_terminal(self):
        # Diffusion ends under the poly: one terminal only.
        circuit = extract(
            _layout([("ND", 10, 0, 14, 12), ("NP", 0, 10, 24, 20)])
        )
        (device,) = circuit.devices
        assert device.drain is None
        assert device.is_malformed

    def test_fully_covered_diffusion_no_terminals(self):
        circuit = extract(
            _layout([("ND", 4, 4, 8, 8), ("NP", 0, 0, 12, 12)])
        )
        (device,) = circuit.devices
        assert device.source is None and device.drain is None
        assert device.is_malformed
        assert any("malformed" in w for w in circuit.warnings)

    def test_well_formed_is_not_flagged(self, inverter_layout):
        circuit = extract(inverter_layout)
        assert all(not d.is_malformed for d in circuit.devices)
        assert not any("malformed" in w for w in circuit.warnings)
