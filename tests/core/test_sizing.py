"""Transistor sizing rules (section 3)."""

import pytest

from repro.core import size_device


class TestTwoTerminal:
    def test_width_is_mean_of_edges(self):
        sized = size_device(area=40000, terminals={1: 300, 2: 100})
        assert sized.width == 200
        assert sized.length == 200
        assert sized.source == 1  # larger perimeter
        assert sized.drain == 2

    def test_tie_breaks_toward_lower_index(self):
        sized = size_device(area=100, terminals={7: 10, 3: 10})
        assert sized.source == 3
        assert sized.drain == 7

    def test_square_channel(self):
        sized = size_device(area=4, terminals={1: 2, 2: 2})
        assert sized.width == 2
        assert sized.length == 2


class TestDegenerate:
    def test_single_terminal(self):
        sized = size_device(area=100, terminals={5: 10})
        assert sized.source == 5
        assert sized.drain is None
        assert sized.width == 10
        assert sized.length == 10

    def test_no_terminals(self):
        sized = size_device(area=100, terminals={})
        assert sized.source is None
        assert sized.drain is None
        assert sized.width == 0
        assert sized.length == 0

    def test_extra_terminals_ignored_for_width(self):
        sized = size_device(area=100, terminals={1: 50, 2: 40, 3: 1})
        assert sized.width == 45
        assert {sized.source, sized.drain} == {1, 2}

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            size_device(area=-1, terminals={})
