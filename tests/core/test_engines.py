"""Strip-engine selection and cross-engine parity.

The contract under test is docs/ENGINES.md's: engine choice is purely a
speed knob — ``auto`` silently degrades to python when numpy is absent,
an *explicit* numpy request without numpy is a clean error, and every
engine produces byte-identical wirelists and identical host counters.
"""

from __future__ import annotations

import pytest

from repro.cif import parse
from repro.core import extract, extract_report
from repro.core.scanline import ScanlineEngine
from repro.core.stripengine import (
    ENGINE_CHOICES,
    EngineUnavailable,
    numpy_available,
    resolve_engine,
)
from repro.frontend.stream import GeometryStream
from repro.geometry import Box
from repro.hext import hext_extract
from repro.hext.wirelist import to_hierarchical_wirelist
from repro.tech import NMOS
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads.cells import inverter, nand2
from repro.workloads.mesh import poly_diff_mesh

from tests.golden.cases import GOLDEN_CASES, render_case

TECH = NMOS()

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy strip engine not importable"
)


class TestResolveEngine:
    def test_choices_are_the_public_knob(self):
        assert ENGINE_CHOICES == ("auto", "python", "numpy")

    def test_python_always_resolves(self):
        assert resolve_engine("python") == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown strip engine"):
            resolve_engine("fortran")

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.stripengine.numpy_available", lambda: True
        )
        assert resolve_engine("auto") == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.stripengine.numpy_available", lambda: False
        )
        assert resolve_engine("auto") == "python"

    def test_explicit_numpy_without_numpy_is_clean_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.stripengine.numpy_available", lambda: False
        )
        with pytest.raises(EngineUnavailable, match="repro\\[fast\\]"):
            resolve_engine("numpy")

    def test_scanline_engine_records_resolved_name(self):
        engine = ScanlineEngine(TECH, engine="python")
        assert engine.engine_name == "python"

    def test_extract_report_records_engine(self):
        report = extract_report(inverter(), TECH, engine="python")
        assert report.options["engine"] == "python"


@requires_numpy
class TestCrossEngineParity:
    """Byte-identical wirelists and identical counters on both engines."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_goldens_byte_identical(self, name):
        assert render_case(name, "python") == render_case(name, "numpy")

    @pytest.mark.parametrize("name", ("inverter", "nand2"))
    def test_goldens_byte_identical_without_geometry(self, name):
        layout = GOLDEN_CASES[name]()
        texts = [
            write_wirelist(
                to_wirelist(extract(layout, TECH, engine=eng), name=name)
            )
            for eng in ("python", "numpy")
        ]
        assert texts[0] == texts[1]

    def test_mesh_parity_with_stats(self):
        layout = poly_diff_mesh(12)
        reports = {
            eng: extract_report(layout, TECH, engine=eng)
            for eng in ("python", "numpy")
        }
        texts = {
            eng: write_wirelist(to_wirelist(rep.circuit, name="mesh"))
            for eng, rep in reports.items()
        }
        assert texts["python"] == texts["numpy"]
        # The host owns the event machinery, so ScanStats must match
        # field for field -- any drift means an engine skipped or
        # repeated strip work.
        assert vars(reports["python"].stats) == vars(reports["numpy"].stats)

    def test_window_extraction_parity(self):
        # Boundary/partial-device paths (the rowwise build) agree too.
        layout = inverter()
        window = Box(0, 0, 10, 14)
        texts = []
        for eng in ("python", "numpy"):
            engine = ScanlineEngine(TECH, window=window, engine=eng)
            circuit = engine.run(GeometryStream(layout))
            texts.append(
                write_wirelist(to_wirelist(circuit, name="window"))
            )
        assert texts[0] == texts[1]

    def test_hext_parity(self):
        layout = nand2()
        texts = [
            write_wirelist(
                to_hierarchical_wirelist(
                    hext_extract(layout, TECH, engine=eng), name="nand2"
                )
            )
            for eng in ("python", "numpy")
        ]
        assert texts[0] == texts[1]

    def test_label_and_warning_parity(self):
        source = """
        DS 1;
        L NP; B 40 8 20 16;
        L ND; B 8 40 12 28;
        L NM; B 10 10 60 60;
        94 IN 4 16 NP;
        94 FLOAT 60 60 NM;
        DF;
        C 1;
        E
        """
        layout = parse(source)
        circuits = {
            eng: extract(layout, TECH, engine=eng)
            for eng in ("python", "numpy")
        }
        assert (
            circuits["python"].warnings == circuits["numpy"].warnings
        )
        assert write_wirelist(
            to_wirelist(circuits["python"], name="l")
        ) == write_wirelist(to_wirelist(circuits["numpy"], name="l"))
