"""Event-heap complexity guardrail (deterministic, counter-based).

The paper's speed claim is that the scanline does constant work per
*event*, not per active interval: stops are scheduled from per-layer
bottom-edge heaps, so `_next_stop` peeks a bounded number of heads and
`_expire` pops only what actually ends.  These tests pin that down with
the ScanStats event counters on the section-4 worst-case mesh, where the
active population grows linearly with mesh size — no wall clocks, so no
flakiness on slow machines.
"""

from __future__ import annotations

import pytest

from repro.core.extractor import extract_report
from repro.core.scanline import ScanlineEngine
from repro.frontend.stream import GeometryStream
from repro.tech import NMOS
from repro.workloads.mesh import poly_diff_mesh

SIZES = (16, 32, 64)


def run_mesh(n: int) -> ScanlineEngine:
    engine = ScanlineEngine(NMOS())
    engine.run(GeometryStream(poly_diff_mesh(n)))
    return engine


@pytest.fixture(scope="module")
def engines():
    return {n: run_mesh(n) for n in SIZES}


class TestEventConservation:
    """Every scheduled interval leaves the heap exactly once."""

    def test_pushes_balance_pops(self, engines):
        for engine in engines.values():
            s = engine.stats
            assert s.heap_pushes == s.heap_pops

    def test_pops_are_expiries_or_lazy_discards(self, engines):
        for engine in engines.values():
            s = engine.stats
            assert s.expired + s.lazy_discards == s.heap_pops

    def test_every_event_is_an_interval(self, engines):
        # One heap entry per interval ever created: pushes can never
        # exceed the intervals the sweep materializes (boxes + merges
        # + splits is a generous upper bound on creations).
        for engine in engines.values():
            s = engine.stats
            assert s.heap_pushes <= s.boxes_in + s.merges + s.splits


class TestBoundedStopOverhead:
    """Per-stop scheduling work is O(tracked layers), not O(active)."""

    def test_overhead_bounded_by_layers(self, engines):
        for engine in engines.values():
            bound = 2 * len(engine._heaps)
            assert engine.stats.max_stop_overhead <= bound

    def test_total_scans_bounded_by_events(self, engines):
        # Aggregate form: everything examined is either removed (a pop)
        # or one of at most 2 peeks per layer per stop.
        for engine in engines.values():
            s = engine.stats
            budget = s.heap_pops + 2 * len(engine._heaps) * s.stops
            assert s.intervals_scanned <= budget

    def test_overhead_constant_while_active_grows(self, engines):
        # THE regression assertion: doubling the mesh doubles the active
        # population (peak_active ~ n) but the worst per-stop overhead
        # must not grow with it.  The old engine re-scanned every active
        # interval at every stop, making this scale linearly.
        overheads = [engines[n].stats.max_stop_overhead for n in SIZES]
        peaks = [engines[n].stats.peak_active for n in SIZES]
        assert peaks[-1] >= 3 * peaks[0]  # the workload does scale
        assert max(overheads) == min(overheads)  # the scheduler does not

    def test_scans_per_stop_tracks_expiries(self, engines):
        # Issue wording: intervals-scanned-per-stop is bounded by a
        # constant factor of the intervals actually expiring.
        for engine in engines.values():
            s = engine.stats
            per_stop_scans = s.intervals_scanned / s.stops
            per_stop_expiries = max(s.expired / s.stops, 1.0)
            bound = 2 * len(engine._heaps)
            assert per_stop_scans <= bound * per_stop_expiries


class TestCountersSurfaced:
    def test_extract_report_exposes_event_counters(self):
        report = extract_report(poly_diff_mesh(8))
        s = report.stats
        assert s.heap_pushes > 0
        assert s.heap_pushes == s.heap_pops
        assert s.max_stop_overhead > 0
