"""Differential property tests: three extractors, one answer.

ACE's scanline, the raster baseline, and the region-merge baseline share
no connectivity code, so agreement over randomized lambda-aligned
layouts is strong evidence each is correct.  (This is the test-suite
version of the paper's cross-tool validation in Table 5-2.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import extract
from repro.baselines import extract_polyflat, extract_raster
from repro.cif import Layout
from repro.tech import NMOS
from repro.wirelist import circuit_to_flat, compare_netlists

#: Grid-aligned technology for the raster oracle.
TECH = NMOS(lambda_=10)

layer_box = st.tuples(
    st.sampled_from(["NM", "NP", "ND", "NC", "NI", "NB"]),
    st.integers(0, 12),
    st.integers(0, 12),
    st.integers(1, 6),
    st.integers(1, 6),
)


def _layout(specs) -> Layout:
    from repro.geometry import Box

    layout = Layout()
    for layer, x, y, w, h in specs:
        layout.top.add_box(
            layer, Box(x * 10, y * 10, (x + w) * 10, (y + h) * 10)
        )
    return layout


@settings(max_examples=60, deadline=None)
@given(st.lists(layer_box, min_size=1, max_size=14))
def test_ace_matches_polyflat(specs):
    layout = _layout(specs)
    ace = circuit_to_flat(extract(layout, TECH))
    ref = circuit_to_flat(extract_polyflat(layout, TECH))
    report = compare_netlists(ace, ref)
    assert report.equivalent, report.reason


@settings(max_examples=60, deadline=None)
@given(st.lists(layer_box, min_size=1, max_size=14))
def test_ace_matches_raster(specs):
    layout = _layout(specs)
    ace = circuit_to_flat(extract(layout, TECH))
    ref = circuit_to_flat(extract_raster(layout, TECH))
    report = compare_netlists(ace, ref)
    assert report.equivalent, report.reason


@settings(max_examples=40, deadline=None)
@given(st.lists(layer_box, min_size=1, max_size=12))
def test_device_areas_match_polyflat(specs):
    layout = _layout(specs)
    ace = extract(layout, TECH)
    ref = extract_polyflat(layout, TECH)
    assert sorted(d.area for d in ace.devices) == sorted(
        d.area for d in ref.devices
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(layer_box, min_size=1, max_size=12))
def test_device_sizes_match_polyflat(specs):
    layout = _layout(specs)
    ace = extract(layout, TECH)
    ref = extract_polyflat(layout, TECH)
    assert sorted(
        (d.kind, round(d.width, 6), round(d.length, 6)) for d in ace.devices
    ) == sorted(
        (d.kind, round(d.width, 6), round(d.length, 6)) for d in ref.devices
    )
