"""The docs CI job's link check, run as part of tier-1 as well.

Keeping it in the test suite means a PR cannot go green locally while
the docs job would fail: broken intra-repo Markdown links surface in
both places.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_intra_repo_markdown_links():
    checker = _load_checker()
    missing = checker.broken_links(REPO_ROOT)
    formatted = "\n".join(
        f"{md.relative_to(REPO_ROOT)} -> {target}" for md, target in missing
    )
    assert not missing, f"broken intra-repo Markdown links:\n{formatted}"


def test_required_docs_exist_and_are_linked():
    required = (
        "INDEX.md",
        "ARCHITECTURE.md",
        "ENGINES.md",
        "EXTRACTION_SEMANTICS.md",
        "PARALLELISM.md",
    )
    for name in required:
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"
    readme = (REPO_ROOT / "README.md").read_text()
    for name in required:
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


def test_every_docs_page_is_indexed():
    checker = _load_checker()
    orphans = checker.unindexed_docs(REPO_ROOT)
    assert not orphans, (
        "docs pages missing from docs/INDEX.md: "
        + ", ".join(p.name for p in orphans)
    )
