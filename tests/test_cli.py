"""The ace-extract command-line interface."""

import pytest

from repro.cif import write
from repro.cli import main
from repro.workloads import inverter


@pytest.fixture()
def inverter_cif(tmp_path):
    path = tmp_path / "inverter.cif"
    path.write_text(write(inverter()))
    return str(path)


class TestFlat:
    def test_wirelist_to_stdout(self, inverter_cif, capsys):
        assert main([inverter_cif]) == 0
        out = capsys.readouterr().out
        assert out.startswith('(DefPart "inverter.cif"')
        assert "(Part nEnh" in out

    def test_output_file(self, inverter_cif, tmp_path, capsys):
        target = tmp_path / "out.wl"
        assert main([inverter_cif, "-o", str(target)]) == 0
        assert target.read_text().startswith("(DefPart")
        assert capsys.readouterr().out == ""

    def test_geometry_flag(self, inverter_cif, capsys):
        assert main([inverter_cif, "--geometry"]) == 0
        assert "CIF" in capsys.readouterr().out

    def test_stats_to_stderr(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "scanline stops" in err
        assert "devices/sec" in err

    def test_stats_event_counters(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "heap pushes" in err
        assert "scans/stop beyond removals" in err

    def test_check_clean(self, inverter_cif, capsys):
        assert main([inverter_cif, "--check"]) == 0


class TestHierarchical:
    def test_hierarchical_wirelist(self, inverter_cif, capsys):
        assert main([inverter_cif, "--hierarchical"]) == 0
        out = capsys.readouterr().out
        assert "(DefPart Window1" in out

    def test_hier_stats(self, inverter_cif, capsys):
        assert main([inverter_cif, "--hierarchical", "--stats"]) == 0
        assert "flat calls" in capsys.readouterr().err

    def test_jobs_flag(self, inverter_cif, capsys):
        assert main(
            [inverter_cif, "--hierarchical", "--jobs", "2", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "(DefPart Window1" in captured.out
        assert "jobs" in captured.err

    def test_cache_flag_warm_run_hits(self, inverter_cif, tmp_path, capsys):
        cache = str(tmp_path / "fragments")
        argv = [inverter_cif, "--hierarchical", "--cache", cache, "--stats"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "fragment cache 0 hits" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "hit rate 100%" in warm.err
        assert warm.out == cold.out  # cached run: byte-identical wirelist

    def test_jobs_cache_noted_in_flat_mode(self, inverter_cif, capsys):
        assert main([inverter_cif, "--jobs", "2"]) == 0
        assert "--hierarchical" in capsys.readouterr().err


class TestCheckFailures:
    def test_malformed_design_fails_check(self, tmp_path, capsys):
        from repro.cif import Layout, write as write_cif
        from repro.geometry import Box

        layout = Layout()
        layout.top.add_box("ND", Box(100, 0, 400, 1200))
        layout.top.add_box("NP", Box(0, 1000, 2400, 2000))
        path = tmp_path / "bad.cif"
        path.write_text(write_cif(layout))
        assert main([str(path), "--check"]) == 1
        assert "malformed" in capsys.readouterr().err


class TestPlotting:
    def test_ascii_plot_to_stderr(self, inverter_cif, capsys):
        assert main([inverter_cif, "--plot"]) == 0
        err = capsys.readouterr().err
        assert "T" in err  # transistor channels rendered

    def test_svg_written(self, inverter_cif, tmp_path):
        target = tmp_path / "chip.svg"
        assert main([inverter_cif, "--svg", str(target)]) == 0
        assert target.read_text().startswith("<svg")
