"""The ace-extract and repro-lint command-line interfaces."""

import json

import pytest

from repro.cif import write
from repro.cli import main
from repro.lint import INTERNAL_ERROR_EXIT, main as lint_main
from repro.workloads import inverter
from repro.workloads.violations import VIOLATION_SNIPPETS, drc_violations


@pytest.fixture()
def inverter_cif(tmp_path):
    path = tmp_path / "inverter.cif"
    path.write_text(write(inverter()))
    return str(path)


@pytest.fixture()
def violations_cif(tmp_path):
    path = tmp_path / "violations.cif"
    path.write_text(write(drc_violations()))
    return str(path)


class TestFlat:
    def test_wirelist_to_stdout(self, inverter_cif, capsys):
        assert main([inverter_cif]) == 0
        out = capsys.readouterr().out
        assert out.startswith('(DefPart "inverter.cif"')
        assert "(Part nEnh" in out

    def test_output_file(self, inverter_cif, tmp_path, capsys):
        target = tmp_path / "out.wl"
        assert main([inverter_cif, "-o", str(target)]) == 0
        assert target.read_text().startswith("(DefPart")
        assert capsys.readouterr().out == ""

    def test_geometry_flag(self, inverter_cif, capsys):
        assert main([inverter_cif, "--geometry"]) == 0
        assert "CIF" in capsys.readouterr().out

    def test_stats_to_stderr(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "scanline stops" in err
        assert "devices/sec" in err

    def test_stats_event_counters(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "heap pushes" in err
        assert "scans/stop beyond removals" in err

    def test_check_clean(self, inverter_cif, capsys):
        assert main([inverter_cif, "--check"]) == 0

    def test_profile_breakdown_to_stderr(self, inverter_cif, capsys):
        assert main([inverter_cif, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "ace profile:" in captured.err
        for phase in ("schedule", "expire", "insert", "strip", "finalize"):
            assert phase in captured.err
        # The profiler must not leak into the wirelist itself.
        assert "profile" not in captured.out

    def test_profile_with_stream(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stream", "--profile"]) == 0
        assert "ace profile:" in capsys.readouterr().err

    def test_profile_hierarchical_notes_flat_only(
        self, inverter_cif, capsys
    ):
        assert main([inverter_cif, "--hierarchical", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "--profile" in err and "--hierarchical" in err

    def test_engine_flag_byte_identical_output(self, inverter_cif, capsys):
        from repro.core.stripengine import numpy_available

        assert main([inverter_cif, "--engine", "python"]) == 0
        python_out = capsys.readouterr().out
        assert main([inverter_cif, "--engine", "auto"]) == 0
        assert capsys.readouterr().out == python_out
        if numpy_available():
            assert main([inverter_cif, "--engine", "numpy"]) == 0
            assert capsys.readouterr().out == python_out

    def test_explicit_numpy_without_numpy_exits_2(
        self, inverter_cif, capsys, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.core.stripengine.numpy_available", lambda: False
        )
        assert main([inverter_cif, "--engine", "numpy"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "repro[fast]" in err

    def test_engine_flag_with_hierarchical(self, inverter_cif, capsys):
        assert main(
            [inverter_cif, "--hierarchical", "--engine", "python"]
        ) == 0
        assert "(DefPart Window1" in capsys.readouterr().out


class TestHierarchical:
    def test_hierarchical_wirelist(self, inverter_cif, capsys):
        assert main([inverter_cif, "--hierarchical"]) == 0
        out = capsys.readouterr().out
        assert "(DefPart Window1" in out

    def test_hier_stats(self, inverter_cif, capsys):
        assert main([inverter_cif, "--hierarchical", "--stats"]) == 0
        assert "flat calls" in capsys.readouterr().err

    def test_jobs_flag(self, inverter_cif, capsys):
        assert main(
            [inverter_cif, "--hierarchical", "--jobs", "2", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "(DefPart Window1" in captured.out
        assert "jobs" in captured.err

    def test_cache_flag_warm_run_hits(self, inverter_cif, tmp_path, capsys):
        cache = str(tmp_path / "fragments")
        argv = [inverter_cif, "--hierarchical", "--cache", cache, "--stats"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "fragment cache 0 hits" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "hit rate 100%" in warm.err
        assert warm.out == cold.out  # cached run: byte-identical wirelist

    def test_jobs_cache_noted_in_flat_mode(self, inverter_cif, capsys):
        assert main([inverter_cif, "--jobs", "2"]) == 0
        assert "--hierarchical" in capsys.readouterr().err


class TestCheckFailures:
    def test_malformed_design_fails_check(self, tmp_path, capsys):
        from repro.cif import Layout, write as write_cif
        from repro.geometry import Box

        layout = Layout()
        layout.top.add_box("ND", Box(100, 0, 400, 1200))
        layout.top.add_box("NP", Box(0, 1000, 2400, 2000))
        path = tmp_path / "bad.cif"
        path.write_text(write_cif(layout))
        assert main([str(path), "--check"]) == 1
        assert "malformed" in capsys.readouterr().err


class TestLintFlag:
    def test_clean_layout_passes(self, inverter_cif, capsys):
        assert main([inverter_cif, "--lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().err

    def test_violations_fail_lint(self, violations_cif, capsys):
        assert main([violations_cif, "--lint"]) == 1
        err = capsys.readouterr().err
        for rule in VIOLATION_SNIPPETS:
            assert rule in err

    def test_lint_with_hierarchical_extraction(self, violations_cif, capsys):
        assert main([violations_cif, "--lint", "--hierarchical"]) == 1
        assert "drc.width" in capsys.readouterr().err

    def test_custom_rails_quiet_no_vdd(self, tmp_path, capsys):
        from repro.cif import Label, Layout, write as write_cif
        from repro.geometry import Box

        layout = Layout()
        layout.top.add_box("NM", Box(0, 0, 2500, 750))
        layout.top.add_box("NM", Box(0, 5000, 2500, 5750))
        layout.top.add_label(Label("PWR", 100, 100, "NM"))
        layout.top.add_label(Label("COM", 100, 5100, "NM"))
        path = tmp_path / "rails.cif"
        path.write_text(write_cif(layout))
        assert main([str(path), "--check"]) == 0
        assert "no-vdd" in capsys.readouterr().err
        argv = [str(path), "--check", "--vdd", "PWR", "--gnd", "COM"]
        assert main(argv) == 0
        assert "no-vdd" not in capsys.readouterr().err


class TestReproLint:
    def test_clean_file_exits_zero(self, inverter_cif, capsys):
        assert lint_main([inverter_cif]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_code_is_error_count(self, violations_cif, capsys):
        assert lint_main([violations_cif]) == len(VIOLATION_SNIPPETS)
        out = capsys.readouterr().out
        for rule in VIOLATION_SNIPPETS:
            assert f"[{rule}]" in out

    def test_json_output(self, violations_cif, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = lint_main(
            [violations_cif, "--format", "json", "-o", str(target)]
        )
        assert code == len(VIOLATION_SNIPPETS)
        payload = json.loads(target.read_text())
        (report,) = payload["reports"]
        assert report["artifact"] == violations_cif
        rules = {d["rule"] for d in report["diagnostics"]}
        assert set(VIOLATION_SNIPPETS) <= rules
        assert capsys.readouterr().out == ""

    def test_sarif_output(self, violations_cif, capsys):
        assert lint_main([violations_cif, "--format", "sarif"]) > 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} >= set(VIOLATION_SNIPPETS)

    def test_baseline_flow(self, violations_cif, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [violations_cif, "--write-baseline", str(baseline)]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert lint_main([violations_cif, "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_rule_filter(self, violations_cif, capsys):
        assert lint_main([violations_cif, "--rules", "drc.width"]) == 1
        out = capsys.readouterr().out
        assert "[drc.width]" in out
        assert "[drc.spacing]" not in out

    def test_no_drc_no_erc_toggles(self, violations_cif, capsys):
        assert lint_main([violations_cif, "--no-drc"]) == 0
        assert lint_main([violations_cif, "--no-erc"]) == len(
            VIOLATION_SNIPPETS
        )

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in VIOLATION_SNIPPETS:
            assert rule in out
        # ERC and deck-validation ids ride the same catalog.
        assert "floating-gate" in out
        assert "deck.unknown-layer" in out

    def test_missing_file_is_internal_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.cif")
        assert lint_main([missing]) == INTERNAL_ERROR_EXIT
        assert "nope.cif" in capsys.readouterr().err

    def test_no_input_files_is_internal_error(self, capsys):
        assert lint_main([]) == INTERNAL_ERROR_EXIT


class TestDeckSelection:
    @pytest.fixture()
    def cmos_cif(self, tmp_path):
        from repro.workloads.cmos import cmos_inverter

        path = tmp_path / "cmos_inverter.cif"
        path.write_text(write(cmos_inverter()))
        return str(path)

    def test_cmos_deck_lints_cmos_layout(self, cmos_cif, capsys):
        assert lint_main([cmos_cif, "--deck", "cmos"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_deck_from_json_file(self, cmos_cif, capsys):
        from repro.lint import resolve_deck

        deck_path = "src/repro/tech/decks/cmos.json"
        assert resolve_deck(deck_path).name == "cmos"
        assert lint_main([cmos_cif, "--deck", deck_path]) == 0

    def test_unknown_deck_is_internal_error(self, inverter_cif, capsys):
        assert (
            lint_main([inverter_cif, "--deck", "bipolar"])
            == INTERNAL_ERROR_EXIT
        )
        assert "bipolar" in capsys.readouterr().err

    def test_deck_rails_drive_erc(self, cmos_cif, capsys):
        # The CMOS deck inherits the default rail spellings; a bogus
        # extra --vdd name must not break rail detection.
        assert lint_main([cmos_cif, "--deck", "cmos", "--vdd", "PWR"]) == 0


class TestCheckDeck:
    SHIPPED = [
        "src/repro/tech/decks/nmos.json",
        "src/repro/tech/decks/cmos.json",
    ]

    def test_shipped_decks_pass(self, capsys):
        assert lint_main(["--check-deck", *self.SHIPPED]) == 0
        out = capsys.readouterr().out
        assert out.count("0 error(s)") == 2

    def test_builtin_deck_via_flag(self, capsys):
        assert lint_main(["--check-deck", "--deck", "cmos"]) == 0

    def test_malformed_deck_fails(self, tmp_path, capsys):
        import json as json_mod

        deck = json_mod.loads(
            open("src/repro/tech/decks/nmos.json").read()
        )
        deck["ignored"] = ["ZZ"]
        path = tmp_path / "bad.json"
        path.write_text(json_mod.dumps(deck))
        code = lint_main(["--check-deck", str(path)])
        assert code > 0
        assert "deck.unknown-layer" in capsys.readouterr().out

    def test_unparsable_deck_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        assert lint_main(["--check-deck", str(path)]) > 0
        assert "deck.parse" in capsys.readouterr().out

    def test_sarif_output(self, tmp_path, capsys):
        deck = {"name": "x"}
        path = tmp_path / "shape.json"
        path.write_text(json.dumps(deck))
        code = lint_main(["--check-deck", str(path), "--format", "sarif"])
        assert code > 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"]


class TestPlotting:
    def test_ascii_plot_to_stderr(self, inverter_cif, capsys):
        assert main([inverter_cif, "--plot"]) == 0
        err = capsys.readouterr().err
        assert "T" in err  # transistor channels rendered

    def test_svg_written(self, inverter_cif, tmp_path):
        target = tmp_path / "chip.svg"
        assert main([inverter_cif, "--svg", str(target)]) == 0
        assert target.read_text().startswith("<svg")


class TestStreaming:
    def test_stream_stdout_byte_identical_to_flat(
        self, inverter_cif, capsys
    ):
        assert main([inverter_cif]) == 0
        flat = capsys.readouterr().out
        assert main([inverter_cif, "--stream", "--band-height", "500"]) == 0
        assert capsys.readouterr().out == flat

    def test_stream_stats_report_bands(
        self, inverter_cif, tmp_path, capsys
    ):
        target = tmp_path / "out.wl"
        assert main(
            [
                inverter_cif,
                "--stream",
                "--band-height",
                "500",
                "--stats",
                "-o",
                str(target),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "stream:" in err and "bands" in err
        assert target.read_text().startswith("(DefPart")

    def test_checkpoint_then_resume(self, inverter_cif, tmp_path, capsys):
        ck = tmp_path / "sweep.ck"
        base = [
            inverter_cif,
            "--stream",
            "--band-height",
            "500",
            "--checkpoint",
            str(ck),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert ck.exists()
        assert main([*base, "--resume", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "(resumed)" in captured.err

    def test_stream_rejects_hierarchical(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stream", "--hierarchical"]) == 2
        assert "flat-only" in capsys.readouterr().err

    def test_stream_rejects_check(self, inverter_cif, capsys):
        assert main([inverter_cif, "--stream", "--check"]) == 2
        assert "in-memory circuit" in capsys.readouterr().err

    def test_band_height_without_stream_is_noted(
        self, inverter_cif, capsys
    ):
        assert main([inverter_cif, "--band-height", "500"]) == 0
        assert "only apply with --stream" in capsys.readouterr().err

    def test_stream_lint_catches_violations(self, violations_cif, capsys):
        assert main([violations_cif, "--stream", "--lint"]) == 1


class TestVersionFlag:
    """Every console script reports the same package version."""

    @pytest.mark.parametrize(
        "prog, entry",
        [
            ("ace-extract", "repro.cli:main"),
            ("repro-lint", "repro.lint:main"),
            ("repro-difftest", "repro.difftest.cli:main"),
            ("repro-serve", "repro.service.cli:serve_main"),
            ("repro-submit", "repro.service.cli:submit_main"),
        ],
    )
    def test_version_exits_zero_with_shared_version(
        self, prog, entry, capsys
    ):
        import importlib

        from repro.cli import package_version

        module_name, function_name = entry.split(":")
        entry_main = getattr(
            importlib.import_module(module_name), function_name
        )
        with pytest.raises(SystemExit) as info:
            entry_main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out.endswith(package_version())

    def test_package_version_is_nonempty(self):
        from repro.cli import package_version

        assert package_version()
