"""RC post-processing from net geometry."""

import pytest

from repro import extract
from repro.analysis import ProcessModel, estimate_rc, total_capacitance
from repro.cif import Label, Layout
from repro.geometry import Box
from repro.workloads import inverter


def _wire_layout(length_um: int):
    layout = Layout()
    # A metal wire 'length_um' microns long, 2.5um (lambda) wide.
    layout.top.add_box("NM", Box(0, 0, length_um * 100, 250))
    layout.top.add_label(Label("W", 50, 100, "NM"))
    return layout


class TestCapacitance:
    def test_area_times_unit_cap(self):
        circuit = extract(_wire_layout(100), keep_geometry=True)
        rc = estimate_rc(circuit)
        (entry,) = rc.values()
        # 100um x 2.5um at 0.03 fF/um^2.
        assert entry.capacitance_ff == pytest.approx(100 * 2.5 * 0.03)

    def test_longer_wire_more_cap(self):
        short = estimate_rc(extract(_wire_layout(10), keep_geometry=True))
        long = estimate_rc(extract(_wire_layout(100), keep_geometry=True))
        assert total_capacitance(long) > total_capacitance(short)

    def test_layer_mix(self):
        circuit = extract(inverter(), keep_geometry=True)
        rc = estimate_rc(circuit)
        vdd = next(
            entry
            for net_index, entry in rc.items()
            if "VDD" in circuit.nets[net_index - 1].names
        )
        assert "NM" in vdd.area_by_layer
        assert vdd.capacitance_ff > 0


class TestResistance:
    def test_wire_squares(self):
        circuit = extract(_wire_layout(100), keep_geometry=True)
        (entry,) = estimate_rc(circuit).values()
        # 100um / 2.5um = 40 squares of metal at 0.05 ohm/sq.
        assert entry.resistance_ohm == pytest.approx(40 * 0.05)

    def test_poly_much_more_resistive(self):
        layout = Layout()
        layout.top.add_box("NM", Box(0, 0, 10000, 250))
        layout.top.add_box("NP", Box(0, 1000, 10000, 1250))
        circuit = extract(layout, keep_geometry=True)
        rc = estimate_rc(circuit)
        values = sorted(e.resistance_ohm for e in rc.values())
        assert values[1] / values[0] == pytest.approx(50.0 / 0.05)


class TestModel:
    def test_requires_geometry(self):
        circuit = extract(inverter())  # keep_geometry off
        assert estimate_rc(circuit) == {}

    def test_custom_model(self):
        circuit = extract(_wire_layout(10), keep_geometry=True)
        model = ProcessModel(area_cap={"NM": 1.0}, sheet_res={"NM": 0.0})
        (entry,) = estimate_rc(circuit, model).values()
        assert entry.capacitance_ff == pytest.approx(10 * 2.5)
        assert entry.resistance_ohm == 0.0
