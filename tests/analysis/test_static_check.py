"""Static checker rules."""

from repro import extract
from repro.analysis import Severity, static_check
from repro.cif import Label, Layout
from repro.geometry import Box
from repro.workloads import inverter


def _layout(boxes, labels=()):
    layout = Layout()
    for layer, x1, y1, x2, y2 in boxes:
        layout.top.add_box(layer, Box(x1, y1, x2, y2))
    for name, x, y, layer in labels:
        layout.top.add_label(Label(name, x, y, layer))
    return layout


class TestCleanDesign:
    def test_inverter_passes(self):
        report = static_check(extract(inverter()))
        assert report.ok
        assert report.by_rule("ratio") == []

    def test_no_rails_warns(self):
        circuit = extract(_layout([("NM", 0, 0, 10, 10)]))
        report = static_check(circuit)
        assert report.by_rule("no-vdd")
        assert report.by_rule("no-gnd")


class TestMalformed:
    def test_dead_end_channel_flagged(self):
        circuit = extract(
            _layout([("ND", 10, 0, 14, 12), ("NP", 0, 10, 24, 20)])
        )
        report = static_check(circuit)
        assert not report.ok
        assert report.by_rule("malformed-terminals")


class TestRails:
    def test_rail_names_match_case_insensitively(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 100, 10), ("NM", 0, 20, 100, 30)],
                labels=[("vdd", 5, 5, "NM"), ("Vss", 5, 25, "NM")],
            )
        )
        report = static_check(circuit)
        assert report.by_rule("no-vdd") == []
        assert report.by_rule("no-gnd") == []

    def test_custom_rail_names(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 100, 10), ("NM", 0, 20, 100, 30)],
                labels=[("PWR", 5, 5, "NM"), ("COM", 5, 25, "NM")],
            )
        )
        assert static_check(circuit).by_rule("no-vdd")
        report = static_check(
            circuit, vdd_names=("PWR",), gnd_names=("COM",)
        )
        assert report.by_rule("no-vdd") == []
        assert report.by_rule("no-gnd") == []

    def test_rail_short_detected(self):
        circuit = extract(
            _layout(
                [("NM", 0, 0, 100, 10)],
                labels=[("VDD", 5, 5, "NM"), ("GND", 95, 5, "NM")],
            )
        )
        report = static_check(circuit)
        assert report.by_rule("rail-short")
        assert not report.ok

    def test_device_shorted_across_rail(self):
        # Source and drain land on two *distinct* nets both named GND
        # (separate ground rails): a useless, shorting transistor.
        circuit = extract(
            _layout(
                [
                    ("ND", 0, 0, 4, 30),
                    ("NP", -4, 12, 8, 18),
                    ("NM", -10, 0, 10, 4),
                    ("NC", 0, 1, 4, 3),
                    ("NM", -10, 26, 10, 30),
                    ("NC", 0, 27, 4, 29),
                ],
                labels=[("GND", -8, 2, "NM"), ("GND", -8, 28, "NM")],
            )
        )
        report = static_check(circuit)
        assert report.by_rule("shorted-device")


class TestRatio:
    def test_weak_pullup_flagged(self):
        # Build a ratio-2 inverter: 2x2 pulldown, 4x2 depletion load.
        boxes = [
            ("ND", 0, 1, 2, 25),
            ("NM", -4, 0, 6, 4),
            ("NC", 0, 1, 2, 3),
            ("NP", -4, 6, 6, 8),
            ("NP", 0, 13, 2, 16),
            ("NB", 0, 13, 2, 16),
            ("NP", -1, 16, 3, 20),
            ("NI", -2, 15, 4, 21),
            ("NC", 0, 23, 2, 25),
            ("NM", -4, 22, 6, 26),
        ]
        boxes = [
            (layer, x1 * 250, y1 * 250, x2 * 250, y2 * 250)
            for layer, x1, y1, x2, y2 in boxes
        ]
        labels = [
            ("VDD", 250, 24 * 250, "NM"),
            ("GND", 250, 2 * 250, "NM"),
        ]
        circuit = extract(_layout(boxes, labels))
        report = static_check(circuit)
        findings = report.by_rule("ratio")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "2.00" in findings[0].message

    def test_min_ratio_configurable(self):
        report = static_check(extract(inverter()), min_ratio=5.0)
        assert report.by_rule("ratio")


class TestFloatingGate:
    def test_undriven_gate_flagged(self):
        # A transistor whose gate poly connects to nothing else.
        circuit = extract(
            _layout(
                [
                    ("ND", 10, 0, 14, 30),
                    ("NP", 0, 10, 24, 14),
                ]
            )
        )
        report = static_check(circuit)
        assert report.by_rule("floating-gate")

    def test_chain_gates_are_driven(self):
        from repro.workloads import inverter_rows

        circuit = extract(inverter_rows(1, 3))
        report = static_check(circuit)
        # Only the chain's first input is undriven (a chip input).
        assert len(report.by_rule("floating-gate")) == 1
