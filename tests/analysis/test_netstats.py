"""Circuit and layout statistics."""

from repro import extract
from repro.analysis import circuit_stats, layout_stats
from repro.workloads import inverter, inverter_rows, poly_diff_mesh


class TestCircuitStats:
    def test_inverter(self, inverter_layout):
        stats = circuit_stats(extract(inverter_layout))
        assert stats.devices == 2
        assert stats.enhancement == 1
        assert stats.depletion == 1
        assert stats.nets == 4
        assert stats.named_nets == 4
        assert stats.malformed == 0

    def test_rows(self):
        stats = circuit_stats(extract(inverter_rows(2, 3)))
        assert stats.devices == 12
        assert stats.enhancement == 6
        assert stats.depletion == 6

    def test_as_row_keys(self, inverter_layout):
        row = circuit_stats(extract(inverter_layout)).as_row()
        assert set(row) == {
            "devices",
            "enhancement",
            "depletion",
            "nets",
            "named_nets",
            "malformed",
        }


class TestLayoutStats:
    def test_mesh_boxes(self):
        stats = layout_stats(poly_diff_mesh(5))
        assert stats.boxes == 10
        assert stats.boxes_by_layer == {"NP": 5, "ND": 5}
        assert stats.boxes_thousands == 0.01

    def test_inverter_layers(self):
        stats = layout_stats(inverter())
        assert stats.boxes_by_layer["NM"] == 2
        assert stats.boxes_by_layer["NC"] == 2
        assert stats.width > 0 and stats.height > 0
