"""Run the repo's own linters when they are installed.

CI installs ruff and mypy (see .github/workflows/ci.yml) and runs them
with the configuration in pyproject.toml; these tests mirror that job
so local environments with the tools get the same signal, and
environments without them skip cleanly.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _run(argv):
    return subprocess.run(
        argv, cwd=REPO, capture_output=True, text=True
    )


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed")
    proc = _run(["ruff", "check", "src/repro", "tests", "tools"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean():
    try:
        import mypy  # noqa: F401
    except ImportError:
        pytest.skip("mypy not installed")
    proc = _run([sys.executable, "-m", "mypy"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
