"""CIF parser: commands, transforms, scales, and error handling."""

import pytest

from repro.cif import CifSemanticError, CifSyntaxError, parse
from repro.geometry import Box


class TestBoxes:
    def test_simple_box(self):
        layout = parse("L ND; B 4 2 1 3; E")
        (layer, box), = layout.top.boxes
        assert layer == "ND"
        assert box == Box(-1, 2, 3, 4)

    def test_box_direction_rotates(self):
        # Direction along +y swaps length and width.
        layout = parse("L ND; B 4 2 0 0 0 1; E")
        (_, box), = layout.top.boxes
        assert (box.width, box.height) == (2, 4)

    def test_box_direction_offaxis_snapped(self):
        layout = parse("L ND; B 4 2 0 0 5 1; E")
        (_, box), = layout.top.boxes
        assert (box.width, box.height) == (4, 2)

    def test_geometry_before_layer_rejected(self):
        with pytest.raises(CifSemanticError):
            parse("B 4 2 1 3; E")

    def test_wrong_arity(self):
        with pytest.raises(CifSyntaxError):
            parse("L ND; B 4 2 1; E")


class TestShapes:
    def test_polygon(self):
        layout = parse("L NP; P 0 0 10 0 0 10; E")
        (layer, poly), = layout.top.polygons
        assert layer == "NP"
        assert poly.area == 50

    def test_wire(self):
        layout = parse("L NM; W 4 0 0 10 0 10 10; E")
        (layer, width, points), = layout.top.wires
        assert width == 4
        assert points == ((0, 0), (10, 0), (10, 10))

    def test_roundflash_becomes_square(self):
        layout = parse("L NM; R 10 5 5; E")
        (_, box), = layout.top.boxes
        assert box == Box(0, 0, 10, 10)


class TestSymbols:
    def test_define_and_call(self):
        layout = parse("DS 1; L ND; B 2 2 1 1; DF; C 1 T 10 20; E")
        assert 1 in layout.symbols
        (call,) = layout.top.calls
        assert call.symbol == 1
        assert call.transform.apply_point(0, 0) == (10, 20)

    def test_scale_factors(self):
        layout = parse("DS 1 2 1; L ND; B 2 2 1 1; DF; C 1; E")
        (_, box), = layout.symbols[1].boxes
        assert box == Box(0, 0, 4, 4)

    def test_fractional_scale_must_divide(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1 1 2; L ND; B 3 2 1 1; DF; C 1; E")

    def test_nested_ds_rejected(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1; DS 2; DF; DF; E")

    def test_df_without_ds(self):
        with pytest.raises(CifSemanticError):
            parse("DF; E")

    def test_unterminated_ds(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1; L ND; B 2 2 1 1; E")

    def test_undefined_call_rejected(self):
        with pytest.raises(CifSemanticError):
            parse("C 7; E")

    def test_recursive_call_rejected(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1; C 2; DF; DS 2; C 1; DF; C 1; E")

    def test_double_definition_rejected(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1; DF; DS 1; DF; E")

    def test_layer_resets_per_symbol(self):
        with pytest.raises(CifSemanticError):
            parse("DS 1; L ND; B 2 2 1 1; DF; DS 2; B 2 2 1 1; DF; E")


class TestTransforms:
    def test_mirror_then_translate(self):
        layout = parse("DS 1; L ND; B 2 2 1 1; DF; C 1 M X T 10 0; E")
        (call,) = layout.top.calls
        # Symbol point (1, 1) -> mirror (-1, 1) -> translate (9, 1).
        assert call.transform.apply_point(1, 1) == (9, 1)

    def test_rotation(self):
        layout = parse("DS 1; L ND; B 2 2 1 1; DF; C 1 R 0 1; E")
        (call,) = layout.top.calls
        assert call.transform.apply_point(1, 0) == (0, 1)

    def test_transform_order_matters(self):
        a = parse("DS 1; L ND; B 2 2 1 1; DF; C 1 T 10 0 R 0 1; E")
        b = parse("DS 1; L ND; B 2 2 1 1; DF; C 1 R 0 1 T 10 0; E")
        ta = a.top.calls[0].transform
        tb = b.top.calls[0].transform
        assert ta.apply_point(0, 0) == (0, 10)
        assert tb.apply_point(0, 0) == (10, 0)

    def test_bad_mirror_axis(self):
        with pytest.raises(CifSyntaxError):
            parse("DS 1; DF; C 1 M Z; E")


class TestLabels:
    def test_label_with_layer(self):
        layout = parse("94 VDD 10 20 NM; E")
        (label,) = layout.top.labels
        assert (label.name, label.x, label.y, label.layer) == ("VDD", 10, 20, "NM")

    def test_label_without_layer(self):
        layout = parse("94 OUT -5 7; E")
        (label,) = layout.top.labels
        assert label.layer is None

    def test_label_needs_coordinates(self):
        with pytest.raises(CifSyntaxError):
            parse("94 VDD; E")

    def test_other_extensions_ignored(self):
        layout = parse("92 anything at all; L ND; B 2 2 1 1; E")
        assert len(layout.top.boxes) == 1


class TestStructure:
    def test_total_shapes(self):
        layout = parse(
            "DS 1; L ND; B 2 2 1 1; B 2 2 5 5; DF; L NM; B 2 2 9 9; C 1; E"
        )
        assert layout.total_shapes() == 3

    def test_is_leaf(self):
        layout = parse("DS 1; L ND; B 2 2 1 1; DF; DS 2; C 1; DF; C 2; E")
        assert layout.symbols[1].is_leaf()
        assert not layout.symbols[2].is_leaf()
