"""CIF writer: serialization and parse/write round trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cif import Label, Layout, parse, write
from repro.geometry import Box, Transform


def _roundtrip(layout: Layout) -> Layout:
    return parse(write(layout))


class TestWriter:
    def test_box_command(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 4, 2))
        text = write(layout)
        assert "L ND;" in text
        assert "B 4 2 2 1;" in text
        assert text.rstrip().endswith("E")

    def test_off_grid_center_becomes_polygon(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 3, 2))  # center x = 1.5
        text = write(layout)
        assert "P 0 0 3 0 3 2 0 2;" in text

    def test_layer_runs_not_repeated(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 2, 2))
        layout.top.add_box("ND", Box(4, 0, 6, 2))
        assert write(layout).count("L ND;") == 1

    def test_label_emitted(self):
        layout = Layout()
        layout.top.add_label(Label("VDD", 3, 4, "NM"))
        assert "94 VDD 3 4 NM;" in write(layout)


class TestRoundTrip:
    def test_symbol_structure(self):
        layout = Layout()
        cell = layout.define(1)
        cell.add_box("ND", Box(0, 0, 4, 4))
        layout.top.add_call(1, Transform.translation(10, 20))
        back = _roundtrip(layout)
        assert back.symbols[1].boxes == [("ND", Box(0, 0, 4, 4))]
        assert back.top.calls[0].transform == Transform.translation(10, 20)

    @given(
        st.sampled_from(
            [
                Transform.identity(),
                Transform.mirror_x(),
                Transform.mirror_y(),
                Transform.rotation(0, 1),
                Transform.rotation(-1, 0),
                Transform.rotation(0, -1),
                Transform.mirror_x().then(Transform.rotation(0, 1)),
                Transform.mirror_x().then(Transform.rotation(-1, 0)),
            ]
        ),
        st.integers(-500, 500),
        st.integers(-500, 500),
    )
    def test_all_orientations_roundtrip(self, orientation, dx, dy):
        transform = orientation.then(Transform.translation(dx, dy))
        layout = Layout()
        cell = layout.define(1)
        cell.add_box("ND", Box(0, 0, 4, 2))
        layout.top.add_call(1, transform)
        back = _roundtrip(layout)
        assert back.top.calls[0].transform == transform

    def test_wires_and_polygons(self):
        layout = Layout()
        layout.top.add_box("NM", Box(0, 0, 4, 4))
        from repro.geometry import Polygon

        layout.top.add_polygon("NP", Polygon.from_points([(0, 0), (8, 0), (0, 8)]))
        layout.top.add_wire("ND", 4, ((0, 0), (20, 0)))
        back = _roundtrip(layout)
        assert back.top.boxes == layout.top.boxes
        assert back.top.polygons == layout.top.polygons
        assert back.top.wires == layout.top.wires

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ND", "NP", "NM", "NC", "NI", "NB"]),
                st.integers(-100, 100),
                st.integers(-100, 100),
                st.integers(1, 50),
                st.integers(1, 50),
            ),
            max_size=10,
        )
    )
    def test_random_boxes_roundtrip(self, specs):
        layout = Layout()
        for layer, x, y, w, h in specs:
            layout.top.add_box(layer, Box(x, y, x + w, y + h))
        back = _roundtrip(layout)
        # Off-grid boxes come back as polygons covering the same region.
        from repro.geometry import regions_equal

        for layer in {s[0] for s in specs}:
            original = [b for l, b in layout.top.boxes if l == layer]
            returned = [b for l, b in back.top.boxes if l == layer]
            returned += [
                Box(*(min(x for x, _ in p.vertices), min(y for _, y in p.vertices),
                      max(x for x, _ in p.vertices), max(y for _, y in p.vertices)))
                for l, p in back.top.polygons
                if l == layer
            ]
            assert regions_equal(original, returned)
