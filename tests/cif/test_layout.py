"""Layout database semantics."""

import pytest

from repro.cif import CifSemanticError, Layout, TOP_SYMBOL
from repro.geometry import Box, Polygon, Transform


class TestSymbols:
    def test_define_and_lookup(self):
        layout = Layout()
        symbol = layout.define(3)
        assert layout.symbol(3) is symbol
        assert layout.symbol(TOP_SYMBOL) is layout.top

    def test_double_define(self):
        layout = Layout()
        layout.define(1)
        with pytest.raises(CifSemanticError):
            layout.define(1)

    def test_unknown_symbol(self):
        with pytest.raises(CifSemanticError):
            Layout().symbol(9)


class TestValidate:
    def test_valid_dag(self):
        layout = Layout()
        layout.define(1)
        two = layout.define(2)
        two.add_call(1, Transform.identity())
        layout.top.add_call(2, Transform.identity())
        layout.validate()

    def test_cycle_detected(self):
        layout = Layout()
        one = layout.define(1)
        two = layout.define(2)
        one.add_call(2, Transform.identity())
        two.add_call(1, Transform.identity())
        layout.top.add_call(1, Transform.identity())
        with pytest.raises(CifSemanticError):
            layout.validate()

    def test_dangling_call(self):
        layout = Layout()
        layout.top.add_call(42, Transform.identity())
        with pytest.raises(CifSemanticError):
            layout.validate()


class TestFracturedBoxes:
    def test_mixed_shapes(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 4, 4))
        layout.top.add_polygon(
            "NP", Polygon.from_points([(0, 0), (8, 0), (8, 4), (0, 4)])
        )
        layout.top.add_wire("NM", 4, ((0, 0), (10, 0)))
        fractured = layout.top.fractured_boxes()
        layers = [layer for layer, _ in fractured]
        assert layers.count("ND") == 1
        assert layers.count("NP") == 1
        assert layers.count("NM") == 1

    def test_shape_count(self):
        layout = Layout()
        layout.top.add_box("ND", Box(0, 0, 4, 4))
        layout.top.add_wire("NM", 4, ((0, 0), (10, 0)))
        assert layout.top.shape_count() == 2
