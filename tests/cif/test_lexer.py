"""CIF tokenizer."""

import pytest

from repro.cif import CifSyntaxError, tokenize


class TestTokenize:
    def test_simple_commands(self):
        cmds = tokenize("L ND; B 4 2 1 3; E")
        assert [c.letter for c in cmds] == ["L", "B", "E"]

    def test_compact_spacing(self):
        cmds = tokenize("B4 2 1 3;E")
        assert cmds[0].letter == "B"
        assert cmds[0].integers() == [4, 2, 1, 3]

    def test_negative_integers(self):
        cmds = tokenize("B 400 1200 -600 -1400; E")
        assert cmds[0].integers() == [400, 1200, -600, -1400]

    def test_comments_stripped(self):
        cmds = tokenize("(a comment); L ND; (nested (inner)) B 2 2 1 1; E")
        assert [c.letter for c in cmds] == ["L", "B", "E"]

    def test_unterminated_comment(self):
        with pytest.raises(CifSyntaxError):
            tokenize("(oops; E")

    def test_unbalanced_close(self):
        with pytest.raises(CifSyntaxError):
            tokenize(") E")

    def test_missing_end(self):
        with pytest.raises(CifSyntaxError):
            tokenize("L ND; B 2 2 1 1;")

    def test_missing_semicolon(self):
        with pytest.raises(CifSyntaxError):
            tokenize("L ND\nE")

    def test_text_after_end_ignored(self):
        cmds = tokenize("L ND; E garbage that follows ;;")
        assert cmds[-1].letter == "E"
        assert len(cmds) == 2

    def test_user_extension_letters(self):
        cmds = tokenize("94 VDD 10 20 NM; 5 whatever; E")
        assert cmds[0].letter == "94"
        assert cmds[1].letter == "5"

    def test_ds_is_d(self):
        cmds = tokenize("DS 1; DF; E")
        assert [c.letter for c in cmds[:2]] == ["D", "D"]

    def test_empty_statements_skipped(self):
        cmds = tokenize(";;; L ND;; E")
        assert [c.letter for c in cmds] == ["L", "E"]

    def test_positions_recorded(self):
        cmds = tokenize("L ND; B 2 2 1 1; E")
        assert cmds[0].position == 0
        assert cmds[1].position == 6
