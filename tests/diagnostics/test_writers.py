"""Round-tripping reports through the JSON and SARIF writers."""

import json

import pytest

from repro.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    SourceRef,
    format_text,
    report_from_json,
    report_to_json,
    reports_from_json,
    reports_from_sarif,
    write_json,
    write_sarif,
)


def sample_report() -> CheckReport:
    return CheckReport(
        diagnostics=[
            Diagnostic(
                Severity.ERROR,
                "drc.width",
                "NP region narrower than the 2 lambda minimum width",
                tool="drc",
                layer="NP",
                box=(0, 0, 250, 1500),
                source=SourceRef(symbol=1, name="leaf", path=(0, 1)),
            ),
            Diagnostic(
                Severity.WARNING,
                "ratio",
                "pullup/pulldown ratio 2.00 below 4",
                device=3,
                net=7,
            ),
        ],
        artifact="chip.cif",
        suppressed=2,
    )


class TestJsonRoundTrip:
    def test_report_round_trips(self):
        report = sample_report()
        assert report_from_json(report_to_json(report)) == report.sorted()

    def test_multi_report_round_trips(self):
        reports = [sample_report(), CheckReport(artifact="other.cif")]
        parsed = reports_from_json(write_json(reports))
        assert parsed == [r.sorted() for r in reports]

    def test_json_carries_stable_rule_ids_and_coordinates(self):
        data = report_to_json(sample_report())
        by_rule = {d["rule"]: d for d in data["diagnostics"]}
        assert set(by_rule) == {"drc.width", "ratio"}
        assert by_rule["drc.width"]["box"] == [0, 0, 250, 1500]
        assert by_rule["drc.width"]["layer"] == "NP"
        assert by_rule["drc.width"]["tool"] == "drc"
        assert by_rule["ratio"]["device"] == 3
        assert by_rule["ratio"]["net"] == 7

    def test_single_report_write_json_shape(self):
        payload = json.loads(write_json(sample_report()))
        assert payload["version"] == 1
        assert len(payload["reports"]) == 1


class TestSarifRoundTrip:
    def test_sarif_round_trips(self):
        reports = [sample_report(), CheckReport(artifact="clean.cif")]
        parsed = reports_from_sarif(write_sarif(reports))
        assert parsed == [r.sorted() for r in reports]

    def test_sarif_structure(self):
        log = json.loads(write_sarif(sample_report(), rule_help={"ratio": "x"}))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"drc.width", "ratio"}
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"drc.width": "error", "ratio": "warning"}
        assert run["properties"]["artifact"] == "chip.cif"
        assert run["properties"]["suppressed"] == 2
        located = [
            r for r in run["results"] if r["ruleId"] == "drc.width"
        ][0]
        physical = located["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "chip.cif"
        assert located["properties"]["box"] == [0, 0, 250, 1500]

    def test_foreign_sarif_degrades_gracefully(self):
        foreign = {
            "runs": [
                {
                    "results": [
                        {"ruleId": "x1", "level": "error",
                         "message": {"text": "boom"}}
                    ]
                }
            ]
        }
        (report,) = reports_from_sarif(json.dumps(foreign))
        (diag,) = report.diagnostics
        assert diag.rule == "x1"
        assert diag.severity == Severity.ERROR
        assert diag.message == "boom"


class TestText:
    def test_format_text_summary_and_order(self):
        text = format_text(sample_report())
        lines = text.strip().splitlines()
        assert lines[-1] == (
            "chip.cif: 1 error(s), 1 warning(s), 2 suppressed by baseline"
        )
        # sorted: drc tool before erc tool
        assert "[drc.width]" in lines[0]
        assert "(0,0)..(250,1500)" in lines[0]
        assert "symbol 1 (leaf)" in lines[0]

    def test_empty_report(self):
        assert format_text(CheckReport()) == "0 error(s), 0 warning(s)\n"


@pytest.mark.parametrize("writer", [write_json, write_sarif])
def test_writers_are_deterministic(writer):
    assert writer(sample_report()) == writer(sample_report())
