"""Baseline suppression files."""

import json

from repro.diagnostics import (
    Baseline,
    CheckReport,
    Diagnostic,
    Severity,
    apply_baseline,
    baseline_from_json,
    load_baseline,
    stale_entries,
    write_baseline,
)


def _diag(rule="drc.width", box=(0, 0, 250, 500)):
    return Diagnostic(
        Severity.ERROR, rule, "msg", tool="drc", layer="NP", box=box
    )


def _report(artifact="a.cif", diags=None):
    return CheckReport(
        diagnostics=list(diags) if diags is not None else [_diag()],
        artifact=artifact,
    )


def test_apply_baseline_suppresses_known_findings():
    report = _report(diags=[_diag(), _diag(rule="drc.spacing")])
    baseline = Baseline()
    baseline.add_report(_report(diags=[_diag()]))
    filtered = apply_baseline(report, baseline)
    assert [d.rule for d in filtered.diagnostics] == ["drc.spacing"]
    assert filtered.suppressed == 1


def test_baseline_is_per_artifact():
    baseline = Baseline()
    baseline.add_report(_report(artifact="a.cif"))
    assert apply_baseline(_report(artifact="a.cif"), baseline).suppressed == 1
    assert apply_baseline(_report(artifact="b.cif"), baseline).suppressed == 0


def test_wildcard_bucket_covers_every_artifact():
    baseline = baseline_from_json(
        {"version": 1, "entries": {"*": [_diag().fingerprint()]}}
    )
    assert apply_baseline(_report(artifact="b.cif"), baseline).suppressed == 1


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    written = write_baseline(str(path), [_report()])
    loaded = load_baseline(str(path))
    assert loaded.entries == written.entries
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert list(data["entries"]) == ["a.cif"]


def test_unsupported_version_rejected(tmp_path):
    try:
        baseline_from_json({"version": 99, "entries": {}})
    except ValueError as exc:
        assert "version" in str(exc)
    else:
        raise AssertionError("expected ValueError")


def test_stale_entries_reports_fixed_findings():
    gone = _diag(rule="drc.spacing", box=(9, 9, 99, 99))
    baseline = Baseline()
    baseline.add_report(_report(diags=[_diag(), gone]))
    stale = stale_entries([_report(diags=[_diag()])], baseline)
    assert stale == {"a.cif": [gone.fingerprint()]}
    # artifacts not re-linted are not audited
    assert stale_entries([_report(artifact="other.cif")], baseline) == {}
