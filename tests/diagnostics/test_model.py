"""The shared Diagnostic/CheckReport model."""

from repro.diagnostics import CheckReport, Diagnostic, Severity, SourceRef


def _diag(**overrides):
    base = dict(
        severity=Severity.ERROR,
        rule="drc.width",
        message="too narrow",
        tool="drc",
        layer="NP",
        box=(0, 0, 250, 1500),
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_positional_compatibility_with_erc_callers(self):
        # analysis.static_check constructs positionally; the field order
        # is part of the model's compatibility contract.
        d = Diagnostic(Severity.WARNING, "ratio", "low ratio", device=3, net=7)
        assert d.tool == "erc"
        assert d.device == 3 and d.net == 7
        assert d.box is None and d.layer is None

    def test_fingerprint_ignores_message(self):
        assert (
            _diag(message="one wording").fingerprint()
            == _diag(message="another wording").fingerprint()
        )

    def test_fingerprint_distinguishes_geometry(self):
        assert _diag().fingerprint() != _diag(box=(0, 0, 250, 1750)).fingerprint()
        assert _diag().fingerprint() != _diag(rule="drc.spacing").fingerprint()
        assert _diag().fingerprint() != _diag(tool="erc").fingerprint()

    def test_located_attaches_source(self):
        ref = SourceRef(symbol=2, name="cell", path=(0, 2))
        assert _diag().located(ref).source is ref
        assert _diag().located(None).source is None

    def test_source_describe(self):
        assert "top level" in SourceRef(symbol=-1).describe()
        ref = SourceRef(symbol=2, name="cell", path=(0, 1, 2))
        text = ref.describe()
        assert "symbol 2" in text and "cell" in text and "0 > 1 > 2" in text


class TestCheckReport:
    def test_errors_warnings_ok(self):
        report = CheckReport(
            diagnostics=[
                _diag(),
                _diag(severity=Severity.WARNING, rule="ratio"),
            ]
        )
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert CheckReport().ok

    def test_rule_ids_sorted_unique(self):
        report = CheckReport(
            diagnostics=[_diag(), _diag(), _diag(rule="drc.spacing")]
        )
        assert report.rule_ids() == ["drc.spacing", "drc.width"]

    def test_sorted_is_deterministic(self):
        a = _diag(box=(500, 0, 750, 100))
        b = _diag(box=(0, 0, 250, 100))
        report = CheckReport(diagnostics=[a, b])
        assert report.sorted().diagnostics == [b, a]

    def test_extend_accumulates_suppressed(self):
        first = CheckReport(diagnostics=[_diag()], suppressed=2)
        second = CheckReport(diagnostics=[_diag(rule="drc.spacing")], suppressed=1)
        first.extend(second)
        assert len(first.diagnostics) == 2
        assert first.suppressed == 3
