"""The parallel subsystem's correctness bar: serial == parallel == cached.

Every workload family is extracted serially (the oracle), then under
worker pools of several sizes, then twice through a persistent fragment
cache (cold and warm); all wirelists must be equivalent up to net
renumbering (``wirelist.compare``).  The mesh is the degenerate case —
flat geometry, a single window, nothing to fan out — and must still go
through the parallel code paths unharmed.
"""

from __future__ import annotations

import pytest

from repro import extract
from repro.bench import distinct_cell_grid
from repro.hext import hext_extract
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import dram_column, poly_diff_mesh, transistor_array
from repro.workloads.pla import PlaSpec, pla

MAJORITY3 = PlaSpec(
    num_inputs=3,
    products=(
        {0: True, 1: True},
        {0: True, 2: True},
        {1: True, 2: True},
    ),
    outputs=(frozenset({0, 1, 2}),),
)

WORKLOADS = [
    ("mesh", lambda: poly_diff_mesh(5)),
    ("pla", lambda: pla(MAJORITY3)),
    ("memory", lambda: dram_column(6)),
    ("array", lambda: transistor_array(8)),
    ("distinct-cells", lambda: distinct_cell_grid(cells=5, repeats=2, boxes=40)),
]

_LAYOUTS = {}


def _layout(name):
    if name not in _LAYOUTS:
        factory = dict(WORKLOADS)[name]
        layout = factory()
        _LAYOUTS[name] = (layout, circuit_to_flat(extract(layout)))
    return _LAYOUTS[name]


def _assert_equivalent(name, reference, result):
    report = compare_netlists(reference, circuit_to_flat(result.circuit))
    assert report.equivalent, f"{name}: {report.reason}"


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("name", [name for name, _ in WORKLOADS])
def test_parallel_matches_serial(name, jobs):
    layout, reference = _layout(name)
    result = hext_extract(layout, jobs=jobs)
    _assert_equivalent(name, reference, result)
    serial = hext_extract(layout)
    assert result.stats.flat_calls == serial.stats.flat_calls
    assert result.stats.unique_windows == serial.stats.unique_windows
    assert result.stats.compose_calls == serial.stats.compose_calls


@pytest.mark.parametrize("name", [name for name, _ in WORKLOADS])
def test_warm_cache_matches_serial(name, tmp_path):
    layout, reference = _layout(name)
    cache = str(tmp_path / "fragments")

    cold = hext_extract(layout, cache=cache)
    _assert_equivalent(name, reference, cold)
    assert cold.stats.cache_hits == 0
    assert cold.stats.cache_misses == cold.stats.flat_calls > 0

    warm = hext_extract(layout, cache=cache)
    _assert_equivalent(name, reference, warm)
    assert warm.stats.flat_calls == 0, "warm cache must skip extraction"
    assert warm.stats.cache_hits == cold.stats.flat_calls
    assert warm.stats.cache_hit_rate == 1.0


def test_parallel_and_cache_compose(tmp_path):
    """jobs + cache together: workers fill the cache, warm run drains it."""
    name = "distinct-cells"
    layout, reference = _layout(name)
    cache = str(tmp_path / "fragments")

    cold = hext_extract(layout, jobs=2, cache=cache)
    _assert_equivalent(name, reference, cold)
    assert cold.stats.flat_calls > 0

    warm = hext_extract(layout, jobs=2, cache=cache)
    _assert_equivalent(name, reference, warm)
    assert warm.stats.flat_calls == 0
    assert warm.stats.cache_hit_rate == 1.0


def test_cache_shared_across_equal_content(tmp_path):
    """Cache keys hash content, not placement or symbol numbers.

    Two distinct Layout objects with identical artwork share entries.
    """
    cache = str(tmp_path / "fragments")
    first = hext_extract(transistor_array(8), cache=cache)
    second = hext_extract(transistor_array(8), cache=cache)
    assert first.stats.cache_misses == first.stats.flat_calls
    assert second.stats.flat_calls == 0
    assert second.stats.cache_hits == first.stats.flat_calls


def test_jobs_zero_means_per_cpu():
    from repro.parallel import resolve_jobs

    import os

    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_jobs(-2)
