"""JsonEnvelopeStore budgets: eviction, TTL, and cross-process safety.

The fleet's shared artifact store is just this class pointed at one
directory by several daemons, so the properties under test here are
load-bearing for the whole fleet tier: LRU eviction must spare the hot
set, TTL must expire by age, a just-written entry must never be its
own eviction victim, and two processes hammering one directory must
never observe a torn read (atomic ``os.replace`` + full-envelope
checksums).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel.cache import JsonEnvelopeStore

REPO = Path(__file__).resolve().parents[2]


def key_for(i):
    return f"{i:02d}" + "ab" * 31  # 64 hex-ish chars, distinct prefixes


def payload_for(i, pad=0):
    return {"value": i, "pad": "x" * pad}


class TestBudgetValidation:
    def test_rejects_nonsense_budgets(self, tmp_path):
        with pytest.raises(ValueError):
            JsonEnvelopeStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            JsonEnvelopeStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            JsonEnvelopeStore(tmp_path, ttl_seconds=0)

    def test_unbudgeted_store_never_evicts(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path)
        for i in range(20):
            store.put_payload(key_for(i), payload_for(i))
        assert len(store) == 20
        assert store.stats.evicted == 0


class TestMaxEntries:
    def test_lru_eviction_keeps_newest(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, max_entries=3)
        for i in range(6):
            store.put_payload(key_for(i), payload_for(i))
            time.sleep(0.01)  # distinct mtimes
        assert len(store) == 3
        assert store.stats.evicted == 3
        for i in range(3):
            assert store.get_payload(key_for(i)) is None
        for i in range(3, 6):
            assert store.get_payload(key_for(i)) == payload_for(i)

    def test_hit_refreshes_recency(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, max_entries=2)
        store.put_payload(key_for(0), payload_for(0))
        time.sleep(0.01)
        store.put_payload(key_for(1), payload_for(1))
        time.sleep(0.01)
        # Touch key 0: it becomes the most recent of the two.
        assert store.get_payload(key_for(0)) == payload_for(0)
        time.sleep(0.01)
        store.put_payload(key_for(2), payload_for(2))
        # Key 1 (now the LRU) was evicted; the touched key 0 survives.
        assert store.get_payload(key_for(0)) == payload_for(0)
        assert store.get_payload(key_for(1)) is None

    def test_just_written_entry_is_never_the_victim(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, max_entries=1)
        for i in range(4):
            store.put_payload(key_for(i), payload_for(i))
            # The entry that was just put must always be readable,
            # even with the tightest possible budget.
            assert store.get_payload(key_for(i)) == payload_for(i)
        assert len(store) == 1


class TestMaxBytes:
    def test_size_budget_evicts_oldest_first(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path)
        store.put_payload(key_for(0), payload_for(0, pad=2000))
        size = store.path_for(key_for(0)).stat().st_size
        budget = int(size * 2.5)  # room for two entries, not three
        store = JsonEnvelopeStore(tmp_path, max_bytes=budget)
        time.sleep(0.01)
        store.put_payload(key_for(1), payload_for(1, pad=2000))
        time.sleep(0.01)
        store.put_payload(key_for(2), payload_for(2, pad=2000))
        assert len(store) == 2
        assert store.get_payload(key_for(0)) is None
        assert store.get_payload(key_for(2)) == payload_for(2, pad=2000)


class TestTtl:
    def test_expired_entry_reads_as_miss_and_is_deleted(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, ttl_seconds=30.0)
        store.put_payload(key_for(0), payload_for(0))
        path = store.path_for(key_for(0))
        # Age the file far past the TTL.
        old = time.time() - 3600
        os.utime(path, (old, old))
        assert store.get_payload(key_for(0)) is None
        assert store.stats.expired == 1
        assert not path.exists()

    def test_fresh_entry_survives_ttl(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, ttl_seconds=3600.0)
        store.put_payload(key_for(0), payload_for(0))
        assert store.get_payload(key_for(0)) == payload_for(0)

    def test_enforce_budget_sweeps_expired(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path, ttl_seconds=30.0)
        for i in range(4):
            store.put_payload(key_for(i), payload_for(i))
        old = time.time() - 3600
        for i in range(2):
            os.utime(store.path_for(key_for(i)), (old, old))
        removed = store.enforce_budget()
        assert removed == 2
        assert len(store) == 2


class TestMaintenanceViews:
    def test_recent_keys_orders_by_recency(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path)
        for i in range(4):
            store.put_payload(key_for(i), payload_for(i))
            time.sleep(0.01)
        assert store.recent_keys() == [key_for(i) for i in (3, 2, 1, 0)]
        assert store.recent_keys(limit=2) == [key_for(3), key_for(2)]

    def test_entries_tolerates_concurrent_deletion(self, tmp_path):
        store = JsonEnvelopeStore(tmp_path)
        for i in range(3):
            store.put_payload(key_for(i), payload_for(i))
        iterator = store.entries()
        first = next(iterator)
        # Delete the remaining files mid-iteration: no crash, and stat
        # failures are skipped rather than raised.
        store.clear()
        rest = list(iterator)
        assert first is not None
        assert all(isinstance(k, str) for k, _, _ in rest)


WRITER = r"""
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.parallel.cache import JsonEnvelopeStore

store = JsonEnvelopeStore(sys.argv[2], max_entries=24)
deadline = time.monotonic() + float(sys.argv[4])
seq = 0
start = int(sys.argv[3])
while time.monotonic() < deadline:
    i = start + (seq % 32)
    key = f"{i:02d}" + "ab" * 31
    store.put_payload(key, {"value": i, "pad": "x" * 512})
    seq += 1
print(seq)
"""

READER = r"""
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.parallel.cache import JsonEnvelopeStore

store = JsonEnvelopeStore(sys.argv[2], max_entries=24)
deadline = time.monotonic() + float(sys.argv[3])
reads = 0
while time.monotonic() < deadline:
    for i in range(64):
        key = f"{i:02d}" + "ab" * 31
        payload = store.get_payload(key)
        if payload is not None:
            # A torn or cross-contaminated read would fail here: the
            # envelope checksum guarantees value/pad arrived together.
            assert payload["value"] == i, (i, payload)
            assert payload["pad"] == "x" * 512
            reads += 1
print(reads, store.stats.invalid)
"""


def test_two_process_stress_no_torn_reads(tmp_path):
    """Two writers + one reader on one directory: every observed entry
    is complete and self-consistent, and nothing ever reads as invalid
    (atomic replace means there is no torn intermediate state)."""
    src = str(REPO / "src")
    store_dir = str(tmp_path / "shared")
    seconds = "2.0"
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, src, store_dir, str(start), seconds],
            stdout=subprocess.PIPE,
            text=True,
        )
        for start in (0, 32)
    ]
    reader = subprocess.Popen(
        [sys.executable, "-c", READER, src, store_dir, seconds],
        stdout=subprocess.PIPE,
        text=True,
    )
    wrote = 0
    for proc in writers:
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        wrote += int(out.split()[0])
    out, _ = reader.communicate(timeout=60)
    assert reader.returncode == 0, out
    reads, invalid = (int(x) for x in out.split())
    assert wrote > 0
    assert reads > 0, "reader never observed a single entry"
    assert invalid == 0, f"{invalid} reads saw a torn/corrupt envelope"
    # Both writers enforced the same budget; the directory respects it.
    survivors = len(JsonEnvelopeStore(store_dir, max_entries=24))
    assert survivors <= 24


def test_corrupt_envelope_is_rejected_and_deleted(tmp_path):
    store = JsonEnvelopeStore(tmp_path)
    store.put_payload(key_for(0), payload_for(0))
    path = store.path_for(key_for(0))
    envelope = json.loads(path.read_text())
    envelope["payload"]["value"] = 999  # checksum now lies
    path.write_text(json.dumps(envelope))
    assert store.get_payload(key_for(0)) is None
    assert store.stats.invalid == 1
    assert not path.exists()
