"""The fragment cache must never trust what it reads back.

Every tampering mode — truncated files, non-JSON bytes, a stale format
version, a checksum mismatch, and a well-formed envelope wrapping a
structurally invalid fragment — must be detected, counted as invalid,
deleted, and transparently re-extracted, with the final wirelist
unchanged.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import extract
from repro.hext import hext_extract
from repro.parallel import FragmentCache
from repro.parallel.serialize import canonical_json
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import inverter_rows


@pytest.fixture()
def cached_run(tmp_path):
    layout = inverter_rows(2, 2, shared_symbols=False)
    cache_dir = tmp_path / "fragments"
    cold = hext_extract(layout, cache=str(cache_dir))
    reference = circuit_to_flat(extract(layout))
    entries = sorted(cache_dir.glob("??/*.json"))
    assert entries, "cold run must populate the cache"
    return layout, cache_dir, reference, entries


def _rerun(layout, cache_dir, reference):
    result = hext_extract(layout, cache=str(cache_dir))
    report = compare_netlists(reference, circuit_to_flat(result.circuit))
    assert report.equivalent, report.reason
    return result


def test_truncated_entry_is_reextracted(cached_run):
    layout, cache_dir, reference, entries = cached_run
    entries[0].write_text(entries[0].read_text()[:40])
    result = _rerun(layout, cache_dir, reference)
    assert result.stats.cache_invalid == 1
    assert result.stats.flat_calls == 1


def test_garbage_bytes_are_reextracted(cached_run):
    layout, cache_dir, reference, entries = cached_run
    entries[0].write_bytes(b"\x00\xff not json at all")
    result = _rerun(layout, cache_dir, reference)
    assert result.stats.cache_invalid == 1
    assert result.stats.flat_calls == 1


def test_stale_format_version_is_reextracted(cached_run):
    layout, cache_dir, reference, entries = cached_run
    envelope = json.loads(entries[0].read_text())
    envelope["format"] = 999  # a future (or ancient) format
    entries[0].write_text(json.dumps(envelope))
    result = _rerun(layout, cache_dir, reference)
    assert result.stats.cache_invalid == 1
    assert result.stats.flat_calls == 1


def test_checksum_mismatch_is_reextracted(cached_run):
    layout, cache_dir, reference, entries = cached_run
    envelope = json.loads(entries[0].read_text())
    envelope["fragment"]["net_count"] += 1  # silent bit-rot in the body
    entries[0].write_text(json.dumps(envelope))
    result = _rerun(layout, cache_dir, reference)
    assert result.stats.cache_invalid == 1
    assert result.stats.flat_calls == 1


def test_valid_checksum_bad_structure_is_reextracted(cached_run):
    """An attacker-grade corruption: checksum recomputed over a payload
    that no longer describes a legal fragment."""
    layout, cache_dir, reference, entries = cached_run
    envelope = json.loads(entries[0].read_text())
    payload = envelope["fragment"]
    payload["interface"] = [["X", "NM", 0, 0, 1, 0]]  # face "X" is illegal
    envelope["checksum"] = hashlib.sha256(
        canonical_json(payload).encode()
    ).hexdigest()
    entries[0].write_text(json.dumps(envelope))
    result = _rerun(layout, cache_dir, reference)
    assert result.stats.cache_invalid == 1
    assert result.stats.flat_calls == 1


def test_rejected_entry_is_replaced(cached_run):
    """After detection, the next run hits a fresh, valid entry."""
    layout, cache_dir, reference, entries = cached_run
    entries[0].write_text("{}")
    _rerun(layout, cache_dir, reference)
    healed = _rerun(layout, cache_dir, reference)
    assert healed.stats.cache_invalid == 0
    assert healed.stats.flat_calls == 0
    assert healed.stats.cache_hit_rate == 1.0


def test_cache_maintenance(tmp_path):
    cache_dir = tmp_path / "fragments"
    hext_extract(inverter_rows(2, 2), cache=str(cache_dir))
    store = FragmentCache(cache_dir)
    assert len(store) > 0
    removed = store.clear()
    assert removed > 0
    assert len(store) == 0
