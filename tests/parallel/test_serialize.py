"""The versioned payload format: lossless round-trips and strict loading."""

from __future__ import annotations

import pytest

from repro.geometry import Box
from repro.hext import Fragment, extract_primitive, hext_extract, plan_windows
from repro.hext.extractor import HextStats
from repro.hext.windows import WindowPlanner
from repro.parallel import (
    FORMAT_VERSION,
    SerializationError,
    content_from_payload,
    content_payload,
    fragment_from_payload,
    fragment_payload,
    technology_fingerprint,
    window_cache_key,
)
from repro.tech import NMOS, Technology
from repro.workloads import inverter, inverter_rows


def _primitive_fragments():
    """Real primitive fragments plus their source contents."""
    planner_layout = inverter_rows(2, 3)
    planner = WindowPlanner(planner_layout)
    plan = plan_windows(planner, planner.top_content(), HextStats())
    tech = NMOS()
    return [
        (content, extract_primitive(content, tech))
        for content in plan.primitives.values()
    ]


def test_fragment_round_trip_is_lossless():
    for _, fragment in _primitive_fragments():
        rebuilt = fragment_from_payload(fragment_payload(fragment))
        assert rebuilt == fragment
        # Payload of the rebuilt fragment is byte-identical, so cache
        # checksums survive a round trip.
        assert fragment_payload(rebuilt) == fragment_payload(fragment)


def test_content_round_trip_normalizes_to_origin():
    for content, _ in _primitive_fragments():
        payload = content_payload(content)
        rebuilt = content_from_payload(payload)
        assert rebuilt.region.xmin == 0 and rebuilt.region.ymin == 0
        assert rebuilt.region.width == content.region.width
        # Window-relative payloads are placement-independent.
        assert content_payload(rebuilt) == payload


def test_extraction_commutes_with_serialization():
    """extract(content) == deserialize(extract(serialize(content)))."""
    tech = NMOS()
    for content, fragment in _primitive_fragments():
        shipped = content_from_payload(content_payload(content))
        remote = extract_primitive(shipped, tech)
        assert fragment_payload(remote) == fragment_payload(fragment)


def test_composed_fragments_refuse_to_serialize():
    result = hext_extract(inverter_rows(2, 3))
    assert result.fragment.children  # composed at the top
    with pytest.raises(SerializationError):
        fragment_payload(result.fragment)


def test_cache_key_sensitivity():
    planner = WindowPlanner(inverter())
    plan = plan_windows(planner, planner.top_content(), HextStats())
    content = next(iter(plan.primitives.values()))
    tech = NMOS()

    base = window_cache_key(content, tech, 50)
    assert base == window_cache_key(content, tech, 50)  # deterministic
    assert base != window_cache_key(content, tech, 25)  # resolution
    assert base != window_cache_key(content, NMOS(lambda_=100), 50)  # process

    # Different artwork, different key.
    moved = content_from_payload(content_payload(content))
    moved.geometry[0] = (
        moved.geometry[0][0],
        moved.geometry[0][1].translated(1, 0),
    )
    assert window_cache_key(moved, tech, 50) != base


def test_technology_fingerprint_tracks_rules():
    assert technology_fingerprint(NMOS()) == technology_fingerprint(NMOS())
    assert technology_fingerprint(NMOS()) != technology_fingerprint(
        NMOS(lambda_=100)
    )
    assert technology_fingerprint(NMOS()) != technology_fingerprint(
        Technology(name="other")
    )


def test_malformed_payloads_raise():
    import json

    _, fragment = _primitive_fragments()[0]
    good = fragment_payload(fragment)
    fragment_from_payload(good)  # sanity: the original loads

    for mutate in [
        lambda p: p.update(format=FORMAT_VERSION + 1),
        lambda p: p.update(net_count="three"),
        lambda p: p.update(region=[]),
        lambda p: p.pop("devices"),
        lambda p: p.update(interface=[["Q", "NM", 0, 0, 1, 0]]),
        lambda p: p.update(net_names=[[10 ** 6, ["VDD"]]]),
    ]:
        payload = json.loads(json.dumps(good))
        mutate(payload)
        with pytest.raises(SerializationError):
            fragment_from_payload(payload)


def test_empty_fragment_round_trip():
    empty = Fragment(region=(Box(0, 0, 4, 4),), net_count=0)
    assert fragment_from_payload(fragment_payload(empty)) == empty
