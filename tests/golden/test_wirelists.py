"""Golden-wirelist snapshot tests.

Each canonical layout in :mod:`tests.golden.cases` is extracted and its
flat wirelist compared byte-for-byte against the committed
``<case>.wirelist``.  On mismatch the failure message carries a unified
diff plus the one-line regen command, so an *intentional* extractor
change is a quick refresh and an unintentional one is immediately
legible.
"""

import difflib
from pathlib import Path

import pytest

from repro.core.stripengine import numpy_available

from .cases import GOLDEN_CASES, render_case

GOLDEN_DIR = Path(__file__).parent
REGEN = "PYTHONPATH=src python tools/regen_golden.py"

#: Every strip engine importable here; the goldens must be byte-for-byte
#: identical on all of them (the engine contract of docs/ENGINES.md).
ENGINES = ("python", "numpy") if numpy_available() else ("python",)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_wirelist_matches_golden(name, engine):
    path = GOLDEN_DIR / f"{name}.wirelist"
    assert path.exists(), (
        f"missing snapshot {path.name}; create it with: {REGEN} {name}"
    )
    expected = path.read_text()
    actual = render_case(name, engine)
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{name}.wirelist",
                tofile="extracted",
                lineterm="",
            )
        )
        pytest.fail(
            f"wirelist for {name!r} (engine={engine}) drifted from its "
            f"golden snapshot.\n{diff}\n\n"
            f"If the change is intentional: {REGEN} {name}"
        )


def test_no_stale_snapshots():
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.wirelist")}
    assert on_disk == set(GOLDEN_CASES), (
        "snapshots and cases out of sync; "
        f"extra={sorted(on_disk - set(GOLDEN_CASES))}, "
        f"missing={sorted(set(GOLDEN_CASES) - on_disk)}"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_cases_are_deterministic(name):
    assert render_case(name) == render_case(name)
