"""Golden lint-report snapshot tests.

Every canonical layout's ``repro-lint`` text report is pinned as
``<case>.lint``: the five wirelist goldens must stay free of DRC errors,
and the deliberately violating ``drc_violations`` fixture must report
exactly its planted rule ids -- no more, no fewer.
"""

import difflib
from pathlib import Path

import pytest

from repro.lint import lint_layout
from repro.tech import NMOS
from repro.workloads.violations import drc_violations, snippet_rules

from .cases import GOLDEN_CASES, LINT_CASES, render_lint_case

GOLDEN_DIR = Path(__file__).parent
REGEN = "PYTHONPATH=src python tools/regen_golden.py"


@pytest.mark.parametrize("name", sorted(LINT_CASES))
def test_lint_report_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.lint"
    assert path.exists(), (
        f"missing snapshot {path.name}; create it with: {REGEN} {name}"
    )
    expected = path.read_text()
    actual = render_lint_case(name)
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{name}.lint",
                tofile="linted",
                lineterm="",
            )
        )
        pytest.fail(
            f"lint report for {name!r} drifted from its golden snapshot.\n"
            f"{diff}\n\nIf the change is intentional: {REGEN} {name}"
        )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_canonical_layouts_have_no_drc_errors(name):
    report = lint_layout(GOLDEN_CASES[name](), tech=NMOS(), erc=False)
    assert report.diagnostics == [], (
        f"{name} is a known-clean layout but the DRC flagged: "
        f"{[d.rule for d in report.diagnostics]}"
    )


def test_violation_fixture_reports_exactly_planted_rules():
    report = lint_layout(drc_violations(), tech=NMOS(), erc=False)
    assert sorted(report.rule_ids()) == sorted(snippet_rules())
    # one merged region per planted snippet
    assert len(report.diagnostics) == len(snippet_rules())
    assert all(d.tool == "drc" for d in report.diagnostics)


def test_no_stale_lint_snapshots():
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.lint")}
    assert on_disk == set(LINT_CASES), (
        "lint snapshots and cases out of sync; "
        f"extra={sorted(on_disk - set(LINT_CASES))}, "
        f"missing={sorted(set(LINT_CASES) - on_disk)}"
    )


@pytest.mark.parametrize("name", sorted(LINT_CASES))
def test_lint_cases_are_deterministic(name):
    assert render_lint_case(name) == render_lint_case(name)
