"""The canonical layouts whose extracted wirelists are pinned as goldens.

Each case is a zero-argument factory returning a :class:`Layout`; the
snapshot for case ``name`` lives next to this module as
``name.wirelist``.  Regenerate all snapshots with::

    PYTHONPATH=src python tools/regen_golden.py

and review the diff like any other code change -- a golden churn without
an intentional extractor change is a regression.
"""

from __future__ import annotations

from repro.cif import Layout
from repro.core import extract
from repro.diagnostics import format_text
from repro.lint import lint_layout
from repro.tech import CMOS, NMOS, Technology
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads.builder import LayoutBuilder
from repro.workloads.cells import (
    build_chain_inverter_cell,
    inverter,
    nand2,
)
from repro.workloads.cmos import (
    cmos_inverter,
    cmos_nand2,
    pseudo_nmos_inverter,
)
from repro.workloads.violations import drc_violations

TECH = NMOS()
CMOS_TECH = CMOS()


def butting_contact() -> Layout:
    """A driver whose gate is fed through a butting contact.

    The contact cut sits over metal, poly, AND diffusion at once, so all
    three nets union (tech rule: a contact unions every conducting layer
    under it).  The poly then gates a second diffusion strip -- the
    wirelist must show IN driving the gate even though the label sits on
    the metal arm.
    """
    b = LayoutBuilder(TECH.lambda_)
    # The butting pair: poly from the left, diffusion from the right,
    # meeting edge-to-edge under one 2x4 cut covered by metal.
    b.top.box("NP", 0, 4, 8, 6)
    b.top.box("ND", 8, 3, 14, 7)
    b.top.box("NC", 6, 3, 10, 7)
    b.top.box("NM", 5, 2, 11, 8)
    # The same poly runs on to gate a transistor on a second strip.
    b.top.box("NP", 0, 6, 2, 16)
    b.top.box("NP", 0, 16, 10, 18)
    b.top.box("ND", 6, 12, 8, 22)
    b.top.label("IN", 7, 5, "NM")
    b.top.label("S", 7, 13, "ND")
    b.top.label("D", 7, 21, "ND")
    return b.done()


def buried_contact() -> Layout:
    """A depletion load tied gate-to-source through a buried contact.

    This is the inverter's upper half in isolation: the buried window
    unions poly and diffusion (and suppresses the channel under itself),
    leaving exactly one nDep whose gate and OUT-side terminal share a
    net.
    """
    b = LayoutBuilder(TECH.lambda_)
    b.top.box("ND", 0, 0, 2, 20)
    b.top.box("NP", 0, 4, 2, 7)  # poly tab into the buried window
    b.top.box("NB", 0, 4, 2, 7)
    b.top.box("NP", -1, 7, 3, 15)  # the depletion gate
    b.top.box("NI", -2, 6, 4, 16)
    b.top.label("OUT", 1, 2, "ND")
    b.top.label("VDD", 1, 18, "ND")
    return b.done()


def hier_pair() -> Layout:
    """A two-level hierarchy: a row cell calling a leaf inverter twice.

    Level 1 is the chain inverter leaf; level 2 is a row symbol placing
    two of them at abutment pitch; the top calls the row.  Exercises
    call-through-call flattening and net stitching across cell edges.
    """
    b = LayoutBuilder(TECH.lambda_)
    leaf = build_chain_inverter_cell(b)
    row = b.new_symbol()
    row.call(leaf, 0, 0)
    row.call(leaf, 10, 0)
    b.top.call(row, 0, 0)
    b.top.label("IN", 1, 10, "NM")
    b.top.label("OUT", 18, 10, "NM")
    b.top.label("VDD", 5, 24, "NM")
    b.top.label("GND", 5, 2, "NM")
    return b.done()


#: name -> layout factory; sorted emission order keeps regen diffs stable.
GOLDEN_CASES: "dict[str, callable]" = {
    "inverter": inverter,
    "nand2": nand2,
    "butting_contact": butting_contact,
    "buried_contact": buried_contact,
    "hier_pair": hier_pair,
    "cmos_inverter": cmos_inverter,
    "cmos_nand2": cmos_nand2,
    "pseudo_nmos": pseudo_nmos_inverter,
}

#: Cases extracted under a non-default deck; everything else is NMOS.
CASE_TECH: "dict[str, Technology]" = {
    "cmos_inverter": CMOS_TECH,
    "cmos_nand2": CMOS_TECH,
    "pseudo_nmos": CMOS_TECH,
}


def tech_for(name: str) -> Technology:
    """The technology a golden case extracts under."""
    return CASE_TECH.get(name, TECH)

#: Lint-report snapshot cases: every wirelist golden (all of which must
#: stay DRC-clean) plus the deliberately violating fixture, whose report
#: must list exactly its planted rule ids.
LINT_CASES: "dict[str, callable]" = {
    **GOLDEN_CASES,
    "drc_violations": drc_violations,
}


def render_case(name: str, engine: str = "auto") -> str:
    """The wirelist text a snapshot pins: extract + flat CMU format.

    ``engine`` selects the strip-batch engine; every engine must render
    byte-identical text, so the goldens double as the engine-parity
    fixture (see tests/golden/test_wirelists.py).
    """
    layout = GOLDEN_CASES[name]()
    tech = tech_for(name)
    circuit = extract(layout, tech, keep_geometry=True, engine=engine)
    return write_wirelist(to_wirelist(circuit, name=name, tech=tech))


def render_lint_case(name: str) -> str:
    """The ``repro-lint`` text report a ``<case>.lint`` snapshot pins."""
    layout = LINT_CASES[name]()
    return format_text(
        lint_layout(layout, tech=tech_for(name), artifact=name)
    )
