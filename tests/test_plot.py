"""Layout renderers."""

import xml.etree.ElementTree as ET

from repro.cif import Layout
from repro.geometry import Box
from repro.plot import LAYER_COLORS, ascii_plot, plot_legend, svg_plot
from repro.workloads import inverter, nand2


def _one_transistor() -> Layout:
    layout = Layout()
    layout.top.add_box("ND", Box(40, 0, 60, 100))
    layout.top.add_box("NP", Box(0, 40, 100, 60))
    return layout


class TestAscii:
    def test_empty(self):
        assert ascii_plot(Layout()) == "(empty layout)\n"

    def test_channel_marked(self):
        art = ascii_plot(_one_transistor(), width=20)
        assert "T" in art
        assert "d" in art
        assert "p" in art

    def test_channel_at_crossing_only(self):
        art = ascii_plot(_one_transistor(), width=20)
        lines = [line for line in art.splitlines() if line]
        # Rows containing T must also contain p on both sides.
        for line in lines:
            if "T" in line:
                left, right = line.split("T", 1)
                assert "p" in left
                assert "p" in right.rstrip("T")
        # Rows with bare d must not contain p.
        bare = [line for line in lines if "d" in line and "T" not in line]
        assert bare
        assert all("p" not in line for line in bare)

    def test_width_respected(self):
        art = ascii_plot(inverter(), width=30)
        assert max(len(line) for line in art.splitlines()) <= 34

    def test_labels_overprinted(self):
        art = ascii_plot(inverter(), width=60)
        for name in ("VDD", "GND", "IN", "OUT"):
            assert name in art

    def test_labels_can_be_hidden(self):
        art = ascii_plot(inverter(), width=60, show_labels=False)
        assert "VDD" not in art

    def test_contact_precedence(self):
        layout = Layout()
        layout.top.add_box("NM", Box(0, 0, 40, 40))
        layout.top.add_box("ND", Box(0, 0, 40, 40))
        layout.top.add_box("NC", Box(10, 10, 30, 30))
        art = ascii_plot(layout, width=10)
        assert "X" in art
        assert "d" in art  # diffusion ring around the cut (d beats m)

    def test_legend_mentions_every_char(self):
        legend = plot_legend()
        for char in "TBXdpmi":
            assert char in legend


class TestSvg:
    def test_valid_xml(self):
        root = ET.fromstring(svg_plot(inverter()))
        assert root.tag.endswith("svg")

    def test_one_rect_per_box_plus_background(self):
        layout = _one_transistor()
        svg = svg_plot(layout)
        assert svg.count("<rect") == 2 + 1

    def test_layer_colors_used(self):
        svg = svg_plot(inverter())
        assert LAYER_COLORS["ND"][0] in svg
        assert LAYER_COLORS["NP"][0] in svg
        assert LAYER_COLORS["NM"][0] in svg

    def test_labels_as_text(self):
        svg = svg_plot(nand2())
        assert "<text" in svg
        assert ">A</text>" in svg
        assert ">OUT</text>" in svg

    def test_writes_file(self, tmp_path):
        target = tmp_path / "chip.svg"
        svg_plot(inverter(), str(target))
        assert target.read_text().startswith("<svg")

    def test_empty_layout(self):
        root = ET.fromstring(svg_plot(Layout()))
        assert root is not None

    def test_y_axis_flipped(self):
        # A box at the TOP of the chip must appear at a SMALL svg y.
        layout = Layout()
        layout.top.add_box("NM", Box(0, 900, 100, 1000))  # top
        layout.top.add_box("ND", Box(0, 0, 100, 100))  # bottom
        svg = svg_plot(layout, scale=0.1)
        root = ET.fromstring(svg)
        rects = [r for r in root.iter() if r.tag.endswith("rect")]
        by_fill = {r.get("fill"): float(r.get("y")) for r in rects}
        assert by_fill[LAYER_COLORS["NM"][0]] < by_fill[LAYER_COLORS["ND"][0]]