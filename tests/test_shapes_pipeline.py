"""Polygons and wires through the full pipeline.

The integration cases elsewhere draw with boxes; here the same inverter
is drawn with CIF polygons and wires, exercising the fracturer inside
parsing, instantiation, the scanline, both baselines, and HEXT.
"""

import pytest

from repro import extract
from repro.baselines import extract_polyflat, extract_raster
from repro.cif import parse, write
from repro.hext import hext_extract
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import inverter


def _inverter_cif_with_shapes() -> str:
    """The standard inverter, but diffusion as a polygon, rails as wires."""
    lam = 250

    def pts(*pairs):
        return " ".join(f"{x * lam} {y * lam}" for x, y in pairs)

    return f"""
    (the inverter of Figure 3-3, drawn with P and W commands);
    L ND; P {pts((0, 1), (2, 1), (2, 29), (0, 29))};
    L NM; W {4 * lam} {pts((-4, 2), (6, 2))};
    L NC; B {2 * lam} {2 * lam} {1 * lam} {2 * lam};
    L NP; W {2 * lam} {pts((-4, 7), (6, 7))};
    L NP; B {2 * lam} {3 * lam} {1 * lam} {int(14.5 * lam)};
    L NB; B {2 * lam} {3 * lam} {1 * lam} {int(14.5 * lam)};
    L NP; P {pts((-1, 16), (3, 16), (3, 24), (-1, 24))};
    L NI; B {6 * lam} {10 * lam} {1 * lam} {20 * lam};
    L NC; B {2 * lam} {2 * lam} {1 * lam} {28 * lam};
    L NM; W {4 * lam} {pts((-4, 28), (6, 28))};
    94 VDD {1 * lam} {28 * lam} NM;
    94 GND {1 * lam} {2 * lam} NM;
    94 OUT {1 * lam} {10 * lam} ND;
    94 IN {-3 * lam} {7 * lam} NP;
    E
    """


@pytest.fixture(scope="module")
def shape_layout():
    return parse(_inverter_cif_with_shapes())


class TestShapeInverter:
    def test_extracts_inverter(self, shape_layout):
        circuit = extract(shape_layout)
        assert len(circuit.devices) == 2
        kinds = sorted(d.kind for d in circuit.devices)
        assert kinds == ["nDep", "nEnh"]
        names = {n.names[0] for n in circuit.nets if n.names}
        assert names == {"VDD", "GND", "IN", "OUT"}

    def test_matches_box_drawn_inverter(self, shape_layout):
        # Same circuit as the box-drawn cell (sizes differ slightly:
        # wires give the rails square ends).
        shapes = circuit_to_flat(extract(shape_layout))
        boxes = circuit_to_flat(extract(inverter()))
        report = compare_netlists(shapes, boxes)
        assert report.equivalent, report.reason

    def test_all_extractors_agree(self, shape_layout):
        reference = circuit_to_flat(extract(shape_layout))
        for label, circuit in (
            ("raster", extract_raster(shape_layout)),
            ("polyflat", extract_polyflat(shape_layout)),
            ("hext", hext_extract(shape_layout).circuit),
        ):
            report = compare_netlists(reference, circuit_to_flat(circuit))
            assert report.equivalent, f"{label}: {report.reason}"

    def test_cif_roundtrip(self, shape_layout):
        back = parse(write(shape_layout))
        report = compare_netlists(
            circuit_to_flat(extract(shape_layout)),
            circuit_to_flat(extract(back)),
        )
        assert report.equivalent, report.reason
