"""Shard death mid-load: every in-flight job completes, bytes intact.

The satellite the fleet story hangs on: SIGKILL a daemon while jobs it
accepted are still queued or running, and prove that (a) every job a
client was promised completes anyway — rerouted to a sibling by the
router's failover resubmission — and (b) the wirelists that come back
are byte-identical to a solo daemon's, because *where* a job runs must
never change *what* it returns.
"""

import threading

from repro.cif import write as write_cif
from repro.fleet import FleetRouter, FleetSupervisor, RouterConfig
from repro.service import (
    ExtractionService,
    ServiceClient,
    ServiceConfig,
)
from repro.workloads import dram_column, poly_diff_mesh

PAYLOADS = [
    (f"load{i}.cif", write_cif(poly_diff_mesh(4 + i)))
    for i in range(6)
] + [
    (f"dram{i}.cif", write_cif(dram_column(4 + i)))
    for i in range(4)
]


def _reference():
    solo = ExtractionService(ServiceConfig(port=0, workers=2, quiet=True))
    solo.start()
    try:
        client = ServiceClient(port=solo.port, timeout=60.0)
        return {
            name: client.extract(cif, name=name, wait_timeout=60.0)[
                "wirelist"
            ]
            for name, cif in PAYLOADS
        }
    finally:
        solo.close()


def test_sigkill_mid_load_reroutes_with_byte_parity(tmp_path):
    reference = _reference()
    supervisor = FleetSupervisor(
        3,
        workers=1,  # one worker per shard: queues build, jobs stay in flight
        store_dir=str(tmp_path / "store"),
        prime_cache=8,
    )
    specs = supervisor.start()
    router = FleetRouter(
        specs, RouterConfig(port=0, quiet=True, health_interval=0.2)
    )
    router.start()
    try:
        submit_client = ServiceClient(port=router.port, timeout=60.0)
        receipts = {}
        for name, cif in PAYLOADS:
            receipts[name] = submit_client.submit(cif, name=name)["job"]

        # Pick the shard holding the most in-flight fleet jobs and
        # murder it.  (Reading the router's table from the test thread
        # is safe here: submissions are done, nothing mutates shard
        # assignment until polling resumes below.)
        loads = {
            name: len(router.table.pending_on(shard))
            for name, shard in router.shards.items()
        }
        victim = max(loads, key=loads.get)
        victim_jobs = loads[victim]
        assert victim_jobs >= 1, f"no in-flight jobs to orphan: {loads}"
        supervisor.kill_shard(victim)

        # Every promised job must still complete, and byte-identically.
        errors = []
        results = {}
        lock = threading.Lock()

        def wait_one(name, ident):
            client = ServiceClient(port=router.port, timeout=90.0)
            try:
                status = client.wait(ident, timeout=90.0)
                if status["state"] != "done":
                    raise AssertionError(
                        f"{name} ended {status['state']}: {status}"
                    )
                wirelist = client.result(ident)["wirelist"]
                with lock:
                    results[name] = wirelist
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(f"{name}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=wait_one, args=(name, ident))
            for name, ident in receipts.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        assert set(results) == set(reference)
        for name, wirelist in results.items():
            assert wirelist == reference[name], f"{name} bytes diverged"

        counters = ServiceClient(port=router.port, timeout=30.0).metrics()[
            "fleet"
        ]["counters"]
        assert counters.get("failover", 0) >= 1
        assert counters.get("shard_down", 0) >= 1
    finally:
        router.close()
        supervisor.close()
