"""Shared fixtures: an in-process two-shard fleet per test.

The shards are real :class:`ExtractionService` daemons on ephemeral
ports (threaded, in this process — cheap and easy to introspect); the
router in front is the real asyncio front-end.  Subprocess shards, and
the violence done to them, live in test_supervisor.py/test_failover.py.
"""

from dataclasses import dataclass

import pytest

from repro.fleet import FleetRouter, RouterConfig
from repro.service import ExtractionService, ServiceClient, ServiceConfig


@dataclass
class Fleet:
    services: "list[ExtractionService]"
    router: FleetRouter

    @property
    def port(self) -> int:
        return self.router.port


@pytest.fixture()
def fleet(tmp_path):
    store = str(tmp_path / "store")
    services = []
    specs = []
    for index in range(2):
        svc = ExtractionService(
            ServiceConfig(
                port=0,
                workers=2,
                queue_capacity=8,
                quiet=True,
                shard=f"shard{index}",
                result_cache_dir=store,
            )
        )
        svc.start()
        services.append(svc)
        specs.append((f"shard{index}", "127.0.0.1", svc.port))
    router = FleetRouter(
        specs, RouterConfig(port=0, quiet=True, health_interval=0.2)
    )
    router.start()
    yield Fleet(services=services, router=router)
    router.close()
    for svc in services:
        svc.close()


@pytest.fixture()
def fleet_client(fleet):
    return ServiceClient(port=fleet.port, timeout=30.0)
