"""The async front-end: API parity, coalescing, failover, admission."""

import threading

import pytest

from repro.cif import write as write_cif
from repro.fleet import FleetRouter, RouterConfig
from repro.service import (
    ExtractionService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.client import JobFailed, ServiceError
from repro.workloads import dram_column, inverter, poly_diff_mesh, transistor_array

INVERTER = write_cif(inverter())


def test_extract_round_trip_matches_solo_daemon(fleet, fleet_client):
    solo = ExtractionService(ServiceConfig(port=0, workers=1, quiet=True))
    solo.start()
    try:
        expected = ServiceClient(port=solo.port, timeout=30.0).extract(
            INVERTER, name="inv.cif"
        )["wirelist"]
    finally:
        solo.close()
    result = fleet_client.extract(INVERTER, name="inv.cif")
    assert result["wirelist"] == expected


def test_fleet_issues_its_own_idents(fleet_client):
    receipt = fleet_client.submit(INVERTER, name="inv.cif")
    assert receipt["job"].startswith("f")
    status = fleet_client.wait(receipt["job"], timeout=30.0)
    assert status["state"] == "done"
    assert status["job"] == receipt["job"]


def test_duplicate_burst_coalesces(fleet, fleet_client):
    cif = write_cif(transistor_array(8))
    submitters = 6
    barrier = threading.Barrier(submitters)
    idents, wirelists, errors = [], [], []
    lock = threading.Lock()

    def fire():
        client = ServiceClient(port=fleet.port, timeout=30.0)
        barrier.wait()
        try:
            receipt = client.submit(cif, name="burst.cif")
            ident = receipt["job"]
            if receipt["state"] != "done":
                client.wait(ident, timeout=30.0)
            wirelist = client.result(ident)["wirelist"]
            with lock:
                idents.append(ident)
                wirelists.append(wirelist)
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(repr(exc))

    threads = [threading.Thread(target=fire) for _ in range(submitters)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(wirelists) == submitters
    assert len(set(wirelists)) == 1
    counters = fleet_client.metrics()["fleet"]["counters"]
    assert counters.get("coalesced", 0) >= 1
    # All coalesced submitters share one fleet job ident.
    assert len(set(idents)) <= 2  # tolerance for a post-completion miss


def test_bad_submissions_refused_at_the_edge(fleet, fleet_client):
    for body in (
        {},
        {"cif": INVERTER, "path": "/x.cif"},
        {"cif": 7},
        {"cif": INVERTER, "bogus": 1},
        {"cif": INVERTER, "options": {"deck": "no-such-deck"}},
    ):
        with pytest.raises(ServiceError) as excinfo:
            fleet_client._request("POST", "/jobs", body, ok=(200, 202))
        assert excinfo.value.status == 400
    # Nothing reached any shard.
    for svc in fleet.services:
        assert svc.metrics_payload()["jobs"]["submitted"] == 0


def test_unknown_job_is_404(fleet_client):
    with pytest.raises(ServiceError) as excinfo:
        fleet_client.status("f000000000000")
    assert excinfo.value.status == 404


def test_cancel_before_completion(fleet):
    # A fleet over idle shards (no workers): jobs queue forever.
    idle = ExtractionService(
        ServiceConfig(port=0, workers=0, queue_capacity=4, quiet=True)
    )
    idle.start()
    router = FleetRouter(
        [("only", "127.0.0.1", idle.port)],
        RouterConfig(port=0, quiet=True, health_interval=5.0),
    )
    router.start()
    try:
        client = ServiceClient(port=router.port, timeout=30.0)
        receipt = client.submit(INVERTER, name="inv.cif")
        cancelled = client.cancel(receipt["job"])
        assert cancelled["state"] == "cancelled"
        assert cancelled["job"] == receipt["job"]
        with pytest.raises(JobFailed):
            client.result(receipt["job"])
    finally:
        router.close()
        for job in list(idle.store._jobs):
            idle.store.cancel(job)
        idle.close()


def test_submit_fails_over_to_surviving_shard(tmp_path):
    """One of two shards is already dead: every submission still lands."""
    alive = ExtractionService(ServiceConfig(port=0, workers=2, quiet=True))
    alive.start()
    dead = ExtractionService(ServiceConfig(port=0, workers=0, quiet=True))
    dead.start()
    router = FleetRouter(
        [
            ("shard0", "127.0.0.1", alive.port),
            ("shard1", "127.0.0.1", dead.port),
        ],
        RouterConfig(port=0, quiet=True, health_interval=0.2),
    )
    router.start()
    # Killed only now, so nothing (the router included) can rebind the
    # freed ephemeral port and answer health probes in its stead.
    dead.close()
    try:
        client = ServiceClient(port=router.port, timeout=30.0)
        # Enough distinct payloads that some hash onto the dead shard.
        for index in range(6):
            result = client.extract(
                write_cif(poly_diff_mesh(2 + index)),
                name=f"a{index}.cif",
            )
            assert "wirelist" in result
        health = client.health()
        states = {s["name"]: s["healthy"] for s in health["shards"]}
        assert states["shard0"] is True
        assert states["shard1"] is False
    finally:
        router.close()
        alive.close()


def test_draining_router_refuses_submissions(fleet, fleet_client):
    fleet.router.draining = True
    with pytest.raises(ServiceError) as excinfo:
        fleet_client.submit(INVERTER, name="inv.cif")
    assert excinfo.value.status == 503
    fleet.router.draining = False


def test_healthz_and_metrics_shapes(fleet, fleet_client):
    fleet_client.extract(INVERTER, name="inv.cif")
    health = fleet_client.health()
    assert health["ok"] is True
    assert health["role"] == "fleet-router"
    assert {s["name"] for s in health["shards"]} == {"shard0", "shard1"}

    metrics = fleet_client.metrics()
    assert metrics["fleet"]["counters"]["routed"] >= 1
    assert set(metrics["shards"]) == {"shard0", "shard1"}
    # The aggregate rolls up both shards' job counters.
    assert metrics["aggregate"]["jobs"]["completed"] >= 1
    # Shard identity flows through each shard's own metrics document.
    for name, payload in metrics["shards"].items():
        assert payload["shard"] == name


def test_result_served_from_router_after_completion(fleet, fleet_client):
    """Terminal results answer from the router's table, not the shard."""
    receipt = fleet_client.submit(INVERTER, name="inv.cif")
    fleet_client.wait(receipt["job"], timeout=30.0)
    first = fleet_client.result(receipt["job"])
    record = fleet.router.table.get(receipt["job"])
    assert record is not None and record.result is not None
    # Erase the job from every shard's store: if the second fetch still
    # answers, it was served from the router's own table.
    for svc in fleet.services:
        svc.store._jobs.pop(record.upstream, None)
    again = fleet_client.result(receipt["job"])
    assert again["wirelist"] == first["wirelist"]


def test_router_drain_is_clean_when_idle(tmp_path):
    svc = ExtractionService(ServiceConfig(port=0, workers=1, quiet=True))
    svc.start()
    router = FleetRouter(
        [("only", "127.0.0.1", svc.port)],
        RouterConfig(port=0, quiet=True, health_interval=5.0),
    )
    router.start()
    client = ServiceClient(port=router.port, timeout=30.0)
    client.extract(INVERTER, name="inv.cif")
    assert router.drain(grace=10.0) is True
    svc.close()


def test_cached_hit_submission_finalizes_cleanly(fleet, fleet_client):
    """A resubmission the shard answers from its result cache (200,
    state already done) must leave the router's job fully terminal:
    final payload set, result fetched, coalesce slot retired.  A job
    that turns terminal before its final payload exists answers
    concurrent polls with a 500 (the bug the fleet bench caught)."""
    cif = write_cif(dram_column(5))
    fleet_client.extract(cif, name="hit.cif")
    receipt = fleet_client.submit(cif, name="hit.cif")
    assert receipt["state"] == "done"
    record = fleet.router.table.get(receipt["job"])
    assert record is not None
    assert record.terminal
    assert record.final is not None
    assert record.result is not None
    # mark_terminal ran: the coalescing slot no longer points here.
    assert fleet.router.table._inflight.get(record.key) is not record
    # And the client can fetch the result straight away.
    assert "wirelist" in fleet_client.result(receipt["job"])


def test_shared_store_makes_results_visible_across_shards(
    fleet, fleet_client
):
    """Both shards share one artifact store: a repeat submission is a
    cache hit no matter which shard the ring picks."""
    cif = write_cif(dram_column(4))
    fleet_client.extract(cif, name="shared.cif")
    # Submit through each shard directly; at least the ring owner did
    # the work, and the other one must see it on disk.
    for svc in fleet.services:
        direct = ServiceClient(port=svc.port, timeout=30.0)
        receipt = direct.submit(cif, name="shared.cif")
        assert receipt["state"] == "done"
        assert receipt["cached"] is True
