"""The fleet bench harness itself: rows, invariants, report shape."""

from repro.bench.service import bench_fleet, check_fleet_report


def test_single_shard_sweep_passes_checks(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    report = bench_fleet(
        [1], clients=3, requests=2, workers=2, kill_mid_run=False
    )
    assert [row["shards"] for row in report["rows"]] == [1]
    row = report["rows"][0]
    assert row["load"]["completed"] == row["load"]["requests"] == 6
    assert row["killed_shard"] is None
    assert row["parity_ok"] is True
    assert row["coalesce_hits"] >= 1
    assert row["drained_clean"] is True
    assert check_fleet_report(report) == []


def test_check_flags_violations():
    report = {
        "rows": [
            {
                "shards": 2,
                "burst": {
                    "submitters": 4,
                    "completed": 3,
                    "errors": ["boom"],
                    "distinct_idents": 2,
                    "identical_results": False,
                    "matches_reference": False,
                },
                "load": {
                    "requests": 10,
                    "completed": 8,
                    "errors": ["x", "y"],
                },
                "killed_shard": "shard1",
                "parity_ok": False,
                "post_kill_parity_ok": True,
                "coalesce_hits": 0,
                "failovers": 0,
                "shards_down_seen": 0,
                "drained_clean": False,
            }
        ]
    }
    problems = check_fleet_report(report)
    joined = "\n".join(problems)
    assert "burst dropped" in joined
    assert "no coalesce hits" in joined
    assert "dropped" in joined
    assert "diverged" in joined
    assert "drain" in joined
