"""Router bookkeeping: breaker transitions, coalescing, retention."""

from repro.fleet import CircuitBreaker, FleetJobTable, ShardState


def make_table(**kwargs):
    return FleetJobTable(**kwargs)


def submission(i=0):
    return {"cif": f"layout-{i}", "options": {}}


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.open
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.open
        assert not breaker.allow()

    def test_success_closes_and_resets(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.open
        breaker.record_success()
        assert not breaker.open
        assert breaker.consecutive_failures == 0
        assert breaker.allow()

    def test_half_open_allows_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure()
        assert breaker.open
        # Cooldown of zero: immediately half-open.
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # a second concurrent probe is refused
        breaker.record_failure()  # probe failed: re-open
        assert breaker.open

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert not breaker.open
        assert breaker.allow()


class TestShardState:
    def test_update_address_bumps_generation_and_resets(self):
        shard = ShardState(name="s0", host="127.0.0.1", port=1234)
        shard.healthy = False
        for _ in range(3):
            shard.breaker.record_failure()
        assert not shard.available()
        shard.update_address("127.0.0.1", 4321)
        assert shard.generation == 1
        assert shard.port == 4321
        assert shard.available()

    def test_snapshot_shape(self):
        shard = ShardState(name="s0", host="127.0.0.1", port=1234)
        snap = shard.snapshot()
        assert snap["name"] == "s0"
        assert snap["address"] == "http://127.0.0.1:1234"
        assert snap["healthy"] is True
        assert "breaker" in snap


class TestFleetJobTable:
    def test_create_registers_for_coalescing(self):
        table = make_table()
        job = table.create(submission(), key="k1", digest="d1")
        assert job.ident.startswith("f")
        assert table.get(job.ident) is job
        joined = table.coalesce("k1")
        assert joined is job
        assert job.waiters == 2

    def test_terminal_jobs_do_not_coalesce(self):
        table = make_table()
        job = table.create(submission(), key="k1", digest="d1")
        table.mark_terminal(job, "done")
        assert table.coalesce("k1") is None
        fresh = table.create(submission(), key="k1", digest="d1")
        assert fresh is not job
        assert table.coalesce("k1") is fresh

    def test_mark_terminal_is_idempotent(self):
        table = make_table()
        job = table.create(submission(), key="k1", digest="d1")
        table.mark_terminal(job, "done")
        table.mark_terminal(job, "failed")
        assert job.state == "done"

    def test_retention_evicts_oldest_finished(self):
        table = make_table(retain=2)
        jobs = [
            table.create(submission(i), key=f"k{i}", digest=f"d{i}")
            for i in range(3)
        ]
        for job in jobs:
            table.mark_terminal(job, "done")
        assert table.get(jobs[0].ident) is None  # evicted
        assert table.get(jobs[1].ident) is jobs[1]
        assert table.get(jobs[2].ident) is jobs[2]

    def test_discard_forgets_everything(self):
        table = make_table()
        job = table.create(submission(), key="k1", digest="d1")
        table.discard(job)
        assert table.get(job.ident) is None
        assert table.coalesce("k1") is None

    def test_pending_on_filters_by_shard(self):
        table = make_table()
        shard_a = ShardState(name="a", host="h", port=1)
        shard_b = ShardState(name="b", host="h", port=2)
        one = table.create(submission(1), key="k1", digest="d1")
        two = table.create(submission(2), key="k2", digest="d2")
        one.shard = shard_a
        two.shard = shard_b
        assert table.pending_on(shard_a) == [one]
        table.mark_terminal(one, "done")
        assert table.pending_on(shard_a) == []
