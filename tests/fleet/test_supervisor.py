"""Real shard subprocesses: spawn, restart, rolling restart, drain."""

import pytest

from repro.cif import write as write_cif
from repro.fleet import FleetRouter, FleetSupervisor, RouterConfig
from repro.fleet.supervisor import ShardProcess, ShardSpawnError
from repro.service import ServiceClient
from repro.workloads import inverter

INVERTER = write_cif(inverter())


@pytest.fixture()
def supervised(tmp_path):
    supervisor = FleetSupervisor(
        2, workers=1, store_dir=str(tmp_path / "store"), prime_cache=8
    )
    specs = supervisor.start()
    router = FleetRouter(
        specs, RouterConfig(port=0, quiet=True, health_interval=0.25)
    )
    router.start()
    yield supervisor, router
    router.close()
    supervisor.close()


def test_spawn_reports_shard_identity(supervised):
    supervisor, router = supervised
    client = ServiceClient(port=router.port, timeout=30.0)
    metrics = client.metrics()
    assert set(metrics["shards"]) == {"shard0", "shard1"}
    for name, payload in metrics["shards"].items():
        assert payload["shard"] == name
    for snap in supervisor.snapshot():
        assert snap["alive"] is True


def test_extraction_through_subprocess_fleet(supervised):
    _, router = supervised
    client = ServiceClient(port=router.port, timeout=30.0)
    result = client.extract(INVERTER, name="inv.cif", wait_timeout=60.0)
    assert "wirelist" in result


def test_restart_shard_changes_port_same_name(supervised):
    supervisor, router = supervised
    old_port = supervisor.shards["shard0"].port
    host, new_port = supervisor.restart_shard("shard0")
    router.update_shard("shard0", host, new_port)
    assert new_port != 0
    assert supervisor.shards["shard0"].alive
    client = ServiceClient(port=router.port, timeout=30.0)
    result = client.extract(INVERTER, name="inv.cif", wait_timeout=60.0)
    assert "wirelist" in result
    shard0 = router.shards["shard0"]
    assert shard0.port == new_port
    assert shard0.generation == 1
    assert old_port != new_port or True  # ports may collide; name rules


def test_rolling_restart_keeps_serving(supervised):
    supervisor, router = supervised
    client = ServiceClient(port=router.port, timeout=30.0, retries=4)
    before = client.extract(INVERTER, name="inv.cif", wait_timeout=60.0)
    supervisor.rolling_restart(
        lambda name, host, port: router.update_shard(name, host, port)
    )
    for shard in supervisor.shards.values():
        assert shard.alive
    after = client.extract(INVERTER, name="inv.cif", wait_timeout=60.0)
    assert after["wirelist"] == before["wirelist"]
    # A full generation of replacements happened under the router.
    assert all(s.generation == 1 for s in router.shards.values())


def test_drain_exits_cleanly(tmp_path):
    supervisor = FleetSupervisor(2, workers=1)
    supervisor.start()
    assert supervisor.drain() is True
    for shard in supervisor.shards.values():
        assert not shard.alive


def test_killed_shard_reports_not_alive(tmp_path):
    supervisor = FleetSupervisor(2, workers=1)
    supervisor.start()
    try:
        supervisor.kill_shard("shard1")
        assert not supervisor.shards["shard1"].alive
        assert supervisor.shards["shard0"].alive
    finally:
        supervisor.close()


def test_spawn_failure_raises_with_stderr_tail(tmp_path):
    shard = ShardProcess("bad", extra_args=["--engine", "bogus"])
    with pytest.raises(ShardSpawnError):
        shard.spawn(timeout=20.0)
    assert not shard.alive
