"""The consistent-hash ring: determinism, balance, minimal disruption."""

import pytest

from repro.fleet import HashRing

NODES = ["shard0", "shard1", "shard2"]


def keys(n):
    return [f"digest-{i:04d}" for i in range(n)]


def test_route_is_deterministic_across_instances():
    a = HashRing(NODES)
    b = HashRing(list(NODES))
    for key in keys(200):
        assert a.route(key) == b.route(key)


def test_preference_lists_every_node_once_owner_first():
    ring = HashRing(NODES)
    for key in keys(50):
        order = ring.preference(key)
        assert sorted(order) == sorted(NODES)
        assert order[0] == ring.route(key)


def test_spread_is_roughly_balanced():
    ring = HashRing(NODES)
    counts = ring.spread(keys(3000))
    assert sum(counts.values()) == 3000
    for node in NODES:
        # 64 virtual points per node keeps imbalance well under 2x.
        assert 3000 // 6 < counts[node] < 3000 // 2 + 300


def test_removing_a_node_only_moves_its_own_keys():
    full = HashRing(NODES)
    reduced = HashRing(["shard0", "shard2"])
    for key in keys(500):
        owner = full.route(key)
        if owner != "shard1":
            # Keys owned by surviving shards must not move at all.
            assert reduced.route(key) == owner
        else:
            # Orphaned keys land on the full ring's next preference.
            fallback = [n for n in full.preference(key) if n != "shard1"]
            assert reduced.route(key) == fallback[0]


def test_single_node_ring_routes_everything_to_it():
    ring = HashRing(["only"])
    assert {ring.route(k) for k in keys(20)} == {"only"}


def test_constructor_validation():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])
    with pytest.raises(ValueError):
        HashRing(["a"], replicas=0)
