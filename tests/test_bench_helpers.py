"""The benchmark harness utilities."""

import gc
import tracemalloc

from repro.bench import (
    SuiteRow,
    Timed,
    best_of,
    format_table,
    mmss,
    ratio_column,
    run_suite,
    timed,
)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 10], ["b", 2000]],
            title="demo",
        )
        lines = text.splitlines()
        assert "demo" in lines[1]
        assert "name" in lines[2]
        assert set(lines[3]) <= {"-", " "}
        # Numeric cells right-align to the column width.
        assert lines[-1].endswith("2000")

    def test_format_table_floats(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_mmss(self):
        assert mmss(0) == "0:00"
        assert mmss(65) == "1:05"
        assert mmss(26 * 60 + 36) == "26:36"
        assert mmss(0.4) == "0:00"

    def test_ratio_column(self):
        assert ratio_column([2.0, 4.0, 7.0]) == ["1.0x", "2.0x", "3.5x"]
        assert ratio_column([]) == []
        assert ratio_column([0.0, 1.0]) == ["-", "-"]


class TestHarness:
    def test_timed(self):
        run = timed(lambda x: x * 2, 21)
        assert isinstance(run, Timed)
        assert run.result == 42
        assert run.seconds >= 0

    def test_best_of(self):
        calls = []
        run = best_of(3, lambda: calls.append(1) or len(calls))
        assert len(calls) == 3
        assert run.result == 3

    def test_timed_track_alloc_stops_its_own_tracing(self):
        # Regression: an early version left tracemalloc running after
        # the call, slowing every later untracked timing in the process.
        assert not tracemalloc.is_tracing()
        run = timed(lambda: [0] * 1024, track_alloc=True)
        assert not tracemalloc.is_tracing()
        assert run.peak_alloc is not None and run.peak_alloc > 0

    def test_timed_track_alloc_leaves_callers_tracing_alone(self):
        tracemalloc.start()
        try:
            run = timed(lambda: [0] * 1024, track_alloc=True)
            # The caller started tracing, so timed must not stop it.
            assert tracemalloc.is_tracing()
            assert run.peak_alloc is not None
        finally:
            tracemalloc.stop()

    def test_timed_restores_gc_state(self):
        assert gc.isenabled()
        timed(lambda: None)
        assert gc.isenabled()
        gc.disable()
        try:
            timed(lambda: None)
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestSuiteRunner:
    def test_rows_have_measurements(self):
        rows = run_suite(scale=0.02, names=("cherry",))
        (row,) = rows
        assert isinstance(row, SuiteRow)
        assert row.devices > 0
        assert row.boxes > row.devices
        assert row.ace_seconds > 0
        assert row.devices_per_second > 0
        assert row.boxes_per_second > 0

    def test_baseline_limits_respected(self):
        rows = run_suite(scale=0.02, names=("cherry",), with_baselines=True)
        (row,) = rows
        assert row.raster_seconds is not None
        assert row.polyflat_seconds is not None

    def test_hext_column(self):
        rows = run_suite(scale=0.02, names=("testram",), with_hext=True)
        (row,) = rows
        assert row.hext_stats is not None
        assert row.hext_devices == row.devices
