"""Dynamic storage: the extracted DRAM column under charge retention."""

import pytest

from repro import extract
from repro.sim import HIGH, LOW, UNKNOWN, SwitchSimulator
from repro.workloads.memory import dram_column


@pytest.fixture()
def column():
    return extract(dram_column(4))


class TestExtraction:
    def test_one_device_per_bit(self, column):
        assert len(column.devices) == 4
        assert all(d.kind == "nEnh" for d in column.devices)

    def test_nets(self, column):
        names = {n for net in column.nets for n in net.names}
        assert {"BL", "WL0", "WL3", "S0", "S3"} <= names

    def test_storage_isolated_from_bitline(self, column):
        bl = column.net_by_name("BL").index
        s0 = column.net_by_name("S0").index
        assert bl != s0


class TestDynamicStorage:
    def _sim(self, column):
        sim = SwitchSimulator(column, charge_retention=True)
        for i in range(4):
            sim.set_input(f"WL{i}", LOW)
        return sim

    def test_write_and_retain(self, column):
        sim = self._sim(column)
        # Write 1 into bit 0.
        sim.set_input("BL", HIGH)
        sim.set_input("WL0", HIGH)
        assert sim.simulate().of("S0") == HIGH
        # Close the wordline; the node floats but keeps its charge.
        sim.set_input("WL0", LOW)
        sim.set_input("BL", LOW)
        result = sim.simulate()
        assert result.of("S0") == HIGH
        assert result.of("BL") == LOW

    def test_bits_independent(self, column):
        sim = self._sim(column)
        # Write 1 to bit 0, then 0 to bit 2.
        sim.set_input("BL", HIGH)
        sim.set_input("WL0", HIGH)
        sim.simulate()
        sim.set_input("WL0", LOW)
        sim.set_input("BL", LOW)
        sim.set_input("WL2", HIGH)
        sim.simulate()
        sim.set_input("WL2", LOW)
        result = sim.simulate()
        assert result.of("S0") == HIGH
        assert result.of("S2") == LOW

    def test_overwrite(self, column):
        sim = self._sim(column)
        sim.set_input("BL", HIGH)
        sim.set_input("WL1", HIGH)
        sim.simulate()
        sim.set_input("BL", LOW)  # wordline still open: rewrite
        assert sim.simulate().of("S1") == LOW
        sim.set_input("WL1", LOW)
        assert sim.simulate().of("S1") == LOW

    def test_unwritten_bits_unknown(self, column):
        sim = self._sim(column)
        result = sim.simulate()
        assert result.of("S3") == UNKNOWN

    def test_without_retention_storage_floats(self, column):
        sim = SwitchSimulator(column, charge_retention=False)
        for i in range(4):
            sim.set_input(f"WL{i}", LOW)
        sim.set_input("BL", HIGH)
        sim.set_input("WL0", HIGH)
        assert sim.simulate().of("S0") == HIGH
        sim.set_input("WL0", LOW)
        assert sim.simulate().of("S0") == UNKNOWN
