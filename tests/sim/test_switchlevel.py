"""Switch-level simulator: gates, chains, and pathological circuits."""

import pytest

from repro import extract
from repro.sim import HIGH, LOW, UNKNOWN, SwitchSimulator
from repro.wirelist import FlatCircuit, FlatDevice
from repro.workloads import inverter, inverter_rows, nand2


def _flat(devices, names):
    flat = FlatCircuit()
    flat.devices = [FlatDevice(*d) for d in devices]
    flat.net_names = {k: list(v) for k, v in names.items()}
    flat.net_count = 10
    return flat


class TestInverter:
    @pytest.fixture(scope="class")
    def sim(self):
        return SwitchSimulator(extract(inverter()))

    def test_truth_table(self, sim):
        sim.set_input("IN", LOW)
        assert sim.simulate().of("OUT") == HIGH
        sim.set_input("IN", HIGH)
        assert sim.simulate().of("OUT") == LOW

    def test_unknown_propagates(self, sim):
        sim.set_input("IN", UNKNOWN)
        assert sim.simulate().of("OUT") == UNKNOWN

    def test_rails_fixed(self, sim):
        sim.set_input("IN", LOW)
        result = sim.simulate()
        assert result.of("VDD") == HIGH
        assert result.of("GND") == LOW

    def test_floating_input_gives_unknown(self, sim):
        sim.release_input("IN")
        result = sim.simulate()
        assert result.of("OUT") == UNKNOWN

    def test_bad_value_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.set_input("IN", 2)

    def test_unknown_net_rejected(self, sim):
        with pytest.raises(KeyError):
            sim.set_input("NOPE", LOW)


class TestNand:
    @pytest.fixture(scope="class")
    def sim(self):
        return SwitchSimulator(extract(nand2()))

    @pytest.mark.parametrize(
        "a,b,out", [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    )
    def test_truth_table(self, sim, a, b, out):
        sim.set_input("A", a)
        sim.set_input("B", b)
        assert sim.simulate().of("OUT") == out

    def test_series_x(self, sim):
        # A=0 forces OUT=1 regardless of B.
        sim.set_input("A", LOW)
        sim.set_input("B", UNKNOWN)
        assert sim.simulate().of("OUT") == HIGH
        # A=1, B=X leaves OUT unknown.
        sim.set_input("A", HIGH)
        assert sim.simulate().of("OUT") == UNKNOWN


class TestChains:
    @pytest.mark.parametrize("stages", [2, 3, 4, 5])
    def test_parity(self, stages):
        sim = SwitchSimulator(extract(inverter_rows(1, stages)))
        for value in (LOW, HIGH):
            sim.set_input("IN0", value)
            expected = value if stages % 2 == 0 else 1 - value
            result = sim.simulate()
            assert result.settled
            assert result.of("OUT0") == expected

    def test_settling_takes_stages(self):
        sim = SwitchSimulator(extract(inverter_rows(1, 6)))
        sim.set_input("IN0", LOW)
        result = sim.simulate()
        assert result.settled
        assert result.iterations >= 3  # values ripple stage by stage


class TestFlatNetlists:
    def test_pass_transistor(self):
        # Input -> pass gate -> output; gate controls transparency.
        flat = _flat(
            [("nEnh", 2, 0, 1)],
            {0: ["IN"], 1: ["OUT"], 2: ["EN"]},
        )
        sim = SwitchSimulator(flat)
        sim.set_input("IN", HIGH)
        sim.set_input("EN", HIGH)
        assert sim.simulate().of("OUT") == HIGH
        sim.set_input("EN", LOW)
        assert sim.simulate().of("OUT") == UNKNOWN  # isolated, no charge model

    def test_driven_conflict_is_unknown(self):
        flat = _flat(
            [("nEnh", 2, 0, 1)],
            {0: ["A"], 1: ["B"], 2: ["EN"]},
        )
        sim = SwitchSimulator(flat)
        sim.set_input("A", HIGH)
        sim.set_input("B", LOW)
        sim.set_input("EN", HIGH)
        result = sim.simulate()
        assert result.of("A") == UNKNOWN
        assert result.of("B") == UNKNOWN

    def test_ratioed_pulldown_beats_load(self):
        # Classic inverter from a netlist: depletion load + pulldown.
        flat = _flat(
            [
                ("nDep", 1, 0, 1),  # gate=OUT source=VDD drain=OUT
                ("nEnh", 2, 1, 3),
            ],
            {0: ["VDD"], 1: ["OUT"], 2: ["IN"], 3: ["GND"]},
        )
        sim = SwitchSimulator(flat)
        sim.set_input("IN", HIGH)
        assert sim.simulate().of("OUT") == LOW  # driven 0 beats weak 1

    def test_ring_oscillator_reports_unstable(self):
        # Three inverters in a loop: no stable state.
        devices = []
        for i in range(3):
            inp = 2 * i + 1
            out = (2 * ((i + 1) % 3)) + 1
            devices.append(("nDep", out, 0, out))
            devices.append(("nEnh", inp, out, 9))
        flat = _flat(devices, {0: ["VDD"], 9: ["GND"], 1: ["N1"]})
        sim = SwitchSimulator(flat)
        result = sim.simulate()
        assert not result.settled or result.of("N1") == UNKNOWN
        assert result.of("N1") == UNKNOWN

    def test_latched_pair_is_stable_with_x(self):
        # Cross-coupled inverters with no inputs: both states possible,
        # the simulator must answer X rather than pick one.
        devices = [
            ("nDep", 1, 0, 1),
            ("nEnh", 2, 1, 9),
            ("nDep", 2, 0, 2),
            ("nEnh", 1, 2, 9),
        ]
        flat = _flat(devices, {0: ["VDD"], 9: ["GND"], 1: ["Q"], 2: ["QB"]})
        sim = SwitchSimulator(flat)
        result = sim.simulate()
        assert result.of("Q") == UNKNOWN
        assert result.of("QB") == UNKNOWN
