"""Technology parametrization: layers and custom processes."""

import pytest

from repro import extract
from repro.cif import Layout
from repro.geometry import Box
from repro.tech import (
    ALL_LAYERS,
    DIFFUSION,
    GLASS,
    METAL,
    NMOS,
    Layer,
    Technology,
    is_known_layer,
    layer_by_name,
)


class TestLayers:
    def test_lookup(self):
        assert layer_by_name("ND") is DIFFUSION
        assert layer_by_name("NM") is METAL

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            layer_by_name("XX")

    def test_is_known(self):
        assert is_known_layer("NP")
        assert not is_known_layer("CMF")

    def test_conducting_flags(self):
        conducting = {l.cif_name for l in ALL_LAYERS if l.conducting}
        assert conducting == {"ND", "NP", "NM"}


class TestTechnology:
    def test_default_nmos(self):
        tech = NMOS()
        assert tech.lambda_ == 250
        assert tech.device_name(False) == "nEnh"
        assert tech.device_name(True) == "nDep"

    def test_all_layers_unique(self):
        tech = NMOS()
        layers = tech.all_layers()
        assert len(layers) == len(set(layers))
        assert GLASS in layers

    def test_relevance(self):
        tech = NMOS()
        assert tech.is_relevant(METAL)
        assert not tech.is_relevant(GLASS)

    def test_custom_layer_names_extract(self):
        # A renamed process: the extractor must follow the technology,
        # not hard-coded CIF names.
        custom = Technology(
            name="custom",
            conducting_layers=(
                Layer("M1", "metal", True),
                Layer("PO", "poly", True),
                Layer("DF", "diffusion", True),
            ),
            channel_layers=(
                Layer("DF", "diffusion", True),
                Layer("PO", "poly", True),
            ),
            channel_blocker=Layer("BC", "buried", False),
            depletion_marker=Layer("IM", "implant", False),
            contact_layer=Layer("CO", "contact", False),
            buried_layer=Layer("BC", "buried", False),
            ignored_layers=(Layer("OV", "overglass", False),),
        )
        layout = Layout()
        layout.top.add_box("DF", Box(10, 0, 14, 30))
        layout.top.add_box("PO", Box(0, 10, 24, 14))
        layout.top.add_box("IM", Box(8, 8, 16, 16))
        circuit = extract(layout, custom)
        (device,) = circuit.devices
        assert device.kind == "nDep"
        assert len(circuit.nets) == 3

    def test_custom_device_names(self):
        custom = Technology(
            device_names={False: "NFET", True: "NLOAD"}
        )
        layout = Layout()
        layout.top.add_box("ND", Box(10, 0, 14, 30))
        layout.top.add_box("NP", Box(0, 10, 24, 14))
        circuit = extract(layout, custom)
        assert circuit.devices[0].kind == "NFET"
