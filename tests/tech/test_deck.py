"""The deck compiler's static validation pass.

One test per validation rule id, each planting exactly the defect the
rule exists to catch, plus the positive pins: both shipped decks
validate clean, compile, and round-trip through their JSON form.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.tech import (
    CMOS,
    DECK_RULE_HELP,
    NMOS,
    DeckError,
    cmos_deck,
    compile_deck,
    deck_by_name,
    deck_from_dict,
    deck_to_dict,
    load_deck_file,
    nmos_deck,
    validate_deck,
)
from repro.tech.deck import (
    DeviceTypeRule,
    DrcDeck,
    ErcDeck,
    LayerSpec,
)

DECKS_DIR = Path(__file__).parents[2] / "src" / "repro" / "tech" / "decks"


def rules_of(deck) -> set:
    """The distinct validation rule ids a deck trips."""
    return set(validate_deck(deck).rule_ids())


class TestShippedDecks:
    @pytest.mark.parametrize("factory", [nmos_deck, cmos_deck])
    def test_validates_clean(self, factory):
        report = validate_deck(factory())
        assert report.diagnostics == []

    @pytest.mark.parametrize("factory", [nmos_deck, cmos_deck])
    def test_round_trips_through_dict(self, factory):
        deck = factory()
        assert deck_from_dict(deck_to_dict(deck)) == deck

    @pytest.mark.parametrize("name", ["nmos", "cmos"])
    def test_json_file_pins_builtin(self, name):
        """The shipped deck file IS the builtin deck, field for field."""
        deck = load_deck_file(str(DECKS_DIR / f"{name}.json"))
        assert deck == deck_by_name(name)

    def test_compiled_nmos_matches_legacy_constructor(self):
        assert compile_deck(nmos_deck()) == NMOS()

    def test_compiled_cmos_device_names(self):
        tech = CMOS()
        assert tech.device_name(False) == "pEnh"
        assert tech.device_name(True) == "nEnh"


class TestValidationRules:
    """Each planted defect trips its rule id (and a malformed deck
    never compiles)."""

    def test_duplicate_layer(self):
        deck = nmos_deck()
        deck = dataclasses.replace(deck, layers=(*deck.layers, deck.layers[0]))
        assert "deck.duplicate-layer" in rules_of(deck)

    def test_reserved_layer_name(self):
        deck = nmos_deck()
        bogus = LayerSpec("--none--", "reserved", conducting=False)
        deck = dataclasses.replace(deck, layers=(*deck.layers, bogus))
        assert "deck.duplicate-layer" in rules_of(deck)

    def test_unknown_layer(self):
        deck = nmos_deck()
        deck = dataclasses.replace(deck, ignored=("ZZ",))
        assert "deck.unknown-layer" in rules_of(deck)

    def test_nonconducting_device_layer(self):
        deck = nmos_deck()
        contact = dataclasses.replace(
            deck.contact, connects=(*deck.contact.connects, "NI")
        )
        deck = dataclasses.replace(deck, contact=contact)
        assert "deck.nonconducting-device" in rules_of(deck)

    def test_conducting_marker(self):
        deck = nmos_deck()
        types = tuple(
            dataclasses.replace(r, marker="NM") if r.marker else r
            for r in deck.device_types
        )
        deck = dataclasses.replace(deck, device_types=types)
        assert "deck.conducting-marker" in rules_of(deck)

    def test_undeclared_rule_layer(self):
        deck = nmos_deck()
        drc = dataclasses.replace(
            deck.drc, min_width={**deck.drc.min_width, "QQ": 2}
        )
        deck = dataclasses.replace(deck, drc=drc)
        assert "deck.undeclared-rule-layer" in rules_of(deck)

    def test_duplicate_device(self):
        deck = nmos_deck()
        clone = DeviceTypeRule("nDep", marker="NG", depletion=True)
        deck = dataclasses.replace(
            deck, device_types=(*deck.device_types, clone)
        )
        assert "deck.duplicate-device" in rules_of(deck)

    def test_bad_polarity(self):
        deck = nmos_deck()
        types = tuple(
            dataclasses.replace(r, polarity="x") for r in deck.device_types
        )
        deck = dataclasses.replace(deck, device_types=types)
        assert "deck.duplicate-device" in rules_of(deck)

    def test_no_default_device(self):
        deck = nmos_deck()
        marked = tuple(r for r in deck.device_types if r.marker is not None)
        deck = dataclasses.replace(deck, device_types=marked)
        assert "deck.no-default-device" in rules_of(deck)

    def test_bad_channel_same_layer(self):
        deck = nmos_deck()
        channel = dataclasses.replace(deck.channel, gate="ND")
        deck = dataclasses.replace(deck, channel=channel)
        assert "deck.bad-channel" in rules_of(deck)

    def test_bad_channel_blocker_without_buried(self):
        deck = nmos_deck()
        deck = dataclasses.replace(deck, buried=None)
        assert "deck.bad-channel" in rules_of(deck)

    def test_rule_collision(self):
        deck = nmos_deck()
        drc = dataclasses.replace(
            deck.drc, rules=(*deck.drc.rules, "drc.width")
        )
        deck = dataclasses.replace(deck, drc=drc)
        assert "deck.rule-collision" in rules_of(deck)

    def test_uncheckable_rule_unknown_id(self):
        deck = nmos_deck()
        drc = dataclasses.replace(
            deck.drc,
            rules=(*deck.drc.rules, "drc.antenna"),
            help={**deck.drc.help, "drc.antenna": "charge collection"},
        )
        deck = dataclasses.replace(deck, drc=drc)
        assert "deck.uncheckable-rule" in rules_of(deck)

    def test_uncheckable_rule_missing_marker(self):
        deck = cmos_deck()
        types = tuple(
            r for r in deck.device_types if r.marker is None
        )
        deck = dataclasses.replace(deck, device_types=types)
        assert "deck.uncheckable-rule" in rules_of(deck)

    def test_missing_help(self):
        deck = nmos_deck()
        drc = dataclasses.replace(
            deck.drc, rules=(*deck.drc.rules, "drc.antenna")
        )
        deck = dataclasses.replace(deck, drc=drc)
        assert "deck.missing-help" in rules_of(deck)

    def test_missing_message(self):
        deck = nmos_deck()
        messages = dict(deck.drc.messages)
        del messages["gate-extension"]
        drc = dataclasses.replace(deck.drc, messages=messages)
        deck = dataclasses.replace(deck, drc=drc)
        assert "deck.missing-message" in rules_of(deck)

    def test_bad_erc_style(self):
        deck = nmos_deck()
        deck = dataclasses.replace(
            deck, erc=dataclasses.replace(deck.erc, style="magic")
        )
        assert "deck.bad-erc" in rules_of(deck)

    def test_bad_erc_ratio(self):
        deck = nmos_deck()
        deck = dataclasses.replace(
            deck, erc=dataclasses.replace(deck.erc, min_ratio=0.0)
        )
        assert "deck.bad-erc" in rules_of(deck)

    def test_bad_erc_empty_rails(self):
        deck = nmos_deck()
        deck = dataclasses.replace(
            deck, erc=dataclasses.replace(deck.erc, vdd_names=())
        )
        assert "deck.bad-erc" in rules_of(deck)

    def test_every_rule_id_is_documented(self):
        """No validator finding may carry an id outside the catalog."""
        planted = [
            dataclasses.replace(
                nmos_deck(), erc=ErcDeck(style="nope", min_ratio=-1)
            ),
            dataclasses.replace(nmos_deck(), ignored=("ZZ",)),
            dataclasses.replace(nmos_deck(), drc=DrcDeck(rules=("x",))),
        ]
        for deck in planted:
            assert rules_of(deck) <= set(DECK_RULE_HELP)

    def test_malformed_deck_never_compiles(self):
        deck = dataclasses.replace(nmos_deck(), ignored=("ZZ",))
        with pytest.raises(DeckError) as info:
            compile_deck(deck)
        assert info.value.report is not None
        assert "deck.unknown-layer" in info.value.report.rule_ids()


class TestDeckFiles:
    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(DeckError):
            load_deck_file(str(path))

    def test_load_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(DeckError):
            load_deck_file(str(path))

    def test_unknown_builtin_name(self):
        with pytest.raises(KeyError):
            deck_by_name("bipolar")
