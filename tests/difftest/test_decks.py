"""Deck-aware fuzzing: retargeting, oracle gating, CMOS agreement."""

import pytest

from repro.cif.writer import write as write_cif
from repro.core import extract
from repro.difftest import generate_layout, run_difftest
from repro.difftest.driver import _deck_capable
from repro.difftest.generator import (
    CANONICAL_LAYERS,
    deck_layer_map,
    remap_layout,
    retarget_case,
)
from repro.difftest.oracles import ORACLES, select_oracles
from repro.tech import CMOS, NMOS

TECH = NMOS()
CMOS_TECH = CMOS()


class TestRetargeting:
    def test_nmos_retarget_is_identity(self):
        case = generate_layout(7, TECH.lambda_)
        assert retarget_case(case, TECH) is case

    def test_cmos_retarget_moves_every_layer(self):
        case = generate_layout(7, TECH.lambda_)
        retargeted = retarget_case(case, CMOS_TECH)
        assert retargeted is not case
        text = write_cif(retargeted.layout)
        for layer in CANONICAL_LAYERS:
            assert f"L {layer};" not in text

    def test_cmos_layer_map_covers_roles(self):
        mapping = deck_layer_map(CMOS_TECH)
        assert mapping["NM"] == "CM"
        assert mapping["NP"] == "CP"
        assert mapping["ND"] == "CD"
        assert mapping["NC"] == "CC"
        assert mapping["NI"] == "CW"
        assert mapping["NB"] is None  # CMOS has no buried windows

    def test_remapped_layout_extracts_under_cmos(self):
        case = generate_layout(11, TECH.lambda_)
        remapped = remap_layout(case.layout, deck_layer_map(CMOS_TECH))
        circuit = extract(remapped, CMOS_TECH)
        kinds = {device.kind for device in circuit.devices}
        assert kinds <= {"pEnh", "nEnh"}


class TestDeckGating:
    def test_all_oracles_support_cmos(self):
        capable, skips = _deck_capable(
            select_oracles(tuple(ORACLES)), CMOS_TECH
        )
        assert skips == 0
        assert len(capable) == len(ORACLES)

    def test_unknown_deck_gates_named_oracles(self):
        class FakeDeck:
            name = "sos"

        class FakeTech:
            deck = FakeDeck()

        capable, skips = _deck_capable(
            select_oracles(tuple(ORACLES)), FakeTech()
        )
        assert skips == sum(1 for o in ORACLES.values() if o.decks)
        assert {o.name for o in capable} == {
            name for name, o in ORACLES.items() if o.decks is None
        }

    def test_gating_below_two_oracles_raises(self):
        class FakeDeck:
            name = "sos"

        class FakeTech:
            deck = FakeDeck()

        with pytest.raises(ValueError, match="capable oracle"):
            _deck_capable(select_oracles(("raster", "polyflat")), FakeTech())


class TestCmosRuns:
    def test_oracles_agree_under_cmos(self, tmp_path):
        result = run_difftest(
            iterations=10,
            seed=313,
            oracle_names=("ace", "ace-stream", "raster", "polyflat"),
            tech=CMOS_TECH,
            corpus_dir=str(tmp_path / "corpus"),
        )
        assert result.ok, [f.mismatches[0].headline() for f in result.failures]
        assert result.iterations == 10
        assert result.deck_skips == 0
