"""The ``service`` oracle: daemon round-trips agree with in-process hext."""

from repro.difftest.oracles import ORACLES
from repro.tech import NMOS
from repro.wirelist import compare_netlists
from repro.workloads import inverter, transistor_array


def test_service_oracle_is_registered_with_exact_capabilities():
    oracle = ORACLES["service"]
    assert oracle.grid_exact and oracle.sizes_exact


def test_service_oracle_matches_reference():
    # The runner itself enforces byte-for-byte wirelist parity with the
    # in-process hext-par extraction (ServiceParityError otherwise), so
    # a clean return plus netlist equivalence is the full check.
    tech = NMOS()
    service = ORACLES["service"].run(inverter(), tech)
    reference = ORACLES["hext-par"].run(inverter(), tech)
    report = compare_netlists(reference.flat, service.flat)
    assert report.equivalent, report.reason
    assert service.sizes == reference.sizes


def test_service_oracle_reuses_one_daemon_across_layouts():
    tech = NMOS()
    ORACLES["service"].run(transistor_array(4), tech)
    # Second layout through the same module-level daemon (warm memo and
    # result cache active) must still pass the parity assertion inside.
    ORACLES["service"].run(transistor_array(4), tech)
