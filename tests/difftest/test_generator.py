"""The seeded layout fuzzer: determinism, validity, and coverage."""

from repro.cif import parse
from repro.cif.writer import write as write_cif
from repro.core import extract
from repro.difftest import (
    DEFAULT_PROFILE,
    FAULT_HUNT_PROFILE,
    generate_layout,
    iteration_seed,
)
from repro.tech import NMOS

TECH = NMOS()


def test_same_seed_same_layout():
    a = generate_layout(1234, TECH.lambda_)
    b = generate_layout(1234, TECH.lambda_)
    assert write_cif(a.layout) == write_cif(b.layout)
    assert a.grid_aligned == b.grid_aligned
    assert a.description == b.description


def test_different_seeds_differ():
    texts = {write_cif(generate_layout(seed, TECH.lambda_).layout) for seed in range(12)}
    assert len(texts) > 8  # collisions allowed, sameness is a bug


def test_layouts_validate_and_extract():
    for seed in range(20):
        case = generate_layout(seed, TECH.lambda_)
        case.layout.validate()
        extract(case.layout, TECH)  # must not raise


def test_layouts_roundtrip_through_cif():
    for seed in (3, 7, 11):
        case = generate_layout(seed, TECH.lambda_)
        text = write_cif(case.layout)
        assert write_cif(parse(text)) == text


def test_grid_aligned_flag_matches_coordinates():
    lam = TECH.lambda_
    for seed in range(40):
        case = generate_layout(seed, lam)
        aligned = all(
            coord % lam == 0
            for _, box in case.layout.top.boxes
            for coord in (box.xmin, box.ymin, box.xmax, box.ymax)
        )
        if case.grid_aligned:
            assert aligned, f"seed {seed} flagged aligned but is not"
        else:
            assert not aligned, f"seed {seed} flagged off-grid but aligned"


def test_coverage_across_seeds():
    """The fuzzer must actually produce the advertised variety."""
    notes = " ".join(
        generate_layout(seed, TECH.lambda_).description for seed in range(60)
    )
    for needed in ("transistor", "load", "contact", "abut", "corner",
                   "strap", "offgrid", "label", "cells="):
        assert needed in notes, f"no {needed!r} case in 60 seeds"
    devices = sum(
        len(extract(generate_layout(seed, TECH.lambda_).layout, TECH).devices)
        for seed in range(10)
    )
    assert devices > 0


def test_fault_hunt_profile_is_buried_heavy():
    with_buried = sum(
        "load" in generate_layout(s, TECH.lambda_, FAULT_HUNT_PROFILE).description
        for s in range(20)
    )
    assert with_buried >= 15


def test_iteration_seed_is_stable_and_spread():
    assert iteration_seed(7, 0) == iteration_seed(7, 0)
    seeds = {iteration_seed(7, i) for i in range(500)}
    assert len(seeds) == 500
    assert all(s >= 0 for s in seeds)
    assert DEFAULT_PROFILE.max_motifs >= DEFAULT_PROFILE.min_motifs
