"""The differential driver end to end, including the fault self-test."""

import os

import pytest

from repro.cif import parse_file
from repro.difftest import (
    KNOWN_FAULTS,
    check_layout,
    generate_layout,
    inject_fault,
    run_difftest,
)
from repro.difftest.cli import main as difftest_main
from repro.tech import NMOS

TECH = NMOS()

#: The in-process oracle subset used by fast tests (hext-par spawns a
#: worker pool per call; its equivalence has its own suite under
#: tests/parallel/).
FAST = ("ace", "hext", "raster", "polyflat")


class TestCleanRuns:
    def test_oracles_agree_on_seeded_layouts(self, tmp_path):
        result = run_difftest(
            iterations=15,
            seed=101,
            oracle_names=FAST,
            tech=TECH,
            corpus_dir=str(tmp_path),
        )
        assert result.ok, [
            mismatch.headline()
            for failure in result.failures
            for mismatch in failure.mismatches
        ]
        assert result.iterations == 15
        assert not os.listdir(tmp_path)

    def test_parallel_oracle_agrees(self, tmp_path):
        result = run_difftest(
            iterations=3,
            seed=55,
            oracle_names=("ace", "hext-par"),
            tech=TECH,
            corpus_dir=str(tmp_path),
        )
        assert result.ok

    def test_raster_skipped_off_grid(self):
        # Seeds are cheap: scan until an off-grid case shows up and make
        # sure the run records the skip instead of blaming the raster.
        result = run_difftest(
            iterations=40, seed=0, oracle_names=FAST, tech=TECH
        )
        assert result.ok
        assert result.raster_skips > 0


class TestFaultSelfTest:
    @pytest.mark.parametrize("fault", sorted(KNOWN_FAULTS))
    def test_fault_is_caught_and_shrunk(self, fault, tmp_path):
        corpus = str(tmp_path / "corpus")
        result = run_difftest(
            iterations=50,
            seed=7,
            oracle_names=("ace", "polyflat"),
            tech=TECH,
            corpus_dir=corpus,
            fault=fault,
            max_failures=1,
        )
        assert result.failures, f"fault {fault} went undetected"
        failure = result.failures[0]
        assert failure.shrunk is not None
        assert failure.shrunk.after <= 10
        assert failure.shrunk.after <= failure.shrunk.before

        # The persisted repro must replay: parsed back from CIF it still
        # splits the oracles under the fault, and agrees without it.
        repro = os.path.join(corpus, failure.entry_name(), "repro.cif")
        layout = parse_file(repro)
        with inject_fault(fault):
            assert check_layout(
                layout, oracle_names=("ace", "polyflat"), tech=TECH
            )
        assert not check_layout(
            layout, oracle_names=("ace", "polyflat"), tech=TECH
        )
        report = os.path.join(corpus, failure.entry_name(), "REPORT.md")
        with open(report) as handle:
            text = handle.read()
        assert fault in text and "Reproduce" in text

    def test_faults_do_not_leak(self):
        from repro.core import scanline

        assert scanline.FAULTS == frozenset()

    @pytest.mark.slow
    def test_acceptance_200_iterations_both_ways(self, tmp_path):
        """The ISSUE acceptance criterion, verbatim."""
        for fault in sorted(KNOWN_FAULTS):
            result = run_difftest(
                iterations=200,
                seed=7,
                oracle_names=FAST,
                tech=TECH,
                corpus_dir=str(tmp_path / fault),
                fault=fault,
                max_failures=1,
            )
            assert result.failures and result.failures[0].shrunk.after <= 10
        clean = run_difftest(
            iterations=200, seed=7, oracle_names=FAST, tech=TECH
        )
        assert clean.ok


class TestCli:
    def test_list_oracles(self, capsys):
        assert difftest_main(["--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in FAST + ("hext-par",):
            assert name in out

    def test_clean_run_exits_zero(self, tmp_path):
        rc = difftest_main(
            [
                "-n", "5", "--seed", "33", "-q",
                "--oracles", "ace,polyflat",
                "--corpus", str(tmp_path),
            ]
        )
        assert rc == 0

    def test_self_test_exits_zero_on_catch(self, tmp_path):
        rc = difftest_main(
            [
                "-n", "50", "--seed", "7", "-q",
                "--oracles", "ace,polyflat",
                "--inject-fault", "buried-skip",
                "--max-failures", "1",
                "--corpus", str(tmp_path),
            ]
        )
        assert rc == 0
        entries = os.listdir(tmp_path)
        assert entries, "self-test failure was not persisted"

    def test_unknown_oracle_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_difftest(
                iterations=1, oracle_names=("ace", "nope"), tech=TECH
            )


def test_generated_devices_exist_somewhere():
    # The harness is only as good as its inputs: over a seed range the
    # generator must make real transistors, not just wiring.
    from repro.core import extract

    total = sum(
        len(extract(generate_layout(seed, TECH.lambda_).layout, TECH).devices)
        for seed in range(8)
    )
    assert total >= 5
