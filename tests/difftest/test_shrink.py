"""The greedy minimizer: monotone progress, flattening, and budgets."""

from repro.cif.layout import Call, Label, Layout, Symbol
from repro.difftest import generate_layout, primitive_count, shrink
from repro.difftest.generator import FAULT_HUNT_PROFILE
from repro.geometry.box import Box
from repro.geometry.transform import Transform
from repro.tech import NMOS

TECH = NMOS()
LAM = TECH.lambda_


def _layout_with(boxes, labels=(), symbols=None, calls=()):
    layout = Layout()
    layout.top.boxes = list(boxes)
    layout.top.labels = list(labels)
    layout.top.calls = list(calls)
    for sym in symbols or ():
        layout.symbols[sym.number] = sym
    return layout


def test_shrink_keeps_predicate_true():
    # Predicate: "some ND box with xmin == 0 exists". Everything else
    # is deletable noise the shrinker must clear out.
    boxes = [("ND", Box(0, 0, LAM, LAM))] + [
        ("NP", Box(i * LAM, 2 * LAM, (i + 1) * LAM, 3 * LAM)) for i in range(6)
    ]
    layout = _layout_with(boxes, labels=[Label("noise", 0, 0, "ND")])

    def still_fails(candidate):
        return any(
            layer == "ND" and box.xmin == 0
            for layer, box in candidate.top.boxes
        )

    result = shrink(layout, still_fails)
    assert still_fails(result.layout)
    assert result.after < result.before
    assert result.after == 1
    assert result.probes > 0


def test_shrink_flattens_hierarchy():
    leaf = Symbol(1)
    leaf.boxes = [("ND", Box(0, 0, LAM, LAM))]
    layout = _layout_with(
        [], symbols=[leaf], calls=[Call(1, Transform.identity())]
    )
    assert primitive_count(layout) == 2  # one call + one box

    result = shrink(layout, lambda c: True)
    assert result.flattened
    assert not result.layout.top.calls
    assert not result.layout.symbols


def test_shrink_never_returns_invalid_layout():
    case = generate_layout(7, LAM, FAULT_HUNT_PROFILE)

    # An adversarial predicate: accept anything that still validates.
    result = shrink(case.layout, lambda c: True)
    result.layout.validate()
    assert result.after <= result.before


def test_shrink_on_unshrinkable_failure():
    layout = _layout_with([("ND", Box(0, 0, LAM, LAM))])
    result = shrink(layout, lambda c: len(c.top.boxes) == 1)
    assert result.after == 1
    assert result.before == 1


def test_shrink_respects_probe_budget():
    boxes = [
        ("ND", Box(i * LAM, 0, (i + 1) * LAM, LAM)) for i in range(40)
    ]
    layout = _layout_with(boxes)
    result = shrink(layout, lambda c: True, max_probes=10)
    assert result.probes <= 10


def test_shrink_survives_raising_predicate():
    # Oracles may crash on pathological intermediate layouts; the
    # shrinker treats a raising probe as "does not fail" and moves on.
    boxes = [("ND", Box(i * LAM, 0, (i + 1) * LAM, LAM)) for i in range(4)]
    layout = _layout_with(boxes)
    calls = {"n": 0}

    def flaky(candidate):
        calls["n"] += 1
        if len(candidate.top.boxes) == 2:
            raise RuntimeError("oracle crashed")
        return len(candidate.top.boxes) >= 1

    result = shrink(layout, flaky)
    assert flaky(result.layout)
    assert result.after <= result.before


def test_primitive_count_only_reachable():
    orphan = Symbol(9)
    orphan.boxes = [("ND", Box(0, 0, LAM, LAM))] * 5
    layout = _layout_with([("NP", Box(0, 0, LAM, LAM))], symbols=[orphan])
    assert primitive_count(layout) == 1
