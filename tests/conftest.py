"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.tech import NMOS
from repro.workloads import inverter, inverter_rows, single_transistor


@pytest.fixture(scope="session")
def tech():
    return NMOS()


@pytest.fixture(scope="session")
def inverter_layout():
    return inverter()


@pytest.fixture(scope="session")
def transistor_layout():
    return single_transistor()


@pytest.fixture(scope="session")
def rows_layout():
    return inverter_rows(2, 3)
