"""Property tests: wirelist text round trips and CIF idempotence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cif import Layout, parse, write
from repro.geometry import Box
from repro.wirelist import (
    DefPart,
    DeviceInstance,
    NetDecl,
    SubpartInstance,
    Wirelist,
    compare_netlists,
    flatten,
    parse_wirelist,
    write_wirelist,
)

net_names = st.sampled_from(["A", "B", "C", "OUT", "VDD", "GND", "N1", "N2"])
kinds = st.sampled_from(["nEnh", "nDep"])


@st.composite
def leaf_parts(draw):
    part = DefPart(name="leaf")
    n_devices = draw(st.integers(1, 5))
    for i in range(n_devices):
        part.devices.append(
            DeviceInstance(
                kind=draw(kinds),
                inst_name=f"D{i}",
                gate=draw(net_names),
                source=draw(net_names),
                drain=draw(net_names),
                length=float(draw(st.integers(1, 40)) * 50),
                width=float(draw(st.integers(1, 40)) * 50),
            )
        )
    exported = sorted({
        n
        for d in part.devices
        for n in (d.gate, d.source, d.drain)
    })
    part.exports = exported
    return part


@settings(max_examples=40, deadline=None)
@given(leaf_parts(), st.integers(1, 3))
def test_hierarchical_wirelist_roundtrip(leaf, copies):
    top = DefPart(name="top")
    for i in range(copies):
        top.subparts.append(
            SubpartInstance(
                part="leaf",
                inst_name=f"P{i + 1}",
                net_map={
                    name: f"{name}_{i}" if name not in ("VDD", "GND") else name
                    for name in leaf.exports
                },
            )
        )
    top.nets.append(NetDecl(names=["VDD", "PWR"]))
    wirelist = Wirelist("chip", [leaf, top], top="top")

    text = write_wirelist(wirelist)
    recovered = flatten(parse_wirelist(text))
    original = flatten(wirelist)
    report = compare_netlists(original, recovered)
    assert report.equivalent, report.reason
    assert len(recovered.devices) == copies * len(leaf.devices)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ND", "NP", "NM", "NC", "NI", "NB"]),
            st.integers(-50, 50),
            st.integers(-50, 50),
            st.integers(1, 30),
            st.integers(1, 30),
        ),
        max_size=8,
    )
)
def test_cif_write_parse_write_is_idempotent(specs):
    layout = Layout()
    for layer, x, y, w, h in specs:
        layout.top.add_box(layer, Box(x, y, x + w, y + h))
    # The first pass normalizes shape order (off-grid boxes re-emerge as
    # polygons); from then on, write(parse(.)) is a fixed point.
    once = write(parse(write(layout)))
    twice = write(parse(once))
    assert once == twice
