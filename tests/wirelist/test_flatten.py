"""Flattening hierarchical wirelists."""

from repro.wirelist import (
    DefPart,
    DeviceInstance,
    NetDecl,
    SubpartInstance,
    Wirelist,
    flatten,
)


def _inverter_part(name="inv") -> DefPart:
    return DefPart(
        name=name,
        exports=["IN", "OUT", "VDD", "GND"],
        devices=[
            DeviceInstance("nDep", "D0", gate="OUT", source="VDD", drain="OUT"),
            DeviceInstance("nEnh", "D1", gate="IN", source="OUT", drain="GND"),
        ],
    )


class TestFlat:
    def test_single_part(self):
        flat = flatten(Wirelist("x", [_inverter_part()], top="inv"))
        assert len(flat.devices) == 2
        nets = {d.gate for d in flat.devices} | {
            d.source for d in flat.devices
        } | {d.drain for d in flat.devices}
        assert len(nets) == 4

    def test_names_preserved(self):
        part = _inverter_part()
        part.nets.append(NetDecl(names=["VDD", "PWR"]))
        flat = flatten(Wirelist("x", [part], top="inv"))
        assert flat.named("PWR") == flat.named("VDD")


class TestHierarchy:
    def _two_level(self) -> Wirelist:
        inv = _inverter_part()
        pair = DefPart(
            name="pair",
            exports=["A", "B", "VDD", "GND"],
            subparts=[
                SubpartInstance(
                    "inv",
                    "P1",
                    net_map={"IN": "A", "OUT": "MID", "VDD": "VDD", "GND": "GND"},
                ),
                SubpartInstance(
                    "inv",
                    "P2",
                    net_map={"IN": "MID", "OUT": "B", "VDD": "VDD", "GND": "GND"},
                ),
            ],
        )
        return Wirelist("x", [inv, pair], top="pair")

    def test_two_instances_expand(self):
        flat = flatten(self._two_level())
        assert len(flat.devices) == 4

    def test_chain_connectivity(self):
        flat = flatten(self._two_level())
        # P1's output net must equal P2's input gate net.
        enh = [d for d in flat.devices if d.kind == "nEnh"]
        assert len(enh) == 2
        first, second = enh
        assert second.gate in (first.source, first.drain) or first.gate in (
            second.source,
            second.drain,
        )

    def test_shared_rails(self):
        flat = flatten(self._two_level())
        enh_nets = [
            {d.source, d.drain} for d in flat.devices if d.kind == "nEnh"
        ]
        shared = enh_nets[0] & enh_nets[1]
        assert shared  # the common GND

    def test_net_equivalence_collapses(self):
        inv = _inverter_part()
        top = DefPart(
            name="top",
            subparts=[
                SubpartInstance("inv", "P1", net_map={"OUT": "X"}),
            ],
            nets=[NetDecl(names=["X", "Y"]), NetDecl(names=["Y", "Z"])],
        )
        flat = flatten(Wirelist("x", [inv, top], top="top"))
        # X, Y, Z alias through the chain; count distinct nets used.
        used = {
            n
            for d in flat.devices
            for n in (d.gate, d.source, d.drain)
            if n is not None
        }
        assert len(used) == 4  # IN, OUT(=X=Y=Z), VDD, GND
