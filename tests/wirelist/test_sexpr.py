"""S-expression reader."""

import pytest

from repro.wirelist import WirelistParseError, read_sexpr


class TestRead:
    def test_atom(self):
        assert read_sexpr("hello") == "hello"

    def test_flat_list(self):
        assert read_sexpr("(a b c)") == ["a", "b", "c"]

    def test_nested(self):
        assert read_sexpr("(a (b c) (d (e)))") == [
            "a",
            ["b", "c"],
            ["d", ["e"]],
        ]

    def test_string_atoms_keep_spaces_and_semicolons(self):
        expr = read_sexpr('(CIF "L NM; B 4 2 1 1;")')
        assert expr == ["CIF", '"L NM; B 4 2 1 1;"']

    def test_unbalanced_open(self):
        with pytest.raises(WirelistParseError):
            read_sexpr("(a (b)")

    def test_unbalanced_close(self):
        with pytest.raises(WirelistParseError):
            read_sexpr("a)")

    def test_trailing_tokens(self):
        with pytest.raises(WirelistParseError):
            read_sexpr("(a) (b)")

    def test_unterminated_string(self):
        with pytest.raises(WirelistParseError):
            read_sexpr('(a "oops)')
