"""Netlist comparison: equivalences it must accept and reject."""

from repro.wirelist import FlatCircuit, FlatDevice, compare_netlists, netlists_equivalent


def _circuit(devices, names=None) -> FlatCircuit:
    flat = FlatCircuit()
    flat.devices = [FlatDevice(*d) for d in devices]
    flat.net_names = {k: list(v) for k, v in (names or {}).items()}
    flat.net_count = 1 + max(
        (n for d in flat.devices for n in (d.gate, d.source, d.drain) if n is not None),
        default=-1,
    )
    return flat


INV = [("nDep", 1, 0, 1), ("nEnh", 2, 1, 3)]


class TestAccepts:
    def test_identical(self):
        assert netlists_equivalent(_circuit(INV), _circuit(INV))

    def test_renumbered_nets(self):
        renamed = [("nDep", 11, 10, 11), ("nEnh", 12, 11, 13)]
        assert netlists_equivalent(_circuit(INV), _circuit(renamed))

    def test_source_drain_swap(self):
        swapped = [("nDep", 1, 1, 0), ("nEnh", 2, 3, 1)]
        assert netlists_equivalent(_circuit(INV), _circuit(swapped))

    def test_device_order_irrelevant(self):
        assert netlists_equivalent(_circuit(INV), _circuit(INV[::-1]))

    def test_empty(self):
        assert netlists_equivalent(_circuit([]), _circuit([]))


class TestRejects:
    def test_device_count(self):
        report = compare_netlists(_circuit(INV), _circuit(INV[:1]))
        assert not report.equivalent
        assert "device counts" in report.reason

    def test_kind_mismatch(self):
        other = [("nEnh", 1, 0, 1), ("nEnh", 2, 1, 3)]
        assert not netlists_equivalent(_circuit(INV), _circuit(other))

    def test_gate_vs_sd_roles(self):
        # With the input named, gate and source/drain roles must not be
        # interchangeable.  (Unnamed, these two are genuinely isomorphic
        # under net relabeling.)
        a = _circuit([("nEnh", 0, 1, 2)], names={0: ["IN"]})
        b = _circuit([("nEnh", 1, 0, 2)], names={0: ["IN"]})
        assert not netlists_equivalent(a, b)

    def test_connectivity_mismatch(self):
        # Two-inverter chain vs two independent inverters.
        chain = [
            ("nDep", 1, 0, 1), ("nEnh", 2, 1, 3),
            ("nDep", 4, 0, 4), ("nEnh", 1, 4, 3),
        ]
        split = [
            ("nDep", 1, 0, 1), ("nEnh", 2, 1, 3),
            ("nDep", 4, 0, 4), ("nEnh", 5, 4, 3),
        ]
        assert not netlists_equivalent(_circuit(chain), _circuit(split))

    def test_net_names_anchor(self):
        a = _circuit(INV, names={0: ["VDD"], 3: ["GND"]})
        b = _circuit(INV, names={0: ["GND"], 3: ["VDD"]})
        assert not netlists_equivalent(a, b)

    def test_net_count_difference(self):
        merged = [("nDep", 1, 0, 1), ("nEnh", 2, 1, 0)]
        report = compare_netlists(_circuit(INV), _circuit(merged))
        assert not report.equivalent


class TestReport:
    def test_counts_populated(self):
        report = compare_netlists(_circuit(INV), _circuit(INV))
        assert report.device_counts == (2, 2)
        assert report.net_counts == (4, 4)
