"""A scaled-down run of the service load benchmark's invariants."""

from repro.bench.service import bench_service, check_report


def test_small_load_run_holds_the_invariants():
    report = bench_service(
        clients=3, requests=2, workers=2, queue_capacity=8
    )
    assert check_report(report) == []
    cold, warm = report["passes"]
    assert cold["completed"] == 6 and warm["completed"] == 6
    assert report["warm_cache_hits"] >= 6
    assert report["drained_clean"] is True
    # The report is JSON-shaped the way CI's artifact expects.
    assert report["daemon_metrics"]["jobs"]["submitted"] == 12
    assert report["config"]["payloads"]


def test_check_report_flags_dropped_jobs():
    report = {
        "passes": [
            {"pass": "cold", "requests": 4, "completed": 3,
             "errors": ["x: Boom: nope"]},
            {"pass": "warm", "requests": 4, "completed": 4, "errors": []},
        ],
        "warm_cache_hits": 4,
        "drained_clean": True,
        "daemon_metrics": {"jobs": {"failed": 0, "timed_out": 0}},
    }
    problems = check_report(report)
    assert len(problems) == 1 and "dropped" in problems[0]
