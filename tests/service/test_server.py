"""End-to-end daemon tests over real HTTP on an ephemeral port."""

import pytest

from repro.cif import parse, write as write_cif
from repro.core import extract_report
from repro.service import (
    ExtractionService,
    JobFailed,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads import inverter, transistor_array
from repro.workloads.violations import drc_violations


def _reference_wirelist(cif: str, name: str) -> str:
    report = extract_report(parse(cif), keep_geometry=False)
    return write_wirelist(to_wirelist(report.circuit, name=name))


class TestExtraction:
    def test_round_trip_matches_in_process_bytes(self, client):
        cif = write_cif(inverter())
        result = client.extract(cif, name="inverter.cif")
        assert result["wirelist"] == _reference_wirelist(cif, "inverter.cif")
        assert result["devices"] == 2

    def test_submit_poll_result_lifecycle(self, client):
        receipt = client.submit(write_cif(inverter()), name="inv.cif")
        assert receipt["state"] in ("queued", "done")
        status = client.wait(receipt["job"], timeout=30.0)
        assert status["state"] == "done"
        assert status["latency_seconds"] >= 0
        result = client.result(receipt["job"])
        assert result["name"] == "inv.cif"

    def test_repeat_submission_hits_the_result_cache(self, client):
        cif = write_cif(transistor_array(4))
        first = client.extract(cif, name="array.cif")
        receipt = client.submit(cif, name="array.cif")
        # The hit answers synchronously: done, flagged, byte-identical.
        assert receipt["state"] == "done"
        assert receipt["cached"] is True
        assert client.result(receipt["job"])["wirelist"] == first["wirelist"]
        metrics = client.metrics()
        assert metrics["cache"]["hits"] == 1
        assert metrics["result_cache"]["hits"] == 1

    def test_jobs_option_is_cache_equivalent(self, client):
        cif = write_cif(transistor_array(4))
        client.extract(cif, name="array.cif", jobs=2)
        receipt = client.submit(cif, name="array.cif")  # serial resubmit
        assert receipt["cached"] is True

    def test_hext_with_lint(self, client):
        cif = write_cif(inverter())
        flat = client.extract(cif, name="inv.cif")
        hier = client.extract(cif, name="inv.cif", hext=True, lint=True)
        assert hier["lint_errors"] == 0
        assert hier["devices"] == flat["devices"]

    def test_lint_reports_diagnostics(self, client):
        result = client.extract(
            write_cif(drc_violations()), name="bad.cif", lint=True
        )
        assert result["lint_errors"] > 0
        assert result["diagnostics"]
        assert all("rule" in d for d in result["diagnostics"])

    def test_path_submission(self, client, tmp_path):
        layout = tmp_path / "inv.cif"
        cif = write_cif(inverter())
        layout.write_text(cif)
        result = client.extract(path=str(layout))
        # The name defaults to the basename of the submitted path.
        assert result["name"] == "inv.cif"
        assert result["wirelist"] == _reference_wirelist(cif, "inv.cif")

    def test_unparseable_cif_fails_the_job(self, client):
        receipt = client.submit("this is not CIF ((", name="junk.cif")
        status = client.wait(receipt["job"], timeout=30.0)
        assert status["state"] == "failed"
        assert status["error_kind"] == "error"
        with pytest.raises(JobFailed):
            client.result(receipt["job"])

    def test_zero_timeout_times_out(self, client):
        receipt = client.submit(
            write_cif(inverter()), name="inv.cif", timeout=0
        )
        status = client.wait(receipt["job"], timeout=30.0)
        assert status["state"] == "failed"
        assert status["error_kind"] == "timeout"
        metrics = client.metrics()
        assert metrics["jobs"]["timed_out"] == 1


class TestValidation:
    def test_unknown_option_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit(write_cif(inverter()), jbos=2)
        assert info.value.status == 400
        assert "unknown option" in str(info.value)

    def test_cif_and_path_are_mutually_exclusive(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit("(C);", path="/tmp/x.cif")
        assert info.value.status == 400

    def test_neither_cif_nor_path_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit()
        assert info.value.status == 400

    def test_unreadable_path_is_400(self, client, tmp_path):
        with pytest.raises(ServiceError) as info:
            client.submit(path=str(tmp_path / "missing.cif"))
        assert info.value.status == 400

    def test_unknown_job_is_404(self, client):
        for probe in (client.status, client.result, client.cancel):
            with pytest.raises(ServiceError) as info:
                probe("feedfacecafe")
            assert info.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404


class TestAdmissionControl:
    def test_full_queue_answers_429_with_retry_after(self, idle_client):
        cif = write_cif(inverter())
        for index in range(3):  # fill the capacity-3 queue
            idle_client.submit(cif, name=f"fill{index}.cif")
        with pytest.raises(ServiceError) as info:
            idle_client.submit(cif, name="overflow.cif")
        exc = info.value
        assert exc.status == 429
        assert exc.retry_after >= 1.0
        assert exc.payload["queue_depth"] == 3
        metrics = idle_client.metrics()
        assert metrics["jobs"]["rejected_full"] == 1
        assert metrics["queue"]["depth"] == 3

    def test_queued_job_result_is_202(self, idle_client):
        receipt = idle_client.submit(write_cif(inverter()))
        with pytest.raises(ServiceError) as info:
            idle_client.result(receipt["job"])
        assert info.value.status == 202

    def test_cancel_queued_job(self, idle_client):
        receipt = idle_client.submit(write_cif(inverter()))
        cancelled = idle_client.cancel(receipt["job"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(JobFailed) as info:
            idle_client.result(receipt["job"])
        assert info.value.payload["state"] == "cancelled"


class TestObservability:
    def test_healthz(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["draining"] is False
        assert health["uptime_seconds"] >= 0

    def test_metrics_account_for_every_job(self, client):
        cif = write_cif(inverter())
        client.extract(cif, name="a.cif")
        client.extract(cif, name="a.cif")  # cache hit
        client.extract(cif, name="b.cif", hext=True)  # different facet
        metrics = client.metrics()
        jobs = metrics["jobs"]
        assert jobs["submitted"] == 3
        assert jobs["completed"] == 3
        assert jobs["failed"] == 0
        assert metrics["cache"]["hits"] == 1
        assert metrics["latency"]["observed"] == 3
        # Stage timings cover the whole pipeline; hext folded its own.
        assert {"parse", "extract", "wirelist"} <= set(metrics["stages"])
        assert metrics["scanline"]["devices_created"] >= 2
        assert metrics["hext"]["windows_seen"] >= 1
        assert metrics["warm"]["window_memos"]


class TestDrain:
    def test_drain_finishes_admitted_work_then_refuses(self):
        service = ExtractionService(
            ServiceConfig(port=0, workers=2, quiet=True)
        )
        service.start()
        client = ServiceClient(port=service.port, timeout=30.0)
        cif = write_cif(transistor_array(4))
        receipts = [
            client.submit(cif, name=f"chip{index}.cif") for index in range(4)
        ]
        assert service.drain(grace=60.0) is True
        # Every admitted job reached done before the server stopped.
        for receipt in receipts:
            job = service.store.get(receipt["job"])
            assert job is not None and job.state.value == "done"
        assert service.submit({"cif": cif})[0] == 503

    def test_drain_is_reported_while_serving(self):
        service = ExtractionService(
            ServiceConfig(port=0, workers=1, quiet=True)
        )
        service.start()
        try:
            service.draining.set()
            client = ServiceClient(port=service.port, timeout=30.0)
            assert client.health()["draining"] is True
            with pytest.raises(ServiceError) as info:
                client.submit("(C);")
            assert info.value.status == 503
        finally:
            service.close()
