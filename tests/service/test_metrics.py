"""Quantiles, the latency ring, and the aggregate metrics snapshot."""

import pytest

from repro.service.metrics import LatencyRing, Metrics, quantile


class TestQuantile:
    def test_empty_and_singleton(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.0], 0.99) == 3.0

    def test_exact_positions(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 1.0) == 5.0

    def test_linear_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)


class TestLatencyRing:
    def test_window_smaller_than_size(self):
        ring = LatencyRing(size=8)
        for value in (0.1, 0.2, 0.3):
            ring.observe(value)
        snap = ring.snapshot()
        assert snap["window"] == 3
        assert snap["observed"] == 3
        assert snap["max_seconds"] == pytest.approx(0.3)
        assert snap["mean_seconds"] == pytest.approx(0.2)

    def test_ring_overwrites_oldest(self):
        ring = LatencyRing(size=4)
        for value in (9.0, 9.0, 9.0, 9.0, 0.1, 0.2, 0.3, 0.4):
            ring.observe(value)
        snap = ring.snapshot()
        # The four 9s aged out of the window entirely ...
        assert snap["window"] == 4
        assert snap["max_seconds"] == pytest.approx(0.4)
        assert snap["p99_seconds"] < 1.0
        # ... but the all-time accounting remembers them.
        assert snap["observed"] == 8
        assert ring.total_seconds == pytest.approx(37.0)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyRing(size=0)


class _FakeScanStats:
    boxes_in = 10
    stops = 4
    devices_created = 2
    heap_pushes = 7
    heap_pops = 7
    lazy_discards = 1
    expired = 3
    peak_active = 5


class _FakeHextStats:
    flat_calls = 3
    compose_calls = 2
    memo_hits = 6
    windows_seen = 9
    unique_windows = 3
    cache_hits = 1
    cache_misses = 2
    frontend_seconds = 0.25
    flat_seconds = 1.0
    compose_seconds = 0.5


class TestMetrics:
    def test_counters_and_cache_rate(self):
        metrics = Metrics()
        metrics.count("submitted", 4)
        metrics.count("completed", 3)
        metrics.count("cache_hits", 3)
        metrics.count("cache_misses", 1)
        snap = metrics.snapshot()
        assert snap["jobs"]["submitted"] == 4
        assert snap["jobs"]["failed"] == 0
        assert snap["cache"]["hit_rate"] == pytest.approx(0.75)

    def test_fold_scan_stats_accumulates(self):
        metrics = Metrics()
        metrics.fold_scan_stats(_FakeScanStats())
        metrics.fold_scan_stats(_FakeScanStats())
        snap = metrics.snapshot()
        assert snap["scanline"]["boxes_in"] == 20
        assert snap["scanline"]["devices_created"] == 4
        assert snap["scanline"]["peak_active"] == 5  # max, not sum
        # No profiler on these runs: no scan_* stage rows appear.
        assert not any(k.startswith("scan_") for k in snap["stages"])

    def test_fold_scan_stats_folds_profile_into_stages(self):
        class _Profiled(_FakeScanStats):
            profile = {"strip": 0.5, "finalize": 0.25}

        metrics = Metrics()
        metrics.fold_scan_stats(_Profiled())
        metrics.fold_scan_stats(_Profiled())
        snap = metrics.snapshot()
        assert snap["stages"]["scan_strip"] == pytest.approx(1.0)
        assert snap["stages"]["scan_finalize"] == pytest.approx(0.5)

    def test_fold_hext_stats_feeds_stage_timers(self):
        metrics = Metrics()
        metrics.fold_hext_stats(_FakeHextStats())
        snap = metrics.snapshot()
        assert snap["hext"]["memo_hits"] == 6
        assert snap["stages"]["hext_execute"] == pytest.approx(1.0)
        assert snap["stages"]["hext_compose"] == pytest.approx(0.5)

    def test_observe_completion_feeds_both_rings(self):
        metrics = Metrics()
        metrics.observe_completion(2.0, 1.5)
        metrics.observe_completion(4.0, 3.5)
        snap = metrics.snapshot()
        assert snap["latency"]["mean_seconds"] == pytest.approx(3.0)
        assert snap["run_latency"]["mean_seconds"] == pytest.approx(2.5)
        assert metrics.mean_latency() == pytest.approx(3.0)

    def test_gauges_spliced_into_snapshot(self):
        snap = Metrics().snapshot(queue={"depth": 3}, draining=False)
        assert snap["queue"] == {"depth": 3}
        assert snap["draining"] is False
