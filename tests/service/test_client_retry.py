"""Client-side retry: bounded attempts, backoff, Retry-After wins."""

import pytest

from repro.service.client import ServiceClient, ServiceError


class ScriptedClient(ServiceClient):
    """A client whose transport plays back a script of answers."""

    def __init__(self, script, **kwargs):
        super().__init__(port=1, **kwargs)
        self.script = list(script)
        self.attempts = 0
        self.delays = []

    def _request(self, method, path, body=None, ok=(200,)):
        self.attempts += 1
        answer = self.script.pop(0)
        if isinstance(answer, Exception):
            raise answer
        return answer


@pytest.fixture(autouse=True)
def no_real_sleep(monkeypatch):
    def fake_sleep(seconds):
        sleeps.append(seconds)

    sleeps = []
    monkeypatch.setattr(
        "repro.service.client.time.sleep", fake_sleep
    )
    yield sleeps


def backpressure(status, retry_after=None):
    payload = {"error": "busy"}
    if retry_after is not None:
        payload["retry_after_seconds"] = retry_after
    return ServiceError(status, payload)


def test_no_retries_by_default(no_real_sleep):
    client = ScriptedClient([backpressure(429)])
    with pytest.raises(ServiceError):
        client.submit("cif")
    assert client.attempts == 1
    assert client.retries_performed == 0


def test_retries_until_success(no_real_sleep):
    client = ScriptedClient(
        [backpressure(429), backpressure(503), {"job": "j1"}],
        retries=3,
    )
    receipt = client.submit("cif")
    assert receipt == {"job": "j1"}
    assert client.attempts == 3
    assert client.retries_performed == 2


def test_budget_exhaustion_reraises_last_error(no_real_sleep):
    client = ScriptedClient(
        [backpressure(429), backpressure(429), backpressure(429)],
        retries=2,
    )
    with pytest.raises(ServiceError) as excinfo:
        client.submit("cif")
    assert excinfo.value.status == 429
    assert client.attempts == 3  # initial + 2 retries


def test_non_retryable_status_fails_immediately(no_real_sleep):
    client = ScriptedClient([ServiceError(400, {"error": "bad"})], retries=5)
    with pytest.raises(ServiceError):
        client.submit("cif")
    assert client.attempts == 1


def test_connection_failure_is_retryable(no_real_sleep):
    client = ScriptedClient(
        [ConnectionRefusedError("down"), {"job": "j1"}], retries=1
    )
    assert client.submit("cif") == {"job": "j1"}
    assert client.attempts == 2


def test_retry_after_hint_wins_over_backoff(no_real_sleep):
    client = ScriptedClient(
        [backpressure(429, retry_after=3.5), {"job": "j1"}],
        retries=1,
        backoff=0.25,
        jitter=0.0,
    )
    client.submit("cif")
    assert no_real_sleep == [3.5]


def test_backoff_grows_exponentially_and_caps(no_real_sleep):
    client = ScriptedClient(
        [backpressure(503)] * 5 + [{"job": "j1"}],
        retries=5,
        backoff=1.0,
        backoff_cap=4.0,
        jitter=0.0,
    )
    client.submit("cif")
    assert no_real_sleep == [1.0, 2.0, 4.0, 4.0, 4.0]


def test_jitter_stays_bounded(no_real_sleep):
    client = ScriptedClient(
        [backpressure(503), {"job": "j1"}],
        retries=1,
        backoff=1.0,
        jitter=0.5,
    )
    client.submit("cif")
    (delay,) = no_real_sleep
    assert 1.0 <= delay <= 1.5


def test_negative_retries_rejected():
    with pytest.raises(ValueError):
        ServiceClient(retries=-1)


def test_retry_after_header_fallback():
    error = ServiceError(429, {"error": "busy"}, {"Retry-After": "7"})
    assert error.retry_after == 7.0
    # The payload hint wins over the header when both exist.
    error = ServiceError(
        429, {"error": "busy", "retry_after_seconds": 2.5},
        {"Retry-After": "7"},
    )
    assert error.retry_after == 2.5


def test_live_daemon_backpressure_exhaustion(idle_service, idle_client):
    """Against a real full daemon: retries happen, then the 429 surfaces."""
    from repro.cif import write as write_cif
    from repro.workloads import inverter

    cif = write_cif(inverter())
    # Fill the queue (no workers drain it).
    for index in range(idle_service.config.queue_capacity):
        idle_client.submit(cif, name=f"fill{index}.cif")
    retrying = ServiceClient(
        port=idle_service.port,
        timeout=30.0,
        retries=2,
        backoff=0.01,
        backoff_cap=0.02,
        jitter=0.0,
    )
    with pytest.raises(ServiceError) as excinfo:
        retrying.submit(cif, name="overflow.cif")
    assert excinfo.value.status == 429
    assert retrying.retries_performed == 2
    assert excinfo.value.retry_after is not None
