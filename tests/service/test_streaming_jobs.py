"""Streamed jobs through the daemon: options, parity, progress gauge."""

import pytest

from repro.cif import parse, write as write_cif
from repro.core import extract_report
from repro.service.jobs import JobOptions, OptionsError
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads import inverter_rows


class TestStreamOptions:
    def test_stream_flag_round_trips(self):
        options = JobOptions.from_payload(
            {"stream": True, "band_height": 500}
        )
        assert options.stream and options.band_height == 500
        echoed = options.to_payload()
        assert echoed["stream"] is True
        assert echoed["band_height"] == 500

    def test_defaults_are_flat(self):
        options = JobOptions.from_payload(None)
        assert not options.stream
        assert options.band_height is None

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"stream": "yes"}, "stream"),
            ({"stream": True, "hext": True}, "mutually exclusive"),
            ({"band_height": 100}, "requires 'stream'"),
            ({"stream": True, "band_height": 0}, ">= 1"),
            ({"stream": True, "band_height": 2.5}, "band_height"),
        ],
    )
    def test_malformed_stream_payloads_rejected(self, payload, match):
        with pytest.raises(OptionsError, match=match):
            JobOptions.from_payload(payload)

    def test_cache_facet_ignores_streaming_knobs(self):
        """Streamed output is byte-identical, so results interchange."""
        flat = JobOptions.from_payload({"name": "a.cif"})
        banded = JobOptions.from_payload(
            {"name": "a.cif", "stream": True, "band_height": 100}
        )
        assert flat.cache_facet() == banded.cache_facet()


class TestStreamedJobs:
    def test_streamed_bytes_match_flat(self, client):
        cif = write_cif(inverter_rows(4, 2))
        streamed = client.extract(
            cif, name="rows.cif", stream=True, band_height=2000
        )
        report = extract_report(parse(cif), keep_geometry=False)
        expected = write_wirelist(to_wirelist(report.circuit, name="rows.cif"))
        assert streamed["wirelist"] == expected

    def test_streamed_job_moves_the_band_gauge(self, client):
        cif = write_cif(inverter_rows(4, 2))
        client.extract(cif, name="gauge.cif", stream=True, band_height=2000)
        streaming = client.metrics()["streaming"]
        assert streaming["jobs"] == 1
        assert streaming["bands"] >= 2
        assert streaming["active"] == {}  # gauge drained on completion

    def test_flat_submission_hits_streamed_cache_entry(self, client):
        """Same facet, either pipeline: one cache entry serves both."""
        cif = write_cif(inverter_rows(3, 2))
        first = client.extract(
            cif, name="shared.cif", stream=True, band_height=1500
        )
        receipt = client.submit(cif, name="shared.cif")
        assert receipt["state"] == "done"
        assert receipt["cached"] is True
        assert client.result(receipt["job"])["wirelist"] == first["wirelist"]

    def test_stream_hext_conflict_rejected_at_the_door(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as info:
            client.submit("(C);", stream=True, hext=True)
        assert info.value.status == 400
