"""Shared fixtures: one live daemon per test, on an ephemeral port."""

import pytest

from repro.service import ExtractionService, ServiceClient, ServiceConfig


@pytest.fixture()
def service():
    svc = ExtractionService(
        ServiceConfig(
            port=0,
            workers=2,
            queue_capacity=8,
            default_timeout=60.0,
            quiet=True,
        )
    )
    svc.start()
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port, timeout=30.0)


@pytest.fixture()
def idle_service():
    """A daemon with no workers: jobs queue but never run (admission tests)."""
    svc = ExtractionService(
        ServiceConfig(port=0, workers=0, queue_capacity=3, quiet=True)
    )
    svc.start()
    yield svc
    # Cancel whatever is stuck in the queue so drain is clean.
    for job in list(svc.store._jobs):
        svc.store.cancel(job)
    svc.close()


@pytest.fixture()
def idle_client(idle_service):
    return ServiceClient(port=idle_service.port, timeout=30.0)
