"""Warm-start priming and shard identity surfacing."""

from repro.service import ExtractionService, ServiceClient, ServiceConfig
from repro.service.cache import ResultCache


def result_payload(i):
    return {"wirelist": f"w{i}", "diagnostics": [], "warnings": []}


class TestPrime:
    def test_prime_loads_recent_disk_entries(self, tmp_path):
        writer = ResultCache(tmp_path)
        for i in range(5):
            writer.put(f"{i:02d}" + "cd" * 31, result_payload(i))
        cold = ResultCache(tmp_path)
        assert cold.prime(3) == 3
        snap = cold.stats_snapshot()
        assert snap["primed"] == 3
        assert snap["memory_entries"] == 3

    def test_prime_without_disk_is_zero(self):
        assert ResultCache().prime() == 0

    def test_primed_entries_hit_in_memory(self, tmp_path):
        key = "aa" + "cd" * 31
        ResultCache(tmp_path).put(key, result_payload(1))
        cold = ResultCache(tmp_path)
        cold.prime()
        before_disk_hits = cold.stats_snapshot()["disk"]["hits"]
        assert cold.get(key) == result_payload(1)
        # The hit was served from memory, not another disk read.
        assert cold.stats_snapshot()["disk"]["hits"] == before_disk_hits


class TestShardIdentity:
    def test_shard_flows_to_healthz_and_metrics(self, tmp_path):
        svc = ExtractionService(
            ServiceConfig(
                port=0, workers=1, quiet=True, shard="shard7",
                result_cache_dir=str(tmp_path / "store"), prime_cache=4,
            )
        )
        svc.start()
        try:
            client = ServiceClient(port=svc.port, timeout=10.0)
            assert client.health()["shard"] == "shard7"
            assert client.metrics()["shard"] == "shard7"
        finally:
            svc.close()

    def test_solo_daemon_has_null_shard(self, service, client):
        assert client.health()["shard"] is None
