"""Engine behavior below the HTTP layer: cancellation, timeouts, warm state."""

import time

import pytest

from repro.cif import write as write_cif
from repro.service.cache import payload_digest, result_cache_key
from repro.service.engine import (
    PROBE_STRIDE,
    CancellationProbe,
    ExtractionEngine,
    JobCancelled,
    JobTimeout,
)
from repro.service.jobs import Job, JobOptions
from repro.workloads import cmos_inverter, inverter, transistor_array


def _job(cif: str, **options) -> Job:
    parsed = JobOptions.from_payload(options or None)
    digest = payload_digest(cif)
    return Job.new(
        cif, parsed, digest, result_cache_key(digest, parsed)
    )


class TestCancellationProbe:
    def test_probe_checks_every_stride(self):
        job = _job("(C);")
        probe = CancellationProbe(job)
        job.cancel_event.set()
        # The probe deliberately skips PROBE_STRIDE - 1 strips ...
        for _ in range(PROBE_STRIDE - 1):
            probe.observe_strip(0, 1, {}, [])
        # ... and aborts on the stride boundary.
        with pytest.raises(JobCancelled):
            probe.observe_strip(0, 1, {}, [])

    def test_probe_raises_timeout_past_deadline(self):
        job = _job("(C);")
        job.deadline = time.monotonic() - 1.0
        probe = CancellationProbe(job)
        with pytest.raises(JobTimeout):
            for _ in range(PROBE_STRIDE):
                probe.observe_strip(0, 1, {}, [])


class TestRunJob:
    def test_cancelled_before_start_never_extracts(self):
        engine = ExtractionEngine()
        job = _job(write_cif(inverter()))
        job.cancel_event.set()
        with pytest.raises(JobCancelled):
            engine.run_job(job)
        assert engine.results.get(job.cache_key) is None

    def test_expired_deadline_fails_fast(self):
        engine = ExtractionEngine()
        job = _job(write_cif(inverter()), timeout=0)
        with pytest.raises(JobTimeout):
            engine.run_job(job)

    def test_result_payload_shape_and_caching(self):
        engine = ExtractionEngine()
        job = _job(write_cif(inverter()), name="inv.cif")
        result = engine.run_job(job)
        assert result["name"] == "inv.cif"
        assert result["wirelist"].startswith('(DefPart "inv.cif"')
        assert result["devices"] == 2
        assert result["lint_errors"] == 0
        assert engine.results.get(job.cache_key) is result

    def test_deck_option_selects_technology(self):
        engine = ExtractionEngine()
        job = _job(write_cif(cmos_inverter()), name="cinv.cif", deck="cmos")
        result = engine.run_job(job)
        assert result["devices"] == 2
        assert "(DefPart pEnh" in result["wirelist"]
        assert "nDep" not in result["wirelist"]
        engine.close()

    def test_decks_never_share_a_cache_entry(self):
        engine = ExtractionEngine()
        cif = write_cif(inverter())
        nmos_job = _job(cif, name="inv.cif")
        cmos_job = _job(cif, name="inv.cif", deck="cmos")
        assert nmos_job.cache_key != cmos_job.cache_key
        engine.run_job(nmos_job)
        assert engine.results.get(cmos_job.cache_key) is None
        engine.close()

    def test_hext_jobs_share_one_warm_memo(self):
        engine = ExtractionEngine()
        engine.run_job(_job(write_cif(transistor_array(4)), hext=True))
        first = engine.metrics.snapshot()["hext"]["memo_hits"]
        # A different chip reusing the same sub-blocks hits the memo
        # entries the first request left warm.
        engine.run_job(_job(write_cif(transistor_array(8)), hext=True))
        second = engine.metrics.snapshot()["hext"]["memo_hits"]
        assert second > first
        memos = engine.memo_snapshot()["window_memos"]
        assert sum(memos.values()) > 0
        pruned = engine.prune_memos()
        assert pruned >= 0  # prune is safe on a warm engine
        engine.close()
