"""Job model, option validation, queue admission, store lifecycle."""

import pytest

from repro.service.jobs import (
    Job,
    JobOptions,
    JobQueue,
    JobState,
    JobStore,
    OptionsError,
    QueueClosed,
    QueueFull,
)


def _job(**options) -> Job:
    return Job.new(
        "(C);", JobOptions.from_payload(options or None), "d" * 64, "k" * 64
    )


class TestJobOptions:
    def test_defaults(self):
        options = JobOptions.from_payload(None)
        assert options.name == "layout.cif"
        assert options.jobs is None
        assert not options.hext and not options.lint

    def test_full_payload_round_trips(self):
        payload = {
            "name": "chip.cif",
            "lambda": 300,
            "deck": "cmos",
            "hext": True,
            "jobs": 4,
            "lint": True,
            "keep_geometry": True,
            "timeout": 12.5,
            "stream": False,
            "band_height": None,
        }
        options = JobOptions.from_payload(payload)
        assert options.to_payload() == payload

    def test_unknown_key_rejected(self):
        with pytest.raises(OptionsError, match="unknown option"):
            JobOptions.from_payload({"jbos": 2})

    @pytest.mark.parametrize(
        "payload",
        [
            {"hext": "yes"},
            {"jobs": -1},
            {"jobs": 2.5},
            {"jobs": True},
            {"lambda": "250"},
            {"name": ""},
            {"name": 7},
            {"timeout": "fast"},
            {"timeout": -1},
            {"deck": ""},
            {"deck": 3},
            {"deck": "tungsten"},
            ["not", "an", "object"],
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(OptionsError):
            JobOptions.from_payload(payload)

    def test_cache_facet_excludes_execution_knobs(self):
        serial = JobOptions.from_payload({"name": "a.cif", "timeout": 5})
        parallel = JobOptions.from_payload({"name": "a.cif", "jobs": 8})
        assert serial.cache_facet() == parallel.cache_facet()
        # ... but everything result-affecting is present.
        assert set(serial.cache_facet()) == {
            "name", "lambda", "deck", "hext", "lint", "keep_geometry"
        }
        # Two decks over the same payload must never share an entry.
        cmos = JobOptions.from_payload({"name": "a.cif", "deck": "cmos"})
        assert cmos.cache_facet() != serial.cache_facet()

    def test_timeout_sets_deadline(self):
        job = _job(timeout=30)
        assert job.deadline == pytest.approx(
            job.submitted_monotonic + 30.0
        )
        assert _job().deadline is None


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue(4)
        jobs = [_job() for _ in range(3)]
        for job in jobs:
            queue.put(job)
        assert [queue.get(timeout=0.1) for _ in jobs] == jobs

    def test_admission_refuses_when_full(self):
        queue = JobQueue(2)
        queue.put(_job())
        queue.put(_job())
        with pytest.raises(QueueFull) as info:
            queue.put(_job(), retry_after=7.0)
        assert info.value.depth == 2
        assert info.value.capacity == 2
        assert info.value.retry_after == 7.0
        assert queue.depth == 2  # the refused job was never admitted

    def test_get_times_out_empty(self):
        assert JobQueue(1).get(timeout=0.01) is None

    def test_close_refuses_and_drains(self):
        queue = JobQueue(4)
        queue.put(_job())
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(_job())
        assert queue.get(timeout=0.1) is not None  # drain what was admitted
        assert queue.get(timeout=0.1) is None  # closed-and-empty: no wait

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(0)


class TestJobStore:
    def test_claim_is_single_shot(self):
        store = JobStore()
        job = _job()
        store.add(job)
        assert store.claim(job)
        assert job.state is JobState.RUNNING
        assert not store.claim(job)

    def test_finish_requires_terminal_state(self):
        store = JobStore()
        job = _job()
        store.add(job)
        with pytest.raises(ValueError):
            store.finish(job, JobState.RUNNING)
        store.finish(job, JobState.DONE, result={"ok": True})
        assert job.latency_seconds is not None
        # A terminal job never changes again.
        store.finish(job, JobState.FAILED, error="late")
        assert job.state is JobState.DONE and job.error is None

    def test_cancel_queued_is_immediate(self):
        store = JobStore()
        job = _job()
        store.add(job)
        cancelled = store.cancel(job.ident)
        assert cancelled is job
        assert job.state is JobState.CANCELLED
        assert not store.claim(job)  # a worker can no longer pick it up

    def test_cancel_running_is_cooperative(self):
        store = JobStore()
        job = _job()
        store.add(job)
        store.claim(job)
        store.cancel(job.ident)
        assert job.state is JobState.RUNNING  # worker finishes it
        assert job.cancel_event.is_set()

    def test_cancel_unknown_job(self):
        assert JobStore().cancel("nope") is None

    def test_retention_evicts_oldest_terminal(self):
        store = JobStore(retain=2)
        jobs = [_job() for _ in range(3)]
        for job in jobs:
            store.add(job)
            store.finish(job, JobState.DONE, result={})
        assert store.get(jobs[0].ident) is None  # evicted
        assert store.get(jobs[1].ident) is jobs[1]
        assert store.get(jobs[2].ident) is jobs[2]

    def test_pending_counts_queued_and_running(self):
        store = JobStore()
        queued, running, done = _job(), _job(), _job()
        for job in (queued, running, done):
            store.add(job)
        store.claim(running)
        store.claim(done)
        store.finish(done, JobState.DONE, result={})
        assert store.pending() == 2
        assert store.in_flight() == 1
