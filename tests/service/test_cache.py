"""Result-cache keying and the memory-over-disk store."""

import json

from repro.service.cache import ResultCache, payload_digest, result_cache_key
from repro.service.jobs import JobOptions


def _options(**payload) -> JobOptions:
    return JobOptions.from_payload(payload or None)


def _result(text: str = "(DefPart ...)") -> dict:
    return {"wirelist": text, "diagnostics": []}


class TestKeying:
    def test_payload_digest_is_content_addressed(self):
        assert payload_digest("(C);") == payload_digest("(C);")
        assert payload_digest("(C);") != payload_digest("(C); ")
        assert len(payload_digest("")) == 64

    def test_execution_knobs_do_not_change_the_key(self):
        digest = payload_digest("(C);")
        serial = result_cache_key(digest, _options(name="a.cif"))
        parallel = result_cache_key(
            digest, _options(name="a.cif", jobs=8, timeout=5)
        )
        assert serial == parallel

    def test_result_affecting_options_change_the_key(self):
        digest = payload_digest("(C);")
        base = result_cache_key(digest, _options())
        for payload in (
            {"name": "other.cif"},
            {"lambda": 300},
            {"hext": True},
            {"lint": True},
            {"keep_geometry": True},
        ):
            assert result_cache_key(digest, _options(**payload)) != base

    def test_different_payloads_never_collide(self):
        options = _options()
        assert result_cache_key(
            payload_digest("(C);"), options
        ) != result_cache_key(payload_digest("(E);"), options)


class TestMemoryLayer:
    def test_hit_miss_store_accounting(self):
        cache = ResultCache()
        key = "k" * 64
        assert cache.get(key) is None
        cache.put(key, _result())
        assert cache.get(key)["wirelist"] == "(DefPart ...)"
        snap = cache.stats_snapshot()
        assert snap == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "primed": 0,
            "memory_entries": 1,
            "persistent": False,
        }

    def test_lru_eviction(self):
        cache = ResultCache(memory_entries=2)
        cache.put("a" * 64, _result("A"))
        cache.put("b" * 64, _result("B"))
        cache.get("a" * 64)  # refresh A: B is now least recent
        cache.put("c" * 64, _result("C"))
        assert cache.get("a" * 64) is not None
        assert cache.get("c" * 64) is not None
        assert cache.get("b" * 64) is None  # evicted


class TestDiskLayer:
    def test_survives_a_new_instance(self, tmp_path):
        key = "f" * 64
        first = ResultCache(tmp_path / "results")
        first.put(key, _result("persisted"))

        second = ResultCache(tmp_path / "results")
        assert second.get(key)["wirelist"] == "persisted"
        # The disk hit was promoted into memory: no disk read next time.
        disk_hits = second._disk.stats.hits
        assert second.get(key)["wirelist"] == "persisted"
        assert second._disk.stats.hits == disk_hits

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        key = "e" * 64
        cache = ResultCache(tmp_path / "results")
        cache.put(key, _result())
        path = cache._disk.path_for(key)
        envelope = json.loads(path.read_text())
        envelope["result"]["wirelist"] = "tampered"
        path.write_text(json.dumps(envelope))

        fresh = ResultCache(tmp_path / "results")
        assert fresh.get(key) is None  # checksum mismatch: rejected
        assert fresh._disk.stats.invalid == 1

    def test_garbage_file_is_a_miss(self, tmp_path):
        key = "d" * 64
        cache = ResultCache(tmp_path / "results")
        cache.put(key, _result())
        cache._disk.path_for(key).write_text("not json {")

        fresh = ResultCache(tmp_path / "results")
        assert fresh.get(key) is None
        assert fresh._disk.stats.invalid == 1
