"""The scanline micro-benchmark module (quick sizes only)."""

from __future__ import annotations

import json

from repro.bench.scanline import bench_scanline, check_rows, load_baseline, main


class TestBenchScanline:
    def test_rows_have_counters_and_speedup(self):
        rows = bench_scanline(sizes=(8, 16), repeats=1, baseline={8: 1.0})
        assert [row["n"] for row in rows] == [8, 16]
        first = rows[0]
        assert first["speedup"] == 1.0 / first["seconds"]
        assert rows[1]["speedup"] is None  # size missing from baseline
        for row in rows:
            assert row["devices"] == row["n"] ** 2
            assert row["counters"]["heap_pushes"] > 0

    def test_invariants_hold_on_real_runs(self):
        rows = bench_scanline(sizes=(8, 16), repeats=1, baseline={})
        assert check_rows(rows) == []

    def test_check_rows_flags_violations(self):
        rows = bench_scanline(sizes=(8,), repeats=1, baseline={})
        rows[0]["counters"]["heap_pops"] += 1
        problems = check_rows(rows)
        assert any("pushes" in p for p in problems)

    def test_committed_baseline_loads(self):
        baseline = load_baseline()
        assert len(baseline) >= 3
        assert all(seconds > 0 for seconds in baseline.values())

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scanline.json"
        assert main(["--sizes", "8", "--repeats", "1",
                     "--out", str(out), "--check"]) == 0
        payload = json.loads(out.read_text())
        assert payload["rows"][0]["n"] == 8
        assert "invariants hold" in capsys.readouterr().out
