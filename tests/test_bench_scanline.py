"""The scanline micro-benchmark module (quick sizes only)."""

from __future__ import annotations

import json

import pytest

from repro.bench.scanline import (
    BaselineError,
    bench_scanline,
    check_rows,
    load_baseline,
    load_baseline_overheads,
    main,
    resolve_bench_engines,
)
from repro.core.scanline import PROFILE_PHASES
from repro.core.stripengine import numpy_available


class TestBenchScanline:
    def test_rows_have_counters_and_speedup(self):
        rows = bench_scanline(
            sizes=(8, 16), repeats=1, baseline={8: 1.0},
            engines=["python"],
        )
        assert [row["n"] for row in rows] == [8, 16]
        first = rows[0]
        assert first["engine"] == "python"
        assert first["speedup"] == 1.0 / first["seconds"]
        assert rows[1]["speedup"] is None  # size missing from baseline
        for row in rows:
            assert row["devices"] == row["n"] ** 2
            assert row["counters"]["heap_pushes"] > 0
            # Python rows carry the identity comparison, never null, so
            # report consumers can bound the column uniformly.
            assert row["speedup_vs_python"] == 1.0
            assert "profile" not in row  # only with profile=True

    def test_invariants_hold_on_real_runs(self):
        rows = bench_scanline(sizes=(8, 16), repeats=1, baseline={})
        assert check_rows(rows) == []

    def test_check_rows_flags_violations(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"]
        )
        rows[0]["counters"]["heap_pops"] += 1
        problems = check_rows(rows)
        assert any("pushes" in p for p in problems)

    def test_check_rows_flags_engine_counter_divergence(self):
        row = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"]
        )[0]
        rogue = {**row, "engine": "numpy",
                 "counters": {**row["counters"]}}
        rogue["counters"]["intervals_scanned"] += 1
        problems = check_rows([row, rogue])
        assert any("diverge" in p for p in problems)

    def test_committed_baseline_loads(self):
        baseline = load_baseline()
        assert len(baseline) >= 3
        assert all(seconds > 0 for seconds in baseline.values())

    def test_committed_baseline_has_overhead_bounds(self):
        bounds = load_baseline_overheads()
        assert bounds  # the committed capture carries the new field
        assert all(bound >= 1 for bound in bounds.values())

    def test_overhead_bounds_tolerate_legacy_captures(self, tmp_path):
        legacy = tmp_path / "old.json"
        legacy.write_text(
            json.dumps({"rows": [{"n": 8, "seconds": 1.0}]})
        )
        assert load_baseline(legacy) == {8: 1.0}
        assert load_baseline_overheads(legacy) == {}

    def test_check_rows_flags_overhead_regression(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"]
        )
        overhead = rows[0]["counters"]["max_stop_overhead"]
        assert check_rows(rows, overhead_bounds={8: overhead}) == []
        problems = check_rows(rows, overhead_bounds={8: overhead - 1})
        assert any("baseline bound" in p for p in problems)

    def test_profile_rows_cover_every_phase(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"],
            profile=True,
        )
        profile = rows[0]["profile"]
        assert set(profile) == set(PROFILE_PHASES)
        assert all(seconds >= 0.0 for seconds in profile.values())

    def test_main_profile_writes_sibling_artifact(self, tmp_path):
        out = tmp_path / "BENCH_scanline.json"
        assert main(["--sizes", "8", "--repeats", "1",
                     "--out", str(out), "--profile"]) == 0
        sibling = tmp_path / "BENCH_scanline_profile.json"
        payload = json.loads(sibling.read_text())
        assert payload["phases"] == list(PROFILE_PHASES)
        assert payload["rows"][0]["n"] == 8
        assert set(payload["rows"][0]["profile"]) == set(PROFILE_PHASES)
        # The main report rows carry the same breakdown inline.
        report = json.loads(out.read_text())
        assert set(report["rows"][0]["profile"]) == set(PROFILE_PHASES)

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scanline.json"
        assert main(["--sizes", "8", "--repeats", "1",
                     "--out", str(out), "--check"]) == 0
        payload = json.loads(out.read_text())
        assert payload["rows"][0]["n"] == 8
        assert payload["rows"][0]["engine"] == "python"
        assert "invariants hold" in capsys.readouterr().out


class TestEngineAxis:
    def test_both_always_includes_python(self):
        engines, _ = resolve_bench_engines("both")
        assert engines[0] == "python"

    def test_both_matches_numpy_availability(self):
        engines, notes = resolve_bench_engines("both")
        if numpy_available():
            assert engines == ["python", "numpy"]
            assert notes == []
        else:
            assert engines == ["python"]
            assert any("numpy" in note for note in notes)

    @pytest.mark.skipif(
        not numpy_available(), reason="numpy strip engine not importable"
    )
    def test_cross_engine_rows_and_speedup(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={},
            engines=["python", "numpy"],
        )
        assert [r["engine"] for r in rows] == ["python", "numpy"]
        py, np_ = rows
        assert py["speedup_vs_python"] == 1.0
        assert np_["speedup_vs_python"] == pytest.approx(
            py["seconds"] / np_["seconds"]
        )
        # Host counters are engine-independent -- the implicit parity
        # probe check_rows enforces.
        assert py["counters"] == np_["counters"]
        assert check_rows(rows) == []


class TestBaselineErrors:
    def test_missing_capture_is_a_clear_error(self, tmp_path):
        with pytest.raises(BaselineError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_is_a_clear_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(bad)

    def test_schema_mismatch_is_a_clear_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rows": [{"mesh": 8}]}))
        with pytest.raises(BaselineError, match="capture\\s+schema"):
            load_baseline(bad)

    def test_main_exits_2_with_message_not_traceback(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "gone.json"
        code = main(
            ["--sizes", "8", "--repeats", "1", "--baseline", str(missing),
             "--out", str(tmp_path / "out.json")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "Traceback" not in captured.err
