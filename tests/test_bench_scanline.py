"""The scanline micro-benchmark module (quick sizes only)."""

from __future__ import annotations

import json

import pytest

from repro.bench.scanline import (
    BaselineError,
    bench_scanline,
    check_rows,
    load_baseline,
    main,
    resolve_bench_engines,
)
from repro.core.stripengine import numpy_available


class TestBenchScanline:
    def test_rows_have_counters_and_speedup(self):
        rows = bench_scanline(
            sizes=(8, 16), repeats=1, baseline={8: 1.0},
            engines=["python"],
        )
        assert [row["n"] for row in rows] == [8, 16]
        first = rows[0]
        assert first["engine"] == "python"
        assert first["speedup"] == 1.0 / first["seconds"]
        assert rows[1]["speedup"] is None  # size missing from baseline
        for row in rows:
            assert row["devices"] == row["n"] ** 2
            assert row["counters"]["heap_pushes"] > 0

    def test_invariants_hold_on_real_runs(self):
        rows = bench_scanline(sizes=(8, 16), repeats=1, baseline={})
        assert check_rows(rows) == []

    def test_check_rows_flags_violations(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"]
        )
        rows[0]["counters"]["heap_pops"] += 1
        problems = check_rows(rows)
        assert any("pushes" in p for p in problems)

    def test_check_rows_flags_engine_counter_divergence(self):
        row = bench_scanline(
            sizes=(8,), repeats=1, baseline={}, engines=["python"]
        )[0]
        rogue = {**row, "engine": "numpy",
                 "counters": {**row["counters"]}}
        rogue["counters"]["intervals_scanned"] += 1
        problems = check_rows([row, rogue])
        assert any("diverge" in p for p in problems)

    def test_committed_baseline_loads(self):
        baseline = load_baseline()
        assert len(baseline) >= 3
        assert all(seconds > 0 for seconds in baseline.values())

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scanline.json"
        assert main(["--sizes", "8", "--repeats", "1",
                     "--out", str(out), "--check"]) == 0
        payload = json.loads(out.read_text())
        assert payload["rows"][0]["n"] == 8
        assert payload["rows"][0]["engine"] == "python"
        assert "invariants hold" in capsys.readouterr().out


class TestEngineAxis:
    def test_both_always_includes_python(self):
        engines, _ = resolve_bench_engines("both")
        assert engines[0] == "python"

    def test_both_matches_numpy_availability(self):
        engines, notes = resolve_bench_engines("both")
        if numpy_available():
            assert engines == ["python", "numpy"]
            assert notes == []
        else:
            assert engines == ["python"]
            assert any("numpy" in note for note in notes)

    @pytest.mark.skipif(
        not numpy_available(), reason="numpy strip engine not importable"
    )
    def test_cross_engine_rows_and_speedup(self):
        rows = bench_scanline(
            sizes=(8,), repeats=1, baseline={},
            engines=["python", "numpy"],
        )
        assert [r["engine"] for r in rows] == ["python", "numpy"]
        py, np_ = rows
        assert py["speedup_vs_python"] is None
        assert np_["speedup_vs_python"] == pytest.approx(
            py["seconds"] / np_["seconds"]
        )
        # Host counters are engine-independent -- the implicit parity
        # probe check_rows enforces.
        assert py["counters"] == np_["counters"]
        assert check_rows(rows) == []


class TestBaselineErrors:
    def test_missing_capture_is_a_clear_error(self, tmp_path):
        with pytest.raises(BaselineError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_is_a_clear_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(bad)

    def test_schema_mismatch_is_a_clear_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rows": [{"mesh": 8}]}))
        with pytest.raises(BaselineError, match="capture\\s+schema"):
            load_baseline(bad)

    def test_main_exits_2_with_message_not_traceback(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "gone.json"
        code = main(
            ["--sizes", "8", "--repeats", "1", "--baseline", str(missing),
             "--out", str(tmp_path / "out.json")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "Traceback" not in captured.err
