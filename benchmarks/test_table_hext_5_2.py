"""HEXT Table 5-2: analysis of the back-end.

Paper columns: calls to the flat extractor, calls to compose, back-end
time, time composing, percent composing -- averaging 72% and motivating
"it is more important to optimize the algorithms for the compose routine
than those for the flat extractor".
"""

from __future__ import annotations

import pytest

from repro.bench import DEFAULT_SCALE, format_table, run_suite
from repro.hext import hext_extract
from repro.workloads import build_chip

#: Paper's numbers: (flat calls, compose calls, % composing).
PAPER = {
    "cherry": (205, 463, 47),
    "dchip": (375, 1886, 66),
    "schip2": (538, 6409, 94),
    "testram": (45, 1089, 86),
    "psc": (3756, 11565, 79),
    "riscb": (1499, 8785, 60),
}

NAMES = tuple(PAPER)


@pytest.fixture(scope="module")
def rows():
    return run_suite(scale=DEFAULT_SCALE, names=NAMES, with_hext=True)


def test_table_hext_5_2(benchmark, rows, register_table):
    body = []
    shares = []
    for row in rows:
        stats = row.hext_stats
        share = 100.0 * stats.compose_share
        shares.append(share)
        paper = PAPER[row.name]
        body.append(
            [
                row.name,
                row.devices,
                stats.flat_calls,
                stats.compose_calls,
                f"{stats.backend_seconds:.2f}s",
                f"{share:.0f}%",
                paper[0],
                paper[1],
                f"{paper[2]}%",
            ]
        )
    register_table(
        "hext table 5-2",
        format_table(
            [
                "chip",
                "devices",
                "flat calls",
                "composes",
                "back-end",
                "% compose",
                "paper flat",
                "paper comp",
                "paper %",
            ],
            body,
            title=f"HEXT Table 5-2 (scale={DEFAULT_SCALE:g}): back-end analysis",
        ),
    )

    # Composing dominates the back-end on average (paper: 72%).
    mean_share = sum(shares) / len(shares)
    assert mean_share > 50.0
    # Compose calls far outnumber flat-extractor calls, as in the paper.
    for row in rows:
        assert row.hext_stats.compose_calls > row.hext_stats.flat_calls

    benchmark.pedantic(
        lambda lay: hext_extract(lay).stats.compose_calls,
        args=(build_chip("cherry", DEFAULT_SCALE),),
        rounds=3,
        iterations=1,
    )
