"""Serial vs parallel vs cached HEXT: the execute-phase scaling table.

Not a paper table — the 1983 systems were single-process — but the same
measurement discipline: one workload, every configuration, wirelists
equivalence-checked against the serial run.  The workload is
``distinct_cell_grid``: every cell unique, so the execute phase has
``cells`` independent flat extractions to distribute (the memo table's
worst case and the pool's best case).

The speedup assertion only runs on multi-core hosts; a single-CPU
machine cannot make four workers faster than one, and the honest result
there is "parallelism does not help" (see docs/PARALLELISM.md).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import distinct_cell_grid, format_table, scaling_run
from repro.hext import hext_extract

#: Distinct cells == unique windows the execute phase can fan out.
CELLS = 8
REPEATS = 2
BOXES = int(4000 * float(os.environ.get("REPRO_BENCH_SCALE", "1")))


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    layout = distinct_cell_grid(cells=CELLS, repeats=REPEATS, boxes=BOXES)
    return layout, str(tmp_path_factory.mktemp("fragment-cache"))


@pytest.fixture(scope="module")
def rows(workload):
    layout, cache_dir = workload
    return scaling_run(layout, jobs_levels=(1, 2, 4), cache_dir=cache_dir)


def test_parallel_scaling(benchmark, workload, rows, register_table):
    serial = rows[0]
    body = [
        [
            row.label,
            f"{row.seconds:.2f}s",
            f"{serial.seconds / row.seconds:.2f}x",
            row.flat_calls,
            f"{100 * row.cache_hit_rate:.0f}%"
            if row.cache_hits or row.cache_misses
            else "-",
            "yes" if row.equivalent else "NO",
        ]
        for row in rows
    ]
    register_table(
        "parallel scaling",
        format_table(
            ["run", "wall", "speedup", "flat calls", "cache hits", "equiv"],
            body,
            title=(
                f"HEXT execute-phase scaling ({CELLS} unique windows x "
                f"{BOXES} boxes, {os.cpu_count()} CPUs)"
            ),
        ),
    )

    by_label = {row.label: row for row in rows}

    # Correctness bar: every configuration reproduces the serial circuit.
    for row in rows:
        assert row.equivalent, f"{row.label} diverged from serial wirelist"

    # Warm cache serves every unique window without re-extraction.
    warm = by_label["cache warm"]
    assert warm.flat_calls == 0
    assert warm.cache_hit_rate >= 0.90

    # The steady-state design-iteration cost: a fully warm cache run.
    layout, cache_dir = workload
    benchmark.pedantic(
        lambda: hext_extract(layout, cache=cache_dir).stats.cache_hits,
        rounds=3,
        iterations=1,
    )

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU host: no parallel speedup possible")
    assert by_label["jobs=4"].seconds < by_label["jobs=1"].seconds, (
        "jobs=4 not faster than jobs=1 on a multi-core host"
    )
