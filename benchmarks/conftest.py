"""Benchmark-suite plumbing.

Each benchmark module reproduces one table or figure of the paper and
registers its rendered table here; a terminal-summary hook prints every
registered table at the end of the run (so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures them), and a copy is
written under ``benchmarks/results/``.

Scale: device counts default to 1/16 of the paper's (pure Python is two
orders of magnitude slower per box than 1983 C on a VAX).  Set
``REPRO_BENCH_SCALE`` to run larger.
"""

from __future__ import annotations

import os
import re

import pytest

_TABLES: list[str] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def register_table():
    """Register a rendered table for terminal summary + results file."""

    def _register(name: str, text: str) -> None:
        _TABLES.append(text)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")
        with open(os.path.join(_RESULTS_DIR, f"{slug}.txt"), "w") as handle:
            handle.write(text)

    return _register


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables")
    for text in _TABLES:
        terminalreporter.write(text)
        terminalreporter.write("\n")
