"""ACE Table 5-2: ACE vs Partlist (raster) vs Cifplot (region merge).

The paper's ordering -- ACE fastest, the raster scanner ~2-3x slower,
Cifplot several times slower again and unable to finish the big chips --
is the reproduced shape.  The '-' entries mirror the paper's: baselines
are not run above their size limits.
"""

from __future__ import annotations

import pytest

from repro.baselines import extract_raster
from repro.bench import DEFAULT_SCALE, format_table, run_suite
from repro.workloads import build_chip

#: Chips in the paper's Table 5-2.
NAMES = ("cherry", "dchip", "schip2", "testram", "riscb")


@pytest.fixture(scope="module")
def rows():
    return run_suite(scale=DEFAULT_SCALE, names=NAMES, with_baselines=True)


def test_table_ace_5_2(benchmark, rows, register_table):
    headers = ["chip", "devices", "ACE", "Partlist*", "Cifplot*"]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                row.devices,
                f"{row.ace_seconds:.2f}s",
                f"{row.raster_seconds:.2f}s" if row.raster_seconds else "-",
                f"{row.polyflat_seconds:.2f}s" if row.polyflat_seconds else "-",
            ]
        )
    register_table(
        "ace table 5-2",
        format_table(
            headers,
            body,
            title=(
                f"ACE Table 5-2 (scale={DEFAULT_SCALE:g}): "
                "*reimplemented baselines (raster / region-merge)"
            ),
        ),
    )

    # Ordering: ACE beats the raster scan on every chip; the region
    # merger is slowest wherever it ran.
    for row in rows:
        if row.raster_seconds is not None:
            assert row.ace_seconds < row.raster_seconds, row.name
        if row.polyflat_seconds is not None and row.raster_seconds is not None:
            assert row.raster_seconds < row.polyflat_seconds, row.name

    benchmark.pedantic(
        extract_raster,
        args=(build_chip("cherry", DEFAULT_SCALE),),
        rounds=3,
        iterations=1,
    )


def test_raster_slowdown_factor(benchmark, rows):
    """The paper's ACE/Partlist factor is 1.7-2.6x; ours lands nearby."""
    factors = [
        row.raster_seconds / row.ace_seconds
        for row in rows
        if row.raster_seconds is not None
    ]
    assert factors, "no raster measurements"
    mean = sum(factors) / len(factors)
    assert 1.3 < mean < 8.0
    benchmark.pedantic(
        extract_raster,
        args=(build_chip("dchip", DEFAULT_SCALE),),
        rounds=3,
        iterations=1,
    )
