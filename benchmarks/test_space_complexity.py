"""ACE section 4, space complexity.

"Thus the overall expected space complexity of ACE is O(N).  This result
corresponds to actual observations."  Two claims are measured here under
the random-square model:

* total extraction memory grows linearly in N (nets and devices must be
  held until the scanline reaches the bottom, because "two nets that
  were earlier distinct can be merged after they have been output");
* the scanline working set -- active lists plus the front-end's pending
  heap -- stays O(sqrt N), far below the O(N) output state.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.bench import format_table
from repro.core import extract_report
from repro.workloads import random_squares

SIZES = (1000, 4000, 16000)


def _measure(n: int) -> dict:
    layout = random_squares(n, seed=7)
    tracemalloc.start()
    report = extract_report(layout)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "n": n,
        "peak_kb": peak / 1024.0,
        "peak_active": report.stats.peak_active,
        "peak_pending": report.frontend_stats.peak_pending,
        "nets": len(report.circuit.nets),
    }


@pytest.fixture(scope="module")
def series():
    return [_measure(n) for n in SIZES]


def test_space_complexity(benchmark, series, register_table):
    body = [
        [
            row["n"],
            f"{row['peak_kb']:.0f}",
            f"{row['peak_kb'] / row['n']:.2f}",
            row["peak_active"],
            row["peak_pending"],
            row["nets"],
        ]
        for row in series
    ]
    register_table(
        "ace space complexity",
        format_table(
            [
                "N boxes",
                "Peak KiB",
                "KiB/box",
                "Peak active",
                "Peak pending",
                "Nets out",
            ],
            body,
            title="ACE section 4: space under the random-square model",
        ),
    )

    # Linear total space: per-box memory stays in a narrow band.
    per_box = [row["peak_kb"] / row["n"] for row in series]
    assert max(per_box) / min(per_box) < 2.0

    # O(sqrt N) working set: active list roughly doubles per 4x N and
    # stays far below N.
    for prev, cur in zip(series, series[1:]):
        ratio = cur["peak_active"] / prev["peak_active"]
        assert 1.2 < ratio < 3.5, ratio
    for row in series:
        assert row["peak_active"] < row["n"] / 4

    benchmark.pedantic(_measure, args=(1000,), rounds=2, iterations=1)


def test_frontend_space_depends_on_hierarchy(benchmark, register_table):
    """Section 4: front-end space is 'between O(log N) and O(N)
    depending on the amount of hierarchy present'.

    The random-square model is a fully flat description -- its pending
    heap holds every box (the O(N) end).  A binary-tree array keeps
    unexpanded subtrees folded, so its pending working set stays a small
    fraction of the box count (toward the other end).
    """
    from repro.workloads import transistor_array

    flat = extract_report(random_squares(4096, seed=7))
    tree = extract_report(transistor_array(64))  # 4096 cells, 8192 boxes
    flat_pending = flat.frontend_stats.peak_pending
    tree_pending = tree.frontend_stats.peak_pending
    tree_boxes = tree.stats.boxes_in
    register_table(
        "ace frontend space",
        format_table(
            ["description", "boxes", "peak pending", "fraction"],
            [
                ["flat (random model)", flat.stats.boxes_in, flat_pending,
                 f"{flat_pending / flat.stats.boxes_in:.2f}"],
                ["binary-tree array", tree_boxes, tree_pending,
                 f"{tree_pending / tree_boxes:.2f}"],
            ],
            title="ACE section 4: front-end space vs hierarchy",
        ),
    )
    assert flat_pending == flat.stats.boxes_in  # flat: everything pends
    assert tree_pending < tree_boxes / 4  # hierarchy keeps cells folded
    benchmark.pedantic(
        extract_report, args=(transistor_array(32),), rounds=2, iterations=1
    )
