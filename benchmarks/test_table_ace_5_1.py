"""ACE Table 5-1: performance across the chip suite.

Paper columns: devices, boxes (thousands), user+sys time, devices/sec,
boxes/sec -- with the headline observation that boxes/sec is roughly
constant over a 70x size range, i.e. run time is linear in the number of
boxes.  Absolute rates here are Python-on-2020s-hardware, not C-on-a-
VAX-11/780; the *linearity* is the reproduced result.
"""

from __future__ import annotations

import pytest

from repro.bench import DEFAULT_SCALE, format_table, run_suite
from repro.core import extract_report
from repro.workloads import SPEC_BY_NAME, build_chip


@pytest.fixture(scope="module")
def suite_rows():
    return run_suite(scale=DEFAULT_SCALE)


def test_table_ace_5_1(benchmark, suite_rows, register_table):
    headers = [
        "Name",
        "Devices",
        "Boxes(k)",
        "Time",
        "Devs/sec",
        "Boxes/sec",
        "Paper devs",
        "Paper boxes(k)",
    ]
    rows = []
    for row in suite_rows:
        spec = SPEC_BY_NAME[row.name]
        rows.append(
            [
                row.name,
                row.devices,
                row.boxes / 1000.0,
                f"{row.ace_seconds:.2f}s",
                row.devices_per_second,
                row.boxes_per_second,
                spec.paper_devices,
                spec.paper_boxes_thousands,
            ]
        )
    register_table(
        "ace table 5-1",
        format_table(
            headers,
            rows,
            title=f"ACE Table 5-1 (scale={DEFAULT_SCALE:g}): measured vs paper",
        ),
    )

    # Linearity in boxes: the boxes/sec column stays within a modest
    # band across the suite (the paper's spans 83..123 boxes/sec, a
    # ratio of 1.5; allow 3x for Python timer noise at small scale).
    rates = [row.boxes_per_second for row in suite_rows]
    assert max(rates) / min(rates) < 3.0

    # pytest-benchmark datum: one mid-size chip extraction.
    layout = build_chip("dchip", DEFAULT_SCALE)
    benchmark.pedantic(extract_report, args=(layout,), rounds=3, iterations=1)


def test_time_scales_linearly_with_boxes(benchmark, suite_rows):
    """Biggest vs smallest chip: time ratio tracks box ratio."""
    small = min(suite_rows, key=lambda r: r.boxes)
    large = max(suite_rows, key=lambda r: r.boxes)
    box_ratio = large.boxes / small.boxes
    time_ratio = large.ace_seconds / small.ace_seconds
    # Linear within a factor 2.5 band (not quadratic: box_ratio ~ 70).
    assert time_ratio < box_ratio * 2.5
    assert time_ratio > box_ratio / 2.5
    benchmark.pedantic(
        extract_report,
        args=(build_chip("cherry", DEFAULT_SCALE),),
        rounds=3,
        iterations=1,
    )
