"""HEXT Table 4-1: the ideal case, a square array of identical cells.

Paper result: for every four-fold increase in cells, HEXT's time (after
subtracting k, the one-cell extraction + init cost) roughly *doubles* --
the O(sqrt N) behaviour of the compose recurrence -- while the flat
extractor grows linearly (4x per step).

Paper sizes were 1K..256K cells; the same shape shows at 256..16K here
(set REPRO_BENCH_HEXT_MAX to change the top size).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import format_table, timed
from repro.core import extract_report
from repro.hext import hext_extract
from repro.workloads import transistor_array

MAX_CELLS = int(os.environ.get("REPRO_BENCH_HEXT_MAX", "65536"))

#: Paper's measurements for reference (cells -> (hext_s, hext_minus_k_s, flat_s)).
PAPER = {
    1024: (7.6, 1.6, 25.5),
    4096: (9.2, 3.2, 103.6),
    16384: (12.8, 6.8, 410.1),
    65536: (18.7, 12.7, 1844.1),
    262144: (33.8, 27.8, None),
}


def _hext_seconds(layout) -> tuple[float, float]:
    """(extraction seconds, flatten seconds).

    The paper's HEXT column measures hierarchical extraction; producing
    a flat wirelist is a separate pass "linear in the number of devices"
    (HEXT section 4), reported here in its own column.
    """
    result = hext_extract(layout)
    result.circuit  # triggers the flatten/resolve pass
    stats = result.stats
    return (
        stats.frontend_seconds + stats.backend_seconds,
        stats.resolve_seconds,
    )


@pytest.fixture(scope="module")
def series():
    # k: the cost of extracting one cell, as in the paper's table.
    k = _hext_seconds(transistor_array(1))[0]
    rows = []
    cells = 1024
    while cells <= MAX_CELLS:
        side = int(cells**0.5)
        layout = transistor_array(side)
        hext_seconds, resolve_seconds = _hext_seconds(layout)
        flat_seconds = timed(extract_report, layout).seconds
        rows.append(
            {
                "cells": cells,
                "hext": hext_seconds,
                "hext_minus_k": max(1e-9, hext_seconds - k),
                "resolve": resolve_seconds,
                "flat": flat_seconds,
            }
        )
        cells *= 4
    return k, rows


def test_table_hext_4_1(benchmark, series, register_table):
    k, rows = series
    body = []
    for row in rows:
        paper = PAPER.get(row["cells"])
        body.append(
            [
                row["cells"],
                f"{row['hext']:.3f}",
                f"{row['hext_minus_k']:.3f}",
                f"{row['resolve']:.3f}",
                f"{row['flat']:.3f}",
                f"{paper[1]:.1f}" if paper else "-",
                f"{paper[2]:.1f}" if paper and paper[2] else "-",
            ]
        )
    register_table(
        "hext table 4-1",
        format_table(
            [
                "Cells",
                "HEXT(s)",
                "HEXT-k(s)",
                "flatten(s)",
                "flat(s)",
                "paper HEXT-k",
                "paper flat",
            ],
            body,
            title=f"HEXT Table 4-1 (k = {k:.3f}s): ideal-case square arrays",
        ),
    )

    # Shape: per 4x cells, HEXT grows well under 4x (theory: 2x), flat
    # grows ~4x (theory: linear).
    for prev, cur in zip(rows, rows[1:]):
        hext_ratio = cur["hext_minus_k"] / prev["hext_minus_k"]
        flat_ratio = cur["flat"] / prev["flat"]
        assert hext_ratio < 3.0, hext_ratio
        assert flat_ratio > 2.5, flat_ratio
        assert hext_ratio < flat_ratio

    # At the largest size the speedup is over an order of magnitude,
    # the paper's headline ("more than an order of magnitude speedup
    # for regular designs").
    assert rows[-1]["flat"] / rows[-1]["hext"] > 10

    benchmark.pedantic(
        _hext_seconds, args=(transistor_array(32),), rounds=3, iterations=1
    )
