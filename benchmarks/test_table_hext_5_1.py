"""HEXT Table 5-1: hierarchical vs flat extraction on the chip suite.

Paper shape: HEXT wins dramatically on the regular memory chip (testram:
1:36 vs 26:36) and on repetitive designs, but *loses* to flat ACE on the
irregular chips (schip2: 27:48 vs 18:12) because subdivision produces
thousands of small unique windows whose composition dominates.
"""

from __future__ import annotations

import pytest

from repro.bench import DEFAULT_SCALE, format_table, run_suite
from repro.hext import hext_extract
from repro.workloads import build_chip

#: Paper's totals for the side-by-side column (min:sec).
PAPER = {
    "cherry": ("2:01", "1:05"),
    "dchip": ("7:04", "10:12"),
    "schip2": ("27:48", "18:12"),
    "testram": ("1:36", "26:36"),
    "psc": ("49:11", "41:14"),
    "riscb": ("27:16", "92:12"),
}

NAMES = tuple(PAPER)


@pytest.fixture(scope="module")
def rows():
    return run_suite(scale=DEFAULT_SCALE, names=NAMES, with_hext=True)


def test_table_hext_5_1(benchmark, rows, register_table):
    body = []
    for row in rows:
        stats = row.hext_stats
        body.append(
            [
                row.name,
                row.devices,
                f"{stats.frontend_seconds:.2f}s",
                f"{stats.backend_seconds:.2f}s",
                f"{stats.frontend_seconds + stats.backend_seconds:.2f}s",
                f"{row.ace_seconds:.2f}s",
                PAPER[row.name][0],
                PAPER[row.name][1],
            ]
        )
    register_table(
        "hext table 5-1",
        format_table(
            [
                "chip",
                "devices",
                "HEXT fe",
                "HEXT be",
                "HEXT total",
                "ACE flat",
                "paper HEXT",
                "paper ACE",
            ],
            body,
            title=f"HEXT Table 5-1 (scale={DEFAULT_SCALE:g})",
        ),
    )

    by_name = {row.name: row for row in rows}
    # The regular memory chip: HEXT well ahead of flat.
    def hext_time(row):
        return row.hext_stats.frontend_seconds + row.hext_stats.backend_seconds

    testram = by_name["testram"]
    assert hext_time(testram) < testram.ace_seconds
    # The irregular chips: HEXT behind flat, as in the paper.
    for name in ("schip2", "psc"):
        row = by_name[name]
        assert hext_time(row) > row.ace_seconds, name
    # Device counts agree between the two extractors everywhere.
    for row in rows:
        assert row.hext_devices == row.devices, row.name

    benchmark.pedantic(
        lambda lay: hext_extract(lay).circuit,
        args=(build_chip("testram", DEFAULT_SCALE),),
        rounds=3,
        iterations=1,
    )
