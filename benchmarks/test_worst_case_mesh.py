"""ACE section 4: the O(N^2) worst case.

"The worst case occurs when N horizontal poly lines intersect N vertical
diffusion lines, forming a mesh with N^2 transistors.  Since each of the
N^2 transistors has to be found by the extractor, the complexity is at
least N^2."  2N boxes in, N^2 devices out: time per *box* must blow up
even though time per *device* stays sane.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, timed
from repro.core import extract_report
from repro.workloads import poly_diff_mesh

SIZES = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def series():
    rows = []
    for n in SIZES:
        run = timed(extract_report, poly_diff_mesh(n))
        circuit = run.result.circuit
        rows.append(
            {
                "n": n,
                "boxes": 2 * n,
                "devices": len(circuit.devices),
                "seconds": run.seconds,
            }
        )
    return rows


def test_worst_case_mesh(benchmark, series, register_table):
    body = [
        [
            row["n"],
            row["boxes"],
            row["devices"],
            f"{row['seconds']:.3f}",
            f"{row['seconds'] / row['boxes'] * 1e3:.2f}",
            f"{row['seconds'] / row['devices'] * 1e6:.1f}",
        ]
        for row in series
    ]
    register_table(
        "ace worst case mesh",
        format_table(
            ["n", "Boxes", "Devices", "Time(s)", "ms/box", "us/device"],
            body,
            title="ACE section 4 worst case: n x n poly/diffusion mesh",
        ),
    )

    for row in series:
        assert row["devices"] == row["n"] ** 2

    # Quadratic in boxes: per-box time grows ~linearly with n ...
    first, last = series[0], series[-1]
    per_box_growth = (last["seconds"] / last["boxes"]) / (
        first["seconds"] / first["boxes"]
    )
    n_growth = last["n"] / first["n"]
    assert per_box_growth > n_growth / 2.5
    # ... while per-device time stays bounded (output-dominated).
    per_dev = [row["seconds"] / row["devices"] for row in series]
    assert max(per_dev) / min(per_dev) < 4.0

    benchmark.pedantic(
        extract_report, args=(poly_diff_mesh(16),), rounds=3, iterations=1
    )
