"""ACE section 4: the expected-complexity claims, verified empirically.

Under the Bentley-Haken-Hon model (N random 8-lambda squares over a
[0.8 sqrt(N) lambda]^2 region), both the number of scanline stops and
the expected active-list length are O(sqrt N), and the observed run
time is linear in N.  These are the analytic results behind Table 5-1's
linearity; this module regenerates the supporting series.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, timed
from repro.core import extract_report
from repro.workloads import random_squares

SIZES = (1000, 4000, 16000)


@pytest.fixture(scope="module")
def series():
    rows = []
    for n in SIZES:
        layout = random_squares(n, seed=42)
        run = timed(extract_report, layout)
        stats = run.result.stats
        rows.append(
            {
                "n": n,
                "stops": stats.stops,
                "mean_active": stats.mean_active,
                "peak_active": stats.peak_active,
                "seconds": run.seconds,
            }
        )
    return rows


def test_fig_complexity(benchmark, series, register_table):
    body = [
        [
            row["n"],
            row["stops"],
            round(row["mean_active"], 1),
            row["peak_active"],
            f"{row['seconds']:.3f}",
            f"{row['seconds'] / row['n'] * 1e6:.1f}",
        ]
        for row in series
    ]
    register_table(
        "ace complexity model",
        format_table(
            ["N boxes", "Stops", "Mean active", "Peak active", "Time(s)", "us/box"],
            body,
            title="ACE section 4: scanline statistics under the random-square model",
        ),
    )

    # Stops and active-list length scale as sqrt(N): a 4x N step should
    # roughly double them (allow 1.4x..3x).
    for prev, cur in zip(series, series[1:]):
        stop_ratio = cur["stops"] / prev["stops"]
        active_ratio = cur["mean_active"] / prev["mean_active"]
        assert 1.3 < stop_ratio < 3.2, stop_ratio
        assert 1.3 < active_ratio < 3.2, active_ratio

    # Observed time is linear in N: us/box stays in a narrow band.
    per_box = [row["seconds"] / row["n"] for row in series]
    assert max(per_box) / min(per_box) < 2.5

    benchmark.pedantic(
        extract_report, args=(random_squares(1000, seed=1),), rounds=3, iterations=1
    )
