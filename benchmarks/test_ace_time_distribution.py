"""ACE section 5: the coarse distribution of extraction time.

Paper: 40% parsing/interpreting/sorting the CIF (front-end), 15% entering
new geometry into lists, 20% computing devices and nets, 10% storage
allocation / IO / initialization, 15% miscellaneous.  We reproduce the
shape: the front-end is the largest consumer, device computation beats
list insertion.
"""

from __future__ import annotations

import pytest

from repro.bench import DEFAULT_SCALE, format_table
from repro.cif import write
from repro.core import extract_report
from repro.core.stats import PHASES
from repro.workloads import build_chip

#: The paper's reported shares, keyed to our phase names.
PAPER_SHARES = {
    "frontend": 40.0,
    "insert": 15.0,
    "devices": 20.0,
    "output": 10.0,
    "misc": 15.0,
}


@pytest.fixture(scope="module")
def distribution():
    # Go through actual CIF text so the front-end share includes real
    # parsing, exactly as the paper's 40% did.
    text = write(build_chip("schip2", DEFAULT_SCALE * 2))
    report = extract_report(text)
    return report.timer.percentages()


def test_time_distribution(benchmark, distribution, register_table):
    rows = [
        [phase, distribution[phase], PAPER_SHARES[phase]]
        for phase in PHASES
    ]
    register_table(
        "ace time distribution",
        format_table(
            ["Phase", "Measured %", "Paper %"],
            rows,
            title="ACE section 5: distribution of extraction time",
        ),
    )

    # Shape assertions, not exact percentages: the front-end is a large
    # consumer near the paper's 40%, and dominates bookkeeping phases.
    assert 25.0 < distribution["frontend"] < 60.0
    assert distribution["frontend"] > distribution["insert"]
    assert distribution["frontend"] > distribution["output"]
    assert distribution["devices"] > distribution["output"]
    assert sum(distribution.values()) == pytest.approx(100.0, abs=1.0)

    text = write(build_chip("cherry", DEFAULT_SCALE))
    benchmark.pedantic(extract_report, args=(text,), rounds=3, iterations=1)
