"""Switch-level simulation of extracted NMOS circuits."""

from .switchlevel import (
    HIGH,
    LOW,
    UNKNOWN,
    SimulationResult,
    SwitchSimulator,
)

__all__ = [
    "HIGH",
    "LOW",
    "SimulationResult",
    "SwitchSimulator",
    "UNKNOWN",
]
