"""Switch-level simulation of extracted NMOS circuits.

Section 1 of the paper places the extractor at the head of a tool chain:
"Logic simulators help validate the logical correctness" of the
extracted wirelist.  This module is that next tool: a unit-delay
switch-level simulator in the MOSSIM style (Bryant 1980) specialized to
ratioed NMOS.

Model:

* node values are ``0``, ``1`` or ``X`` at two strengths: *driven*
  (rails, user inputs, and anything reached from them through ON
  enhancement switches) and *weak* (depletion pullups);
* an enhancement transistor conducts when its gate is 1, blocks at 0,
  and conducts "maybe" at X;
* a depletion device whose gate is tied through to one of its own
  terminals (the standard load) is an always-on weak conductor;
* ratioed resolution: a driven 0 beats a weak 1 (that is what the 4:1
  ratio is *for*), and conflicting driven values resolve to X;
* X-gated switches are handled pessimistically: the circuit is solved
  with them open and closed, and nodes whose value differs become X.

The simulator iterates to a fixpoint of gate values; a circuit that
never settles (e.g. a ring oscillator) reports its unstable nodes as X.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.netlist import Circuit
from ..core.unionfind import UnionFind
from ..wirelist.flatten import FlatCircuit, circuit_to_flat

#: Node values.
LOW, HIGH, UNKNOWN = 0, 1, "X"

_DEFAULT_VDD = ("VDD", "VDD!", "Vdd")
_DEFAULT_GND = ("GND", "GND!", "Vss", "GROUND")


@dataclass(frozen=True, slots=True)
class _Switch:
    """One conducting edge: terminals a-b, gated by ``gate``.

    ``always_on`` marks depletion loads; their gate is ignored.
    """

    a: int
    b: int
    gate: int | None
    always_on: bool


@dataclass
class SimulationResult:
    """Settled node values by net id, with name lookup."""

    values: dict[int, object]
    names: dict[int, list[str]]
    settled: bool
    iterations: int
    unstable: set[int] = field(default_factory=set)

    def of(self, name: str) -> object:
        for net, names in self.names.items():
            if name in names:
                return self.values.get(net, UNKNOWN)
        raise KeyError(f"no net named {name!r}")


class SwitchSimulator:
    """Simulate an extracted circuit (or flat netlist) at switch level."""

    def __init__(
        self,
        circuit: "Circuit | FlatCircuit",
        *,
        vdd_names: tuple[str, ...] = _DEFAULT_VDD,
        gnd_names: tuple[str, ...] = _DEFAULT_GND,
        charge_retention: bool = False,
    ) -> None:
        #: With charge retention on, a node left with no driven or weak
        #: path keeps the value it last held -- the dynamic-node model
        #: that makes pass-transistor latches and one-transistor DRAM
        #: cells (the testram workload's world) simulate correctly.
        self.charge_retention = charge_retention
        self._charge: dict[int, object] = {}
        flat = (
            circuit
            if isinstance(circuit, FlatCircuit)
            else circuit_to_flat(circuit)
        )
        self._names = dict(flat.net_names)
        self._switches: list[_Switch] = []
        self._nodes: set[int] = set()
        self._vdd: set[int] = set()
        self._gnd: set[int] = set()
        for net, names in flat.net_names.items():
            if any(name in vdd_names for name in names):
                self._vdd.add(net)
            if any(name in gnd_names for name in names):
                self._gnd.add(net)
        for device in flat.devices:
            if device.source is None or device.drain is None:
                continue  # malformed devices conduct nothing useful
            for net in (device.source, device.drain, device.gate):
                if net is not None:
                    self._nodes.add(net)
            is_load = device.kind == "nDep" and (
                device.gate in (device.source, device.drain)
                or {device.source, device.drain} & self._vdd
            )
            self._switches.append(
                _Switch(
                    a=device.source,
                    b=device.drain,
                    gate=device.gate,
                    always_on=is_load,
                )
            )
        self._nodes |= self._vdd | self._gnd
        # Named nets participate even when no transistor touches them
        # (e.g. an unused input rail): they can still be driven and read.
        self._nodes.update(self._names)
        self._inputs: dict[int, object] = {}

    # -- driving inputs --------------------------------------------------

    def node_of(self, name: str) -> int:
        for net, names in self._names.items():
            if name in names:
                return net
        raise KeyError(f"no net named {name!r}")

    def set_input(self, name: str, value: object) -> None:
        if value not in (LOW, HIGH, UNKNOWN):
            raise ValueError(f"input value must be 0, 1 or 'X', got {value!r}")
        self._inputs[self.node_of(name)] = value

    def release_input(self, name: str) -> None:
        self._inputs.pop(self.node_of(name), None)

    # -- solving ---------------------------------------------------------

    def simulate(self, max_iterations: int = 200) -> SimulationResult:
        """Iterate switch states to a fixpoint and return node values."""
        values: dict[int, object] = {n: UNKNOWN for n in self._nodes}
        history: list[dict[int, object]] = []
        for iteration in range(1, max_iterations + 1):
            new_values = self._evaluate(values)
            if new_values == values:
                if self.charge_retention:
                    self._charge = dict(new_values)
                return SimulationResult(
                    values=new_values,
                    names=self._names,
                    settled=True,
                    iterations=iteration,
                )
            if any(new_values == h for h in history):
                # Oscillation: everything that still changes becomes X.
                unstable = {
                    n
                    for n in self._nodes
                    if any(h[n] != new_values[n] for h in history)
                }
                for n in unstable:
                    new_values[n] = UNKNOWN
                final = self._evaluate(new_values)
                return SimulationResult(
                    values=final,
                    names=self._names,
                    settled=False,
                    iterations=iteration,
                    unstable=unstable,
                )
            history.append(values)
            values = new_values
        return SimulationResult(
            values=values,
            names=self._names,
            settled=False,
            iterations=max_iterations,
            unstable=set(),
        )

    # -- one evaluation pass ------------------------------------------------

    def _evaluate(self, gates: dict[int, object]) -> dict[int, object]:
        """Node values given the current gate values.

        X-gated switches are resolved pessimistically by solving with
        them open and with them closed.
        """
        certain = self._solve(gates, x_gates_on=False)
        if any(
            not sw.always_on
            and sw.gate is not None
            and gates.get(sw.gate, UNKNOWN) == UNKNOWN
            for sw in self._switches
        ):
            optimistic = self._solve(gates, x_gates_on=True)
            return {
                n: certain[n] if certain[n] == optimistic[n] else UNKNOWN
                for n in self._nodes
            }
        return certain

    def _solve(
        self, gates: dict[int, object], x_gates_on: bool
    ) -> dict[int, object]:
        def conducting(sw: _Switch) -> bool:
            if sw.always_on:
                return True
            state = gates.get(sw.gate, UNKNOWN)
            if state == HIGH:
                return True
            if state == UNKNOWN:
                return x_gates_on
            return False

        # Phase 1: driven values flow through ON *enhancement* switches.
        strong = UnionFind()
        ids = {n: strong.make() for n in self._nodes}
        for sw in self._switches:
            if not sw.always_on and conducting(sw):
                strong.union(ids[sw.a], ids[sw.b])
        component_value: dict[int, object] = {}

        def drive(node: int, value: object) -> None:
            root = strong.find(ids[node])
            current = component_value.get(root)
            if current is None:
                component_value[root] = value
            elif current != value:
                component_value[root] = UNKNOWN

        for node in self._gnd:
            drive(node, LOW)
        for node in self._vdd:
            drive(node, HIGH)
        for node, value in self._inputs.items():
            drive(node, value)

        values: dict[int, object] = {}
        driven: set[int] = set()
        for node in self._nodes:
            root = strong.find(ids[node])
            if root in component_value:
                values[node] = component_value[root]
                driven.add(node)

        # Phase 2: weak pullups act on nodes not strongly driven; weak
        # values also spread through ON switches among undriven nodes
        # (ratioed NMOS: any strong path wins over the load).
        weak = UnionFind()
        wids = {n: weak.make() for n in self._nodes if n not in driven}
        pulled: dict[int, object] = {}

        def weak_drive(node: int, value: object) -> None:
            root = weak.find(wids[node])
            current = pulled.get(root)
            if current is None:
                pulled[root] = value
            elif current != value:
                pulled[root] = UNKNOWN

        for sw in self._switches:
            if not conducting(sw):
                continue
            if sw.a in wids and sw.b in wids:
                weak.union(wids[sw.a], wids[sw.b])
        for sw in self._switches:
            if not sw.always_on:
                continue
            # The load sources from VDD (driven side); the other
            # terminal gets the weak 1.
            for source, sink in ((sw.a, sw.b), (sw.b, sw.a)):
                if source in driven and sink in wids:
                    weak_drive(sink, values[source])

        # Floating components: retained charge (if enabled) or X.  All
        # nodes sharing the isolated component must agree on the stored
        # value, else the merged charge is unknown.
        floating_value: dict[int, object] = {}
        if self.charge_retention:
            for node in self._nodes:
                if node in driven:
                    continue
                root = weak.find(wids[node])
                if root in pulled:
                    continue
                stored = self._charge.get(node, UNKNOWN)
                current = floating_value.get(root)
                if current is None:
                    floating_value[root] = stored
                elif current != stored:
                    floating_value[root] = UNKNOWN

        for node in self._nodes:
            if node in driven:
                continue
            root = weak.find(wids[node])
            if root in pulled:
                values[node] = pulled[root]
            else:
                values[node] = floating_value.get(root, UNKNOWN)
        return values
