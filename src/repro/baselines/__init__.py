"""Baseline extractors the paper compares against (Table 5-2)."""

from .polyflat import extract_polyflat
from .raster import extract_raster

__all__ = ["extract_polyflat", "extract_raster"]
