"""Fixed-grid raster-scan extractor (the "Partlist" baseline).

Partlist (Baker 1980, Wendorf 1980) examines the chip "in a raster-scan
order (left to right, top to bottom) looking through an L-shaped window
containing three raster elements" over a fixed lambda grid.  The paper's
critique -- "a lot of time is wasted scanning over grid squares where no
information is to be gained ... a raster-based extractor must visit each
and every grid square spanned by the box" -- is exactly the property this
reimplementation preserves: rows are stored run-encoded, but the
L-window connectivity work runs **per occupied grid cell**, comparing
each cell against its left and top neighbours.

Empty cells are skipped via the run encoding (as Partlist's were); large
boxes still cost area/lambda^2 instead of ACE's per-edge work.  The
output is the same :class:`~repro.core.netlist.Circuit` model as ACE, so
results can be checked for netlist equivalence.
"""

from __future__ import annotations

from ..cif import Layout
from ..core.assemble import assemble_circuit
from ..core.netlist import Circuit
from ..core.unionfind import UnionFind
from ..frontend import instantiate
from ..tech import NMOS, Technology

# Layer-presence bits in a cell's mask.
_METAL, _POLY, _DIFF, _CUT, _IMPL, _BURIED = 1, 2, 4, 8, 16, 32


def extract_raster(
    layout: Layout,
    tech: Technology | None = None,
    *,
    grid: int | None = None,
) -> Circuit:
    """Extract ``layout`` by raster scan on a ``grid``-pitch lambda grid.

    ``grid`` defaults to the technology lambda.  Geometry is expected to
    be grid-aligned (the generators emit lambda grids); off-grid edges
    are snapped outward, which can merge features closer than one grid
    unit -- the constraint the paper notes fixed-grid extractors impose.
    """
    tech = tech or NMOS()
    pitch = grid or tech.lambda_
    boxes, labels = instantiate(layout)

    bit_of = {
        tech.conducting_layers[0].cif_name: _METAL,
        tech.channel_layers[1].cif_name: _POLY,
        tech.channel_layers[0].cif_name: _DIFF,
        tech.contact_layer.cif_name: _CUT,
        tech.depletion_marker.cif_name: _IMPL,
        tech.buried_layer.cif_name: _BURIED,
    }

    stack = [(bit_of[layer], box) for layer, box in boxes if layer in bit_of]
    if not stack:
        return Circuit(nets=[], devices=[])
    y_top = max(box.ymax for _, box in stack)
    y_bot = min(box.ymin for _, box in stack)
    stack.sort(key=lambda item: -item[1].ymax)

    nets = UnionFind()
    devs = UnionFind()
    net_loc: dict[int, tuple[int, int]] = {}
    net_names: dict[int, list[str]] = {}
    dev_rec: dict[int, dict] = {}
    unattached = []

    labels_left = sorted(labels, key=lambda lb: -lb.y)
    label_pos = 0

    metal_name = tech.conducting_layers[0].cif_name
    poly_name = tech.channel_layers[1].cif_name
    diff_name = tech.channel_layers[0].cif_name

    # Per-column state of the previous row (the top arm of the L-window).
    prev_metal: dict[int, int] = {}
    prev_poly: dict[int, int] = {}
    prev_diff: dict[int, int] = {}
    prev_chan: dict[int, int] = {}

    cursor = 0
    active: list = []
    cell_area = pitch * pitch

    def new_net(col: int, top: int) -> int:
        net = nets.make()
        net_loc[net] = (top, -col * pitch)
        return net

    row_top = -(-y_top // pitch) * pitch
    bottom = y_bot // pitch * pitch
    while row_top > bottom:
        row_bot = row_top - pitch
        while cursor < len(stack) and stack[cursor][1].ymax >= row_top:
            active.append(stack[cursor])
            cursor += 1
        if active:
            active = [item for item in active if item[1].ymin < row_top]

        # Rasterize the row: per-cell layer masks over occupied columns.
        mask: dict[int, int] = {}
        for bit, box in active:
            if box.ymin > row_bot:
                continue
            for col in range(box.xmin // pitch, -(-box.xmax // pitch)):
                mask[col] = mask.get(col, 0) | bit

        cur_metal: dict[int, int] = {}
        cur_poly: dict[int, int] = {}
        cur_diff: dict[int, int] = {}
        cur_chan: dict[int, int] = {}

        # The L-window pass, left to right over occupied cells only.
        for col in sorted(mask):
            bits = mask[col]
            is_chan = (
                bits & _DIFF and bits & _POLY and not bits & _BURIED
            )
            if bits & _METAL:
                net = cur_metal.get(col - 1)
                above = prev_metal.get(col)
                if net is None:
                    net = above if above is not None else new_net(col, row_top)
                elif above is not None:
                    net = nets.union(net, above)
                cur_metal[col] = net
            if bits & _POLY:  # poly conducts everywhere, channels included
                net = cur_poly.get(col - 1)
                above = prev_poly.get(col)
                if net is None:
                    net = above if above is not None else new_net(col, row_top)
                elif above is not None:
                    net = nets.union(net, above)
                cur_poly[col] = net
            if bits & _DIFF and not is_chan:
                net = cur_diff.get(col - 1)
                above = prev_diff.get(col)
                if net is None:
                    net = above if above is not None else new_net(col, row_top)
                elif above is not None:
                    net = nets.union(net, above)
                cur_diff[col] = net
            if is_chan:  # channel cells: track devices like nets
                dev = cur_chan.get(col - 1)
                above = prev_chan.get(col)
                if dev is None:
                    if above is not None:
                        dev = above
                    else:
                        dev = devs.make()
                        dev_rec[dev] = {
                            "area": 0,
                            "gates": set(),
                            "terms": {},
                            "loc": None,
                            "impl": False,
                        }
                elif above is not None:
                    dev = devs.union(dev, above)
                cur_chan[col] = dev
                rec = dev_rec[devs.find(dev)]
                rec["area"] += cell_area
                rec["gates"].add(cur_poly[col])
                if bits & _IMPL:
                    rec["impl"] = True
                loc = (row_top, -col * pitch)
                if rec["loc"] is None or loc > rec["loc"]:
                    rec["loc"] = loc
            if bits & _CUT:  # contact cut: union whatever conducts here
                present = [
                    table[col]
                    for table in (cur_metal, cur_poly, cur_diff)
                    if col in table
                ]
                for a, b in zip(present, present[1:]):
                    nets.union(a, b)
            if bits & _BURIED and bits & _POLY and bits & _DIFF:
                nets.union(cur_poly[col], cur_diff[col])

        # Terminal contacts: channel cells against adjacent diffusion.
        for col, dev in cur_chan.items():
            for dnet in (
                cur_diff.get(col - 1),
                cur_diff.get(col + 1),
                prev_diff.get(col),
            ):
                if dnet is None:
                    continue
                rec = dev_rec[devs.find(dev)]
                root = nets.find(dnet)
                rec["terms"][root] = rec["terms"].get(root, 0) + pitch
        for col, dnet in cur_diff.items():
            above = prev_chan.get(col)
            if above is not None:
                rec = dev_rec[devs.find(above)]
                root = nets.find(dnet)
                rec["terms"][root] = rec["terms"].get(root, 0) + pitch

        # Labels falling inside this row.
        while label_pos < len(labels_left) and labels_left[label_pos].y >= row_bot:
            label = labels_left[label_pos]
            label_pos += 1
            if label.y > row_top:
                unattached.append(label)
                continue
            col = label.x // pitch
            order = {
                metal_name: (cur_metal,),
                poly_name: (cur_poly,),
                diff_name: (cur_diff,),
            }.get(label.layer or "", (cur_metal, cur_poly, cur_diff))
            net = None
            for table in order:
                net = table.get(col)
                if net is None and label.x == col * pitch:
                    net = table.get(col - 1)  # point on a cell edge
                if net is not None:
                    break
            if net is None:
                unattached.append(label)
            else:
                net_names.setdefault(net, []).append(label.name)

        prev_metal, prev_poly, prev_diff, prev_chan = (
            cur_metal,
            cur_poly,
            cur_diff,
            cur_chan,
        )
        row_top = row_bot

    warnings = [
        f"label {label.name!r} at ({label.x}, {label.y}) "
        f"matches no conducting geometry"
        for label in unattached
    ]
    return assemble_circuit(
        tech, nets, devs, net_loc, net_names, dev_rec, warnings
    )
