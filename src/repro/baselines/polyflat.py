"""Region-merge flat extractor (the "Cifplot" baseline).

Cifplot (Fitzpatrick 1981) analyzed circuits directly from CIF layouts at
Berkeley; in the paper's Table 5-2 it is the slowest of the three
extractors and gives up beyond ~10k devices.  This baseline reproduces
that algorithm class: fully instantiate the artwork, build whole-chip
*regions* by geometric merging (union-find over box-to-box touch tests,
pruned only by an x-sorted sweep), cut transistor channels out of the
diffusion regions, and read the netlist off the region adjacencies.

Everything is computed on whole-chip box sets -- no scanline, no strips --
which is what makes it simple, memory-hungry, and slow, as the paper
reports.
"""

from __future__ import annotations

from ..cif import Layout
from ..core.netlist import Circuit
from ..core.unionfind import UnionFind
from ..frontend import instantiate
from ..geometry import Box, normalize_region, subtract_region
from ..tech import NMOS, Technology


def extract_polyflat(layout: Layout, tech: Technology | None = None) -> Circuit:
    """Extract ``layout`` by whole-chip region merging."""
    tech = tech or NMOS()
    boxes, labels = instantiate(layout)

    diff = tech.channel_layers[0].cif_name
    poly = tech.channel_layers[1].cif_name
    metal = tech.conducting_layers[0].cif_name
    contact = tech.contact_layer.cif_name
    implant = tech.depletion_marker.cif_name
    buried = tech.buried_layer.cif_name

    by_layer: dict[str, list[Box]] = {
        name: [] for name in (metal, poly, diff, contact, implant, buried)
    }
    for layer, box in boxes:
        if layer in by_layer:
            by_layer[layer].append(box)

    # Channels: every diffusion-poly overlap, minus buried regions.
    # Normalized so overlapping artwork cannot double-count channel area
    # or terminal perimeter.
    channel_boxes: list[Box] = []
    for dbox in by_layer[diff]:
        for pbox in by_layer[poly]:
            overlap = dbox.intersection(pbox)
            if overlap is not None:
                channel_boxes.extend(
                    subtract_region([overlap], by_layer[buried])
                )
    channel_boxes = normalize_region(channel_boxes)

    # Conducting diffusion: diffusion minus channel regions.
    cond_boxes = subtract_region(by_layer[diff], channel_boxes)

    conducting = {
        metal: by_layer[metal],
        poly: by_layer[poly],
        diff: cond_boxes,
    }

    # Connected components per conducting layer.
    nets = UnionFind()
    net_of: dict[tuple[str, int], int] = {}
    for name, stack in conducting.items():
        components = _components(stack)
        for i in range(len(stack)):
            net_of[(name, i)] = -1  # placeholder
        roots: dict[int, int] = {}
        for i, comp in enumerate(components):
            net = roots.get(comp)
            if net is None:
                net = nets.make()
                roots[comp] = net
            net_of[(name, i)] = net

    # Device components over channel boxes.
    devs = UnionFind()
    channel_comp = _components(channel_boxes)
    dev_of: dict[int, int] = {}
    comp_dev: dict[int, int] = {}
    for i, comp in enumerate(channel_comp):
        dev = comp_dev.get(comp)
        if dev is None:
            dev = devs.make()
            comp_dev[comp] = dev
        dev_of[i] = dev

    dev_rec: dict[int, dict] = {
        dev: {"area": 0, "gates": set(), "terms": {}, "loc": None, "impl": False, "geo": []}
        for dev in comp_dev.values()
    }
    for i, cbox in enumerate(channel_boxes):
        rec = dev_rec[dev_of[i]]
        rec["area"] += cbox.area
        rec["geo"].append(cbox)
        loc = (cbox.ymax, -cbox.xmin)
        if rec["loc"] is None or loc > rec["loc"]:
            rec["loc"] = loc
        for j, pbox in enumerate(by_layer[poly]):
            if cbox.overlaps(pbox):
                rec["gates"].add(net_of[(poly, j)])
        for ibox in by_layer[implant]:
            if cbox.overlaps(ibox):
                rec["impl"] = True
        # Terminals: shared edges with conducting diffusion.
        for j, dbox in enumerate(cond_boxes):
            length = _shared_edge(cbox, dbox)
            if length > 0:
                net = net_of[(diff, j)]
                root = nets.find(net)
                rec["terms"][root] = rec["terms"].get(root, 0) + length

    # Contact cuts and buried contacts.  A cut ties two conductors only
    # where they overlap each other inside the cut (pointwise rule).
    for cut in by_layer[contact]:
        present = [
            (clipped, net_of[(name, i)])
            for name in (metal, poly, diff)
            for i, box in enumerate(conducting[name])
            if (clipped := cut.intersection(box)) is not None
        ]
        for i, (abox, anet) in enumerate(present):
            for bbox2, bnet in present[i + 1 :]:
                if abox.overlaps(bbox2):
                    nets.union(anet, bnet)
    for bbox_ in by_layer[buried]:
        poly_here = [
            (clipped, net_of[(poly, i)])
            for i, box in enumerate(by_layer[poly])
            if (clipped := bbox_.intersection(box)) is not None
        ]
        diff_here = [
            (clipped, net_of[(diff, i)])
            for i, box in enumerate(cond_boxes)
            if (clipped := bbox_.intersection(box)) is not None
        ]
        for pbox, pnet in poly_here:
            for dbox, dnet in diff_here:
                if pbox.overlaps(dbox):
                    nets.union(pnet, dnet)

    # Locations and labels.
    net_loc: dict[int, tuple[int, int]] = {}
    for name, stack in conducting.items():
        for i, box in enumerate(stack):
            net = net_of[(name, i)]
            loc = (box.ymax, -box.xmin)
            if net not in net_loc or loc > net_loc[net]:
                net_loc[net] = loc
    net_names: dict[int, list[str]] = {}
    warnings: list[str] = []
    for label in labels:
        order = (label.layer,) if label.layer else (metal, poly, diff)
        net = None
        for name in order:
            for i, box in enumerate(conducting.get(name, [])):
                if box.contains_point(label.x, label.y):
                    net = net_of[(name, i)]
                    break
            if net is not None:
                break
        if net is None:
            warnings.append(
                f"label {label.name!r} at ({label.x}, {label.y}) "
                f"matches no conducting geometry"
            )
        else:
            net_names.setdefault(net, []).append(label.name)

    return _finalize(tech, nets, devs, net_loc, net_names, dev_rec, warnings)


def _components(boxes: list[Box]) -> list[int]:
    """Connected-component label per box (touch = overlap or edge abut).

    The sweep sorts by xmin and compares each box against the ones whose
    x-interval can still reach it -- the pruning Cifplot-era tools used.
    Worst case remains quadratic, which is the point of this baseline.
    """
    order = sorted(range(len(boxes)), key=lambda i: boxes[i].xmin)
    uf = UnionFind()
    for _ in boxes:
        uf.make()
    for pos, i in enumerate(order):
        bi = boxes[i]
        for j in order[pos + 1 :]:
            bj = boxes[j]
            if bj.xmin > bi.xmax:
                break
            if bi.touches(bj):
                uf.union(i, j)
    return [uf.find(i) for i in range(len(boxes))]


def _shared_edge(a: Box, b: Box) -> int:
    """Length of the shared boundary between two non-overlapping boxes."""
    x_overlap = min(a.xmax, b.xmax) - max(a.xmin, b.xmin)
    y_overlap = min(a.ymax, b.ymax) - max(a.ymin, b.ymin)
    if x_overlap == 0 and y_overlap > 0:
        return y_overlap
    if y_overlap == 0 and x_overlap > 0:
        return x_overlap
    return 0


def _finalize(tech, nets, devs, net_loc, net_names, dev_rec, warnings):
    from ..core.assemble import assemble_circuit

    return assemble_circuit(
        tech, nets, devs, net_loc, net_names, dev_rec, warnings
    )
