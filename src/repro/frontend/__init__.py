"""Front-end: CIF instantiation and the sorted top-to-bottom stream."""

from .instantiate import PlacedLabel, instantiate, symbol_bboxes
from .stream import GeometryStream, StreamStats

__all__ = [
    "GeometryStream",
    "PlacedLabel",
    "StreamStats",
    "instantiate",
    "symbol_bboxes",
]
