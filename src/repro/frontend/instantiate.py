"""Eager, full instantiation of a CIF layout.

Expands every symbol call, applies transforms, and fractures polygons and
wires so the result is a flat list of ``(layer, Box)`` plus placed labels.
ACE itself avoids doing this (see :mod:`repro.frontend.stream`); the flat
list is what the raster and region-merge baselines, the workload
statistics, and the tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cif.layout import TOP_SYMBOL, Layout, Symbol
from ..geometry import Box, Transform


@dataclass(frozen=True, slots=True)
class PlacedLabel:
    """A net-name label instantiated into chip coordinates."""

    name: str
    x: int
    y: int
    layer: str | None = None


def instantiate(
    layout: Layout, resolution: int = 50
) -> tuple[list[tuple[str, Box]], list[PlacedLabel]]:
    """Fully instantiate ``layout``.

    Returns ``(boxes, labels)`` where ``boxes`` is every primitive box in
    chip coordinates (polygons and wires fractured at ``resolution``).
    """
    boxes: list[tuple[str, Box]] = []
    labels: list[PlacedLabel] = []
    # Fracture each symbol once; instances only transform the result.
    fractured: dict[int, list[tuple[str, Box]]] = {}

    def local_boxes(number: int, symbol: Symbol) -> list[tuple[str, Box]]:
        cached = fractured.get(number)
        if cached is None:
            cached = symbol.fractured_boxes(resolution)
            fractured[number] = cached
        return cached

    def emit(number: int, transform: Transform) -> None:
        symbol = layout.symbol(number)
        if transform.is_identity:
            boxes.extend(local_boxes(number, symbol))
            labels.extend(
                PlacedLabel(lb.name, lb.x, lb.y, lb.layer) for lb in symbol.labels
            )
        else:
            boxes.extend(
                (layer, transform.apply_box(box))
                for layer, box in local_boxes(number, symbol)
            )
            for lb in symbol.labels:
                x, y = transform.apply_point(lb.x, lb.y)
                labels.append(PlacedLabel(lb.name, x, y, lb.layer))
        for call in symbol.calls:
            emit(call.symbol, call.transform.then(transform))

    emit(TOP_SYMBOL, Transform.identity())
    return boxes, labels


def instantiate_with_origins(
    layout: Layout, resolution: int = 50
) -> list[tuple[str, Box, int, tuple[int, ...]]]:
    """Fully instantiate ``layout``, keeping each box's source symbol.

    Returns ``(layer, box, symbol, path)`` per primitive box, where
    ``symbol`` is the number of the symbol whose body contains the
    artwork (``TOP_SYMBOL`` for top-level geometry) and ``path`` is the
    call chain of symbol numbers from the top down to ``symbol``.  The
    diagnostics layer uses this to attribute a design-rule violation to
    the symbol call that produced the offending geometry.
    """
    out: list[tuple[str, Box, int, tuple[int, ...]]] = []
    fractured: dict[int, list[tuple[str, Box]]] = {}

    def local_boxes(number: int, symbol: Symbol) -> list[tuple[str, Box]]:
        cached = fractured.get(number)
        if cached is None:
            cached = symbol.fractured_boxes(resolution)
            fractured[number] = cached
        return cached

    def emit(
        number: int, transform: Transform, path: tuple[int, ...]
    ) -> None:
        symbol = layout.symbol(number)
        if transform.is_identity:
            out.extend(
                (layer, box, number, path)
                for layer, box in local_boxes(number, symbol)
            )
        else:
            out.extend(
                (layer, transform.apply_box(box), number, path)
                for layer, box in local_boxes(number, symbol)
            )
        for call in symbol.calls:
            emit(
                call.symbol,
                call.transform.then(transform),
                path + (call.symbol,),
            )

    emit(TOP_SYMBOL, Transform.identity(), (TOP_SYMBOL,))
    return out


def symbol_bboxes(layout: Layout, resolution: int = 50) -> dict[int, Box | None]:
    """Bounding box of each symbol's full expansion, in local coordinates.

    ``None`` marks empty symbols.  Computed bottom-up over the (acyclic)
    call graph; this is the piece of global knowledge the lazy front-end
    needs in order to defer expanding calls that lie below the scanline.
    """
    result: dict[int, Box | None] = {}

    def bbox_of(number: int) -> Box | None:
        if number in result:
            return result[number]
        symbol = layout.symbol(number)
        corners: list[Box] = [box for _, box in symbol.fractured_boxes(resolution)]
        for call in symbol.calls:
            inner = bbox_of(call.symbol)
            if inner is not None:
                corners.append(call.transform.apply_box(inner))
        box: Box | None
        if corners:
            box = Box(
                min(b.xmin for b in corners),
                min(b.ymin for b in corners),
                max(b.xmax for b in corners),
                max(b.ymax for b in corners),
            )
        else:
            box = None
        result[number] = box
        return box

    bbox_of(TOP_SYMBOL)
    for number in layout.symbols:
        bbox_of(number)
    return result
