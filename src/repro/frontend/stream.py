"""ACE's lazy front-end: a top-to-bottom sorted geometry stream.

The paper (section 4): *"the front-end does not expand everything to boxes
before sorting, but instead makes use of the hierarchy present in the CIF
specification of the chip, and recursively expands only those cells that
intersect the current scanline."*

The stream keeps a max-heap keyed on top-edge y.  Entries are either
primitive boxes or *unexpanded symbol calls* keyed by their transformed
bounding-box top.  A call is expanded one level only when the scanline
reaches its bounding box, so cells entirely below the scanline stay
folded; the complete geometry of the chip is never instantiated at once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..cif.layout import TOP_SYMBOL, Layout
from ..geometry import Box, Transform
from .instantiate import PlacedLabel, symbol_bboxes

_BOX = 0
_CALL = 1


@dataclass
class StreamStats:
    """Counters the complexity benchmarks read."""

    boxes_out: int = 0
    calls_expanded: int = 0
    peak_pending: int = 0


class GeometryStream:
    """Streams ``(layer, Box)`` geometry sorted by descending top edge.

    Usage mirrors the back-end loop of Figure 3-2::

        stream = GeometryStream(layout)
        while (y := stream.next_top()) is not None:
            new_boxes = stream.fetch(y)   # all boxes whose top == y
    """

    def __init__(self, layout: Layout, resolution: int = 50) -> None:
        self._layout = layout
        self._resolution = resolution
        self._bboxes = symbol_bboxes(layout, resolution)
        self.stats = StreamStats()
        # Heap entries: (-top_y, seq, kind, payload); seq breaks ties
        # deterministically and keeps payloads out of comparisons.
        self._heap: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self._labels: list[PlacedLabel] = []
        self._push_call(TOP_SYMBOL, Transform.identity())

    # -- heap plumbing ---------------------------------------------------

    def _push(self, top: int, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-top, self._seq, kind, payload))
        if len(self._heap) > self.stats.peak_pending:
            self.stats.peak_pending = len(self._heap)

    def _push_call(self, number: int, transform: Transform) -> None:
        bbox = self._bboxes.get(number)
        if bbox is None:
            # Geometry-free subtree: nothing to sort, but it may still
            # carry labels, so expand it immediately (cost is trivial).
            self._expand(number, transform)
            return
        top = transform.apply_box(bbox).ymax
        self._push(top, _CALL, (number, transform))

    def _expand(self, number: int, transform: Transform) -> None:
        """Expand a call one level, pushing its boxes and sub-calls."""
        symbol = self._layout.symbol(number)
        self.stats.calls_expanded += 1
        for layer, box in symbol.fractured_boxes(self._resolution):
            placed = box if transform.is_identity else transform.apply_box(box)
            self._push(placed.ymax, _BOX, (layer, placed))
        for call in symbol.calls:
            self._push_call(call.symbol, call.transform.then(transform))
        for lb in symbol.labels:
            x, y = transform.apply_point(lb.x, lb.y)
            self._labels.append(PlacedLabel(lb.name, x, y, lb.layer))

    def _settle(self) -> None:
        """Expand calls until the heap top is a primitive box (or empty)."""
        while self._heap and self._heap[0][2] == _CALL:
            _, _, _, payload = heapq.heappop(self._heap)
            number, transform = payload  # type: ignore[misc]
            self._expand(number, transform)

    # -- public API ----------------------------------------------------

    @property
    def chip_bbox(self) -> Box | None:
        """Bounding box of the whole chip (None for an empty layout)."""
        return self._bboxes.get(TOP_SYMBOL)

    def next_top(self) -> int | None:
        """Top-edge y of the next box, without consuming it."""
        self._settle()
        if not self._heap:
            return None
        return -self._heap[0][0]

    def fetch(self, y: int) -> list[tuple[str, Box]]:
        """All boxes whose top edge is exactly ``y``, consumed in order."""
        out: list[tuple[str, Box]] = []
        while True:
            self._settle()
            if not self._heap or -self._heap[0][0] != y:
                break
            _, _, _, payload = heapq.heappop(self._heap)
            out.append(payload)  # type: ignore[arg-type]
            self.stats.boxes_out += 1
        return out

    def labels(self) -> list[PlacedLabel]:
        """Labels placed so far.

        Labels are attached lazily as their enclosing cells expand; the
        extractor queries this after draining the stream, by which point
        every cell that contains geometry has been expanded.  Cells that
        contain *only* labels are expanded up front so nothing is lost.
        """
        self._settle()
        return list(self._labels)

    def drain(self) -> list[tuple[str, Box]]:
        """Consume the rest of the stream (testing convenience)."""
        out: list[tuple[str, Box]] = []
        while (y := self.next_top()) is not None:
            out.extend(self.fetch(y))
        return out
