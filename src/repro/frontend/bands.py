"""Banded geometry production for out-of-core streaming extraction.

The scanline only ever needs one strip of state, but the stock front-end
hands it a :class:`~repro.frontend.stream.GeometryStream` that is pulled
to exhaustion in one go.  This module splits production into y-*bands*
so the extractor can pause at band floors, retire finished state to a
spill store, and checkpoint (docs/STREAMING.md):

:class:`BandSource`
    Pulls the underlying stream band by band, issuing **exactly** the
    ``next_top()``/``fetch()`` call sequence the scanline engine would
    issue against the raw stream.  Each recorded stop also captures how
    many labels the stream had released right after ``next_top`` and
    right after ``fetch`` -- cell expansion is what releases labels, so
    these two counters pin down the label visibility the engine would
    have observed at that exact point of the sweep.  With ``prefetch``
    the pulls move to a producer thread feeding a bounded queue, the
    constant-motion idiom: the parser/instantiator runs ahead of the
    sweep by at most ``prefetch`` bands, never the whole chip.

:class:`BandFeed`
    A ``GeometryStream``-compatible facade replaying recorded bands to
    the engine.  ``labels()`` is gated to the recorded visibility
    prefix, which makes the feed *observationally identical* to the raw
    stream -- the engine cannot distinguish a banded run from an
    in-memory one, so wirelists stay byte-identical by construction.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass, field

from .instantiate import PlacedLabel
from .stream import GeometryStream

#: A recorded scanline stop: (top y, boxes fetched, labels visible after
#: next_top, labels visible after fetch).
Stop = tuple[int, list, int, int]


@dataclass
class Band:
    """One band's worth of recorded stream traffic."""

    index: int
    floor: int | None  #: stops satisfy ``y > floor``; None = final band
    stops: list[Stop] = field(default_factory=list)
    #: labels released while pulling this band (global order preserved)
    labels: list[PlacedLabel] = field(default_factory=list)


def plan_bands(
    chip_top: int | None,
    chip_bottom: int | None,
    *,
    band_height: int | None = None,
    boundaries: "list[int] | None" = None,
) -> list[int | None]:
    """Band floors, descending, ending with ``None`` (run to exhaustion).

    Either a uniform ``band_height`` below the chip top or an explicit
    descending ``boundaries`` list.  Floors never force scanline stops;
    they only mark where the sweep pauses between natural stops, so any
    floor list yields byte-identical output.
    """
    if boundaries is not None:
        floors: list[int | None] = sorted(
            {int(b) for b in boundaries}, reverse=True
        )
        floors.append(None)
        return floors
    if band_height is None or chip_top is None or chip_bottom is None:
        return [None]
    if band_height <= 0:
        raise ValueError(f"band height must be positive, got {band_height}")
    floors = []
    y = chip_top - band_height
    while y > chip_bottom:
        floors.append(y)
        y -= band_height
    floors.append(None)
    return floors


class BandSource:
    """Pulls a geometry stream in bands, recording the engine's view."""

    def __init__(
        self,
        stream: GeometryStream,
        floors: "list[int | None]",
        *,
        start: int = 0,
        prefetch: int = 0,
    ) -> None:
        self.stream = stream
        self._floors = list(floors)
        if not self._floors or self._floors[-1] is not None:
            self._floors.append(None)
        #: next band to pull; a resumed sweep starts past the bands its
        #: checkpoint already covers (the stream itself is fast-forwarded
        #: by the caller before the source is built)
        self._next = start
        #: labels already released before banding began (construction
        #: time, or the fast-forward prefix of a resumed sweep) --
        #: captured before the prefetch thread can touch the stream
        self.initial_labels: list[PlacedLabel] = list(stream._labels)
        self._label_taken = len(self.initial_labels)
        self._exhausted = False
        self._closed = False
        self._queue: "queue.Queue | None" = None
        self._thread: "threading.Thread | None" = None
        self._error: "BaseException | None" = None
        if prefetch > 0:
            self._queue = queue.Queue(maxsize=prefetch)
            self._thread = threading.Thread(
                target=self._produce, name="band-source", daemon=True
            )
            self._thread.start()

    # -- pulling -------------------------------------------------------

    def _pull_band(self) -> "Band | None":
        """Record one band of stream traffic (producer side)."""
        if self._exhausted or self._next >= len(self._floors):
            return None
        floor = self._floors[self._next]
        band = Band(index=self._next, floor=floor)
        self._next += 1
        stream = self.stream
        stops = band.stops
        while True:
            t = stream.next_top()
            if t is None:
                self._exhausted = True
                break
            if floor is not None and t <= floor:
                break
            labels_pre = len(stream._labels)
            boxes = stream.fetch(t)
            stops.append((t, boxes, labels_pre, len(stream._labels)))
        band.labels = stream._labels[self._label_taken :]
        self._label_taken = len(stream._labels)
        return band

    def _produce(self) -> None:
        assert self._queue is not None
        try:
            while True:
                band = self._pull_band()
                self._queue.put(band)
                if band is None or self._closed:
                    return
        except BaseException as exc:  # surface in the consumer thread
            self._error = exc
            self._queue.put(None)

    def next_band(self) -> "Band | None":
        """The next band, or None once the stream is exhausted."""
        if self._queue is None:
            return self._pull_band()
        band = self._queue.get()
        if band is None:
            if self._thread is not None:
                self._thread.join()
                self._thread = None
            if self._error is not None:
                raise self._error
        return band

    def close(self) -> None:
        """Release the producer thread after an abandoned sweep.

        A consumer that stops pulling mid-chip (cancellation, an error
        in the engine) would otherwise leave the producer blocked on the
        full prefetch queue forever.  Draining the queue until the
        thread observes the closed flag lets it exit; pulled-but-unused
        bands are simply dropped.
        """
        self._closed = True
        if self._thread is None:
            return
        while self._thread.is_alive():
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            self._thread.join(0.01)
        self._thread = None


class BandFeed:
    """Replays a :class:`BandSource` through the ``GeometryStream`` API.

    The feed holds at most the current band's unconsumed stops (plus the
    producer's bounded prefetch queue), so engine-visible memory stays
    O(band).  Label visibility follows the recorded per-stop counters:
    ``next_top`` exposes the prefix a raw stream would have released by
    that peek, ``fetch`` the prefix after consuming the stop.
    """

    def __init__(self, source: BandSource) -> None:
        self._source = source
        self._master: list[PlacedLabel] = list(source.initial_labels)
        self._visible = len(self._master)
        self._stops: "deque[Stop]" = deque()
        self._drained = False
        #: the underlying stream's counters (live object, shared)
        self.stats = source.stream.stats

    def _ensure(self) -> None:
        while not self._stops and not self._drained:
            band = self._source.next_band()
            if band is None:
                self._drained = True
                return
            self._master.extend(band.labels)
            self._stops.extend(band.stops)

    def next_top(self) -> int | None:
        self._ensure()
        if not self._stops:
            self._visible = len(self._master)
            return None
        t, _, labels_pre, _ = self._stops[0]
        self._visible = labels_pre
        return t

    def fetch(self, y: int) -> list:
        self._ensure()
        if not self._stops or self._stops[0][0] != y:
            # A pending-continuation stop: the raw stream has no boxes
            # topped here and would return [].
            return []
        _, boxes, _, labels_post = self._stops.popleft()
        self._visible = labels_post
        return boxes

    def labels(self) -> list[PlacedLabel]:
        return list(self._master[: self._visible])
