"""``repro-fleet``: one command, one supervised extraction fleet.

Brings up N ``repro-serve`` shards on ephemeral ports, wires them to a
shared on-disk artifact store, starts the asyncio router in front, and
then supervises:

* SIGTERM / SIGINT — graceful drain: the router stops admitting,
  in-flight fleet jobs finish, then every shard is SIGTERM-drained.
  Exit 0 when everything went quiet inside the grace period, 2 when
  work was still in flight.
* SIGHUP — rolling restart: each shard is drained and replaced one at
  a time, the router re-pointed as each replacement becomes ready, so
  the fleet never drops below N-1 shards of capacity.

Clients talk to the router exactly as they would to a single daemon —
``repro-submit --port 8700`` just works.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import types

from ..cli import add_version_argument
from ..core.stripengine import (
    ENGINE_CHOICES,
    EngineUnavailable,
    resolve_engine,
)
from .router import DEFAULT_FLEET_PORT, FleetRouter, RouterConfig
from .supervisor import FleetSupervisor, ShardSpawnError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Run a sharded extraction fleet: N repro-serve "
        "daemons behind one async router with consistent-hash routing, "
        "request coalescing, and failover.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        metavar="N",
        help="daemon shard count (default %(default)s)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_FLEET_PORT,
        help="router TCP port; 0 binds an ephemeral port "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="extraction worker threads per shard (default %(default)s)",
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=64,
        metavar="N",
        help="per-shard job queue capacity (default %(default)s)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="shared artifact store directory all shards read and "
        "write (default: per-shard memory caches only)",
    )
    parser.add_argument(
        "--store-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the shared store beyond N results",
    )
    parser.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU-evict the shared store beyond this size",
    )
    parser.add_argument(
        "--store-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire shared-store results older than this",
    )
    parser.add_argument(
        "--prime-cache",
        type=int,
        default=32,
        metavar="N",
        help="results each (re)started shard preloads from the shared "
        "store (default %(default)s; 0 disables)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="strip-batch engine for every shard (default %(default)s)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight work at shutdown (default %(default)s)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between shard health probes (default %(default)s)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress structured logs"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        engine = resolve_engine(args.engine)
    except EngineUnavailable as exc:
        print(f"repro-fleet: error: {exc}", file=sys.stderr)
        return 2

    supervisor = FleetSupervisor(
        args.shards,
        host=args.host,
        workers=args.workers,
        queue_capacity=args.queue,
        store_dir=args.store,
        cache_max_entries=args.store_max_entries,
        cache_max_bytes=args.store_max_bytes,
        cache_ttl=args.store_ttl,
        prime_cache=args.prime_cache if args.store else 0,
        engine=engine,
        shard_grace=args.drain_grace + 5.0,
    )
    try:
        specs = supervisor.start()
    except ShardSpawnError as exc:
        print(f"repro-fleet: {exc}", file=sys.stderr)
        return 2

    router = FleetRouter(
        specs,
        RouterConfig(
            host=args.host,
            port=args.port,
            drain_grace=args.drain_grace,
            health_interval=args.health_interval,
            quiet=args.quiet,
        ),
    )
    try:
        router.start()
    except RuntimeError as exc:
        print(f"repro-fleet: {exc}", file=sys.stderr)
        supervisor.close()
        return 2

    stop = threading.Event()
    rolling = threading.Event()

    def _handle_stop(signum: int, frame: "types.FrameType | None") -> None:
        router.log(event="signal", signal=signal.Signals(signum).name)
        stop.set()

    def _handle_hup(signum: int, frame: "types.FrameType | None") -> None:
        router.log(event="signal", signal="SIGHUP")
        rolling.set()
        stop.set()  # wake the wait loop; rolling flag reroutes it

    signal.signal(signal.SIGTERM, _handle_stop)
    signal.signal(signal.SIGINT, _handle_stop)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, _handle_hup)

    while True:
        stop.wait()
        if not rolling.is_set():
            break
        rolling.clear()
        stop.clear()
        router.log(event="rolling_restart_begin")
        supervisor.rolling_restart(
            lambda name, host, port: router.update_shard(name, host, port)
        )
        router.log(event="rolling_restart_done")

    router_clean = router.drain(grace=args.drain_grace)
    shards_clean = supervisor.drain()
    return 0 if router_clean and shards_clean else 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
