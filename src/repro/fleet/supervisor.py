"""Spawning and babysitting the shard daemons.

A :class:`ShardProcess` is one ``python -m repro.service`` child: it is
started on an ephemeral port (``--port 0``), its structured ``ready``
log line is parsed off stderr to learn the bound address, and its
stderr is drained into a bounded tail buffer so a crashed shard's last
words survive for diagnosis.  :class:`FleetSupervisor` owns N of them
plus the shared-store wiring: every shard gets the same
``--result-cache`` directory (and budgets), which is what turns N
private caches into one fleet artifact store — and ``--prime-cache``
so a freshly (re)started shard warm-starts from its siblings' results.

Lifecycle verbs map to the ops story in docs/FLEET.md:

* ``start()`` — bring up every shard, wait for every ready line;
* ``kill_shard()`` — SIGKILL, the failure-injection hook for tests and
  the bench's mid-run shard-death drill;
* ``restart_shard()`` — SIGTERM-drain the old process, spawn a fresh
  one under the same shard name (new ephemeral port — the router is
  told via ``update_shard``);
* ``rolling_restart()`` — ``restart_shard`` for each shard in turn,
  invoking a callback with the new address before moving on;
* ``drain()`` — SIGTERM everyone, wait, report whether every shard
  exited cleanly (exit code 0).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

import repro

#: Seconds to wait for a spawned shard's ready line.
READY_TIMEOUT = 30.0


class ShardSpawnError(RuntimeError):
    """A shard process died or stayed silent instead of becoming ready."""


def _repo_src_path() -> str:
    """The directory that must be on PYTHONPATH to import ``repro``."""
    return str(Path(repro.__file__).resolve().parent.parent)


class ShardProcess:
    """One extraction daemon child process and its vital signs."""

    def __init__(
        self,
        name: str,
        *,
        host: str = "127.0.0.1",
        workers: int = 2,
        queue_capacity: int = 64,
        store_dir: "str | None" = None,
        cache_max_entries: "int | None" = None,
        cache_max_bytes: "int | None" = None,
        cache_ttl: "float | None" = None,
        prime_cache: int = 0,
        engine: "str | None" = None,
        extra_args: "list[str] | None" = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = 0
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.store_dir = store_dir
        self.cache_max_entries = cache_max_entries
        self.cache_max_bytes = cache_max_bytes
        self.cache_ttl = cache_ttl
        self.prime_cache = prime_cache
        self.engine = engine
        self.extra_args = list(extra_args or ())
        self.process: "subprocess.Popen | None" = None
        self.stderr_tail: "deque[str]" = deque(maxlen=200)
        self._drain_thread: "threading.Thread | None" = None

    # -- lifecycle -------------------------------------------------------

    def _command(self) -> "list[str]":
        command = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            self.host,
            "--port",
            "0",
            "--shard-id",
            self.name,
            "--workers",
            str(self.workers),
            "--queue",
            str(self.queue_capacity),
        ]
        if self.store_dir is not None:
            command += ["--result-cache", self.store_dir]
            if self.prime_cache:
                command += ["--prime-cache", str(self.prime_cache)]
        if self.cache_max_entries is not None:
            command += ["--cache-max-entries", str(self.cache_max_entries)]
        if self.cache_max_bytes is not None:
            command += ["--cache-max-bytes", str(self.cache_max_bytes)]
        if self.cache_ttl is not None:
            command += ["--cache-ttl", str(self.cache_ttl)]
        if self.engine is not None:
            command += ["--engine", self.engine]
        command += self.extra_args
        return command

    def spawn(self, timeout: float = READY_TIMEOUT) -> None:
        """Start the daemon and block until its ready line arrives."""
        env = dict(os.environ)
        src = _repo_src_path()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else src
        )
        self.process = subprocess.Popen(
            self._command(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            self.port = self._await_ready(timeout)
        except ShardSpawnError:
            self.kill()
            raise
        self._drain_thread = threading.Thread(
            target=self._drain_stderr,
            name=f"shard-{self.name}-stderr",
            daemon=True,
        )
        self._drain_thread.start()

    def _await_ready(self, timeout: float) -> int:
        assert self.process is not None and self.process.stderr is not None
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                tail = "\n".join(self.stderr_tail)
                raise ShardSpawnError(
                    f"shard {self.name} exited "
                    f"{self.process.returncode} before ready:\n{tail}"
                )
            line = self.process.stderr.readline()
            if not line:
                continue
            self.stderr_tail.append(line.rstrip("\n"))
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("event") != "ready":
                continue
            address = record.get("address", "")
            _, _, hostport = address.rpartition("/")
            _, _, port = hostport.rpartition(":")
            try:
                return int(port)
            except ValueError as exc:
                raise ShardSpawnError(
                    f"shard {self.name}: unparsable ready address "
                    f"{address!r}"
                ) from exc
        raise ShardSpawnError(
            f"shard {self.name} produced no ready line within {timeout}s"
        )

    def _drain_stderr(self) -> None:
        assert self.process is not None and self.process.stderr is not None
        try:
            for line in self.process.stderr:
                self.stderr_tail.append(line.rstrip("\n"))
        except ValueError:
            pass  # pipe closed under us at shutdown

    # -- signals ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def pid(self) -> "int | None":
        return self.process.pid if self.process is not None else None

    @property
    def address(self) -> "tuple[str, int]":
        return self.host, self.port

    def terminate(self, grace: float = 35.0) -> "int | None":
        """SIGTERM (daemon-side drain) and wait; returns the exit code."""
        if self.process is None:
            return None
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
        return self.process.returncode

    def kill(self) -> None:
        """SIGKILL — the failure-injection path; no drain, no mercy."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass


class FleetSupervisor:
    """Owns the shard set: spawn, drain, restart, failure injection."""

    def __init__(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        workers: int = 2,
        queue_capacity: int = 64,
        store_dir: "str | None" = None,
        cache_max_entries: "int | None" = None,
        cache_max_bytes: "int | None" = None,
        cache_ttl: "float | None" = None,
        prime_cache: int = 0,
        engine: "str | None" = None,
        shard_grace: float = 35.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"a fleet needs >= 1 shard, got {count}")
        self.shard_grace = shard_grace
        self._spawn_kwargs = dict(
            host=host,
            workers=workers,
            queue_capacity=queue_capacity,
            store_dir=store_dir,
            cache_max_entries=cache_max_entries,
            cache_max_bytes=cache_max_bytes,
            cache_ttl=cache_ttl,
            prime_cache=prime_cache,
            engine=engine,
        )
        self.shards: "dict[str, ShardProcess]" = {
            f"shard{i}": ShardProcess(f"shard{i}", **self._spawn_kwargs)
            for i in range(count)
        }

    def start(self) -> "list[tuple[str, str, int]]":
        """Spawn every shard; returns (name, host, port) router specs."""
        started: "list[ShardProcess]" = []
        try:
            for shard in self.shards.values():
                shard.spawn()
                started.append(shard)
        except ShardSpawnError:
            for shard in started:
                shard.kill()
            raise
        return [
            (shard.name, shard.host, shard.port)
            for shard in self.shards.values()
        ]

    def kill_shard(self, name: str) -> None:
        """SIGKILL one shard mid-flight (failure injection)."""
        self.shards[name].kill()

    def restart_shard(self, name: str) -> "tuple[str, int]":
        """Drain + replace one shard; returns its new (host, port).

        The replacement runs under the same shard name, so the hash
        ring is untouched — only the address changes, and the caller
        must hand it to ``FleetRouter.update_shard``.  With a shared
        store and ``prime_cache`` the newcomer starts warm.
        """
        old = self.shards[name]
        old.terminate(grace=self.shard_grace)
        replacement = ShardProcess(name, **self._spawn_kwargs)
        replacement.spawn()
        self.shards[name] = replacement
        return replacement.host, replacement.port

    def rolling_restart(
        self,
        on_restarted: "Callable[[str, str, int], None] | None" = None,
    ) -> None:
        """Replace every shard one at a time, fleet capacity N-1 dips.

        ``on_restarted(name, host, port)`` runs after each replacement
        is ready — wire it to ``FleetRouter.update_shard`` so traffic
        follows the new address before the next shard goes down.
        """
        for name in list(self.shards):
            host, port = self.restart_shard(name)
            if on_restarted is not None:
                on_restarted(name, host, port)

    def drain(self) -> bool:
        """SIGTERM every shard, wait; True iff all exited cleanly."""
        clean = True
        for shard in self.shards.values():
            code = shard.terminate(grace=self.shard_grace)
            if code != 0:
                clean = False
        return clean

    def close(self) -> None:
        for shard in self.shards.values():
            shard.kill()

    def specs(self) -> "list[tuple[str, str, int]]":
        return [
            (shard.name, shard.host, shard.port)
            for shard in self.shards.values()
        ]

    def snapshot(self) -> "list[dict]":
        return [
            {
                "name": shard.name,
                "pid": shard.pid,
                "alive": shard.alive,
                "address": f"{shard.host}:{shard.port}",
            }
            for shard in self.shards.values()
        ]
