"""The asyncio front door: one port, N shards, the same JSON job API.

The router multiplexes any number of client connections on a single
event loop (keep-alive HTTP/1.1, hand-rolled on ``asyncio`` streams —
no frameworks, no threads per connection) and speaks the extraction
daemon's API *unchanged*: a client cannot tell a router from a daemon.
What it adds, per request:

**Sharding.**  Every submission is routed by consistent hash of its
payload digest (:mod:`repro.fleet.hashring`), so repeat submissions of
the same layout always land on the same shard and hit that shard's
result cache and warm window memo.  A shard that is unhealthy, breaker-
open, or full is skipped in ring-preference order — bounded failover,
deterministic for every observer.

**Coalescing.**  Concurrent submissions with identical ``(payload
digest, option facet)`` collapse onto one upstream job: the first
claims the coalescing slot, the rest get the *same* fleet job ident
back and fan in on its one result.  The facet is the daemon's own
result-cache facet, so coalescing can never merge two requests the
cache itself would distinguish.

**Failover.**  The router remembers each in-flight job's original
submission body.  When a shard dies mid-job (poll fails, or the health
checker notices first), the body is resubmitted to the next ring
sibling and the client keeps polling the same fleet ident.  Results
are byte-identical by the engine's determinism guarantees; with a
shared artifact store the resubmission is usually a disk cache hit.

**Aggregation.**  ``GET /metrics`` returns the router's own counters
(coalesce hits, failovers, per-shard upstream latency rings) plus each
shard's full metrics document and a fleet-wide jobs/cache rollup;
``GET /healthz`` is the shard membership health view.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Any

from ..service.cache import payload_digest, result_cache_key
from ..service.jobs import JobOptions, OptionsError
from ..service.server import MAX_BODY_BYTES
from .hashring import HashRing
from .state import (
    TERMINAL_STATES,
    FleetJob,
    FleetJobTable,
    RouterMetrics,
    ShardState,
)

#: Default router TCP port (the daemon default is 8731; keep them apart
#: so a fleet and a solo daemon coexist on one box).
DEFAULT_FLEET_PORT = 8700

#: Idle seconds before a silent keep-alive connection is dropped.
KEEPALIVE_IDLE = 120.0


@dataclass
class RouterConfig:
    """Everything tunable about one router instance."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_FLEET_PORT
    upstream_timeout: float = 30.0  #: per upstream request, seconds
    health_interval: float = 1.0  #: seconds between shard health probes
    health_timeout: float = 3.0  #: per health probe
    retain_jobs: int = 512
    drain_grace: float = 30.0
    #: upstream submissions per job before it fails terminally; None
    #: derives 3 attempts per shard from the membership size.
    max_attempts: "int | None" = None
    log_stream: "IO[str] | None" = field(default=None, repr=False)
    quiet: bool = False


class UpstreamError(RuntimeError):
    """One upstream request could not produce an HTTP response."""

    def __init__(self, shard: ShardState, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard.name} ({shard.address}): "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard = shard


class FleetRouter:
    """The async front-end for a set of extraction daemons."""

    def __init__(
        self,
        shards: "list[tuple[str, str, int]]",
        config: "RouterConfig | None" = None,
    ) -> None:
        self.config = config or RouterConfig()
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.shards: "dict[str, ShardState]" = {
            name: ShardState(name=name, host=host, port=port)
            for name, host, port in shards
        }
        self.ring = HashRing(list(self.shards))
        self.table = FleetJobTable(retain=self.config.retain_jobs)
        self.metrics = RouterMetrics()
        self.draining = False
        self.max_attempts = (
            self.config.max_attempts
            if self.config.max_attempts is not None
            else 3 * len(self.shards)
        )
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._health_task: "asyncio.Task | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._port: int = 0
        self._log_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self._port}"

    def start(self) -> None:
        """Run the event loop (server + health checker) in a thread."""
        self._thread = threading.Thread(
            target=self._run_loop, name="fleet-router", daemon=True
        )
        self._thread.start()
        self._started.wait(15.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"router failed to start: {self._startup_error}"
            )
        if not self._started.is_set():
            raise RuntimeError("router did not start within 15s")
        self.log(
            event="ready",
            address=self.address,
            shards={s.name: s.address for s in self.shards.values()},
        )

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._serve_connection,
                    self.config.host,
                    self.config.port,
                )
            )
            self._server = server
            self._port = server.sockets[0].getsockname()[1]
            self._health_task = loop.create_task(self._health_loop())
            self._started.set()
            loop.run_forever()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
        finally:
            if self._health_task is not None:
                self._health_task.cancel()
            if self._server is not None:
                self._server.close()
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def drain(self, grace: "float | None" = None) -> bool:
        """Stop admitting, wait out in-flight fleet jobs, stop serving.

        Returns True when every fleet job reached a terminal state
        (observed from its shard) within the grace period.  The shards
        themselves keep running — draining them is the supervisor's
        job, *after* the router has gone quiet.
        """
        if self._closed:
            return True
        grace = self.config.drain_grace if grace is None else grace
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self._drain_async(grace), self._loop
        )
        clean = future.result(timeout=grace + 15.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10.0)
        self._closed = True
        self.log(event="drained", clean=clean)
        return clean

    def close(self) -> None:
        if not self._closed and self._loop is not None:
            self.drain(grace=5.0)

    def update_shard(self, name: str, host: str, port: int) -> None:
        """Point a shard at a new address (rolling restart handoff)."""
        shard = self.shards[name]
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(
                shard.update_address, host, port
            )
        else:
            shard.update_address(host, port)
        self.log(event="shard_updated", shard=name, address=f"{host}:{port}")

    async def _drain_async(self, grace: float) -> bool:
        self.draining = True
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            pending = self.table.pending()
            if not pending:
                break
            for job in pending:
                await self._refresh(job)
            await asyncio.sleep(0.05)
        return not self.table.pending()

    # -- logging ---------------------------------------------------------

    def log(self, **fields: Any) -> None:
        if self.config.quiet:
            return
        stream = self.config.log_stream or sys.stderr
        line = json.dumps({"ts": round(time.time(), 3), **fields})
        with self._log_lock:
            try:
                print(line, file=stream, flush=True)
            except ValueError:
                pass  # stream closed during interpreter shutdown

    # -- the HTTP front end ----------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra = await self._dispatch(
                    method, target, body
                )
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                self.log(
                    event="request",
                    method=method,
                    path=target,
                    status=status,
                )
                if not keep_alive:
                    break
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled the connection task.  Finish
            # normally after closing the socket: a task that ends
            # cancelled makes asyncio's stream callback log a spurious
            # traceback when it asks for the task's exception.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> "tuple[str, str, dict[str, str], bytes] | None":
        line = await asyncio.wait_for(
            reader.readline(), timeout=KEEPALIVE_IDLE
        )
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: "dict[str, str]" = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            await self._write_response(
                writer, 413, {"error": "request body too large"}, {}, False
            )
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: "dict[str, str]",
        keep_alive: bool,
    ) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
            "Server: repro-fleet/1.0",
        ]
        for name, value in extra_headers.items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> "tuple[int, dict, dict[str, str]]":
        try:
            if method == "POST" and target == "/jobs":
                parsed = self._parse_body(body)
                if isinstance(parsed, tuple):
                    return parsed
                return await self._submit(parsed)
            parts = target.strip("/").split("/")
            if method == "GET":
                if target == "/metrics":
                    return 200, await self._metrics_payload(), {}
                if target == "/healthz":
                    return 200, self._health_payload(), {}
                if len(parts) == 2 and parts[0] == "jobs":
                    return await self._job_status(parts[1], False)
                if (
                    len(parts) == 3
                    and parts[0] == "jobs"
                    and parts[2] == "result"
                ):
                    return await self._job_status(parts[1], True)
            if method == "DELETE" and len(parts) == 2 and parts[0] == "jobs":
                return await self._cancel(parts[1])
            return 404, {"error": f"no such route {target}"}, {}
        except Exception as exc:  # noqa: BLE001 - the router must not die
            self.log(
                event="handler_error",
                error=f"{type(exc).__name__}: {exc}",
                path=target,
            )
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    @staticmethod
    def _parse_body(
        raw: bytes,
    ) -> "dict | tuple[int, dict, dict[str, str]]":
        if not raw:
            return 400, {"error": "empty request body"}, {}
        try:
            body = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "request body is not JSON"}, {}
        if not isinstance(body, dict):
            return 400, {"error": "request body must be an object"}, {}
        return body

    # -- submission, coalescing, failover --------------------------------

    @staticmethod
    def _submission_key(body: dict) -> "tuple[str, str]":
        """(payload digest, coalescing key) for one submission body.

        Validation mirrors the daemon's so a malformed request is
        refused at the front door without an upstream hop.  ``path``
        submissions route by the digest of the path string — their
        contents are the shard's business, not the router's.
        """
        unknown = sorted(set(body) - {"cif", "path", "options"})
        if unknown:
            raise OptionsError(f"unknown field(s): {', '.join(unknown)}")
        cif = body.get("cif")
        path = body.get("path")
        if (cif is None) == (path is None):
            raise OptionsError("provide exactly one of 'cif' or 'path'")
        options = JobOptions.from_payload(body.get("options"))
        if cif is not None:
            if not isinstance(cif, str):
                raise OptionsError("'cif' must be a string")
            digest = payload_digest(cif)
        else:
            if not isinstance(path, str):
                raise OptionsError("'path' must be a string")
            digest = payload_digest(f"path:{path}")
        return digest, result_cache_key(digest, options)

    async def _submit(
        self, body: dict
    ) -> "tuple[int, dict, dict[str, str]]":
        if self.draining:
            self.metrics.count("rejected_draining")
            return 503, {"error": "fleet is draining"}, {}
        try:
            digest, key = self._submission_key(body)
        except OptionsError as exc:
            return 400, {"error": str(exc)}, {}

        self.metrics.count("submitted")
        existing = self.table.coalesce(key)
        if existing is not None:
            # Identical payload+facet already in flight: fan in on it.
            self.metrics.count("coalesced")
            return 202, {
                **existing.placeholder_status(),
                "coalesced": True,
            }, {}

        job = self.table.create(body, key, digest)
        return await self._submit_upstream(job)

    async def _submit_upstream(
        self, job: FleetJob
    ) -> "tuple[int, dict, dict[str, str]]":
        """First submission walk: owner shard, then ring siblings."""
        backpressure: "tuple[int, dict, dict[str, str]] | None" = None
        for name in self.ring.preference(job.digest):
            shard = self.shards[name]
            if not shard.available():
                continue
            try:
                status, payload = await self._upstream(
                    shard, "POST", "/jobs", job.body
                )
            except UpstreamError:
                self.metrics.count("upstream_errors")
                continue
            if status in (200, 202):
                await self._register_upstream(job, shard, payload)
                return status, {**payload, "job": job.ident}, {}
            if status == 429:
                # This shard is full; remember the backpressure answer
                # but let a sibling with headroom take the job first.
                retry = payload.get("retry_after_seconds")
                headers = (
                    {"Retry-After": str(max(1, round(float(retry))))}
                    if retry is not None
                    else {}
                )
                backpressure = (429, payload, headers)
                continue
            if status == 400:
                self.table.discard(job)
                return status, payload, {}
            # 5xx / 503: draining or broken — count it against the shard.
            shard.breaker.record_failure()
            self.metrics.count("upstream_errors")
        # No shard accepted.  Waiters may have coalesced onto this job
        # already; they hold its ident, so fail it terminally rather
        # than leaving them polling a ghost.
        if job.waiters > 1:
            job.final = {
                **job.placeholder_status(),
                "state": "failed",
                "error": "no shard admitted the job",
                "error_kind": "rejected",
            }
            self.table.mark_terminal(job, "failed")
        else:
            self.table.discard(job)
        if backpressure is not None:
            self.metrics.count("rejected_busy")
            return backpressure
        self.metrics.count("rejected_busy")
        return 503, {"error": "no healthy shard available"}, {}

    async def _register_upstream(
        self, job: FleetJob, shard: ShardState, payload: dict
    ) -> None:
        job.shard = shard
        job.upstream = payload.get("job")
        job.attempts += 1
        shard.routed += 1
        self.metrics.count("routed")
        state = payload.get("state", "queued")
        if state in TERMINAL_STATES:
            # Only _finalize may flip a job terminal: it sets job.final
            # (fetching the result first) before the state change, so a
            # concurrent poll never observes a terminal job without its
            # final payload.  Assigning a terminal state here would open
            # exactly that window across the result-fetch await.
            await self._finalize(job, payload)
        else:
            job.state = state

    async def _finalize(self, job: FleetJob, status_payload: dict) -> None:
        """Terminal transition: cache the result, retire the job.

        For a completed job the result payload is fetched eagerly (one
        upstream call) so every later ``/result`` poll — including the
        coalesced waiters' — is answered from the router without
        touching the shard again.
        """
        out = {**status_payload, "job": job.ident}
        result = out.pop("result", None)
        if result is not None:
            job.result = result
        state = out.get("state", "failed")
        if state == "done" and job.result is None and job.shard is not None:
            try:
                rstatus, rpayload = await self._upstream(
                    job.shard, "GET", f"/jobs/{job.upstream}/result"
                )
            except UpstreamError:
                rstatus, rpayload = 0, {}
            if rstatus == 200:
                job.result = rpayload.get("result")
        job.final = out
        self.table.mark_terminal(job, state)

    async def _rescue(self, job: FleetJob) -> None:
        """Failover: resubmit a job whose shard lost it (or died)."""
        if job.terminal or job.resubmitting:
            return
        if job.attempts >= self.max_attempts:
            job.final = {
                **job.placeholder_status(),
                "state": "failed",
                "error": (
                    f"gave up after {job.attempts} shard attempts"
                ),
                "error_kind": "failover-exhausted",
            }
            self.table.mark_terminal(job, "failed")
            return
        job.resubmitting = True
        try:
            for name in self.ring.preference(job.digest):
                shard = self.shards[name]
                if not shard.available():
                    continue
                try:
                    status, payload = await self._upstream(
                        shard, "POST", "/jobs", job.body
                    )
                except UpstreamError:
                    self.metrics.count("upstream_errors")
                    continue
                if status in (200, 202):
                    await self._register_upstream(job, shard, payload)
                    self.metrics.count("failover")
                    self.log(
                        event="failover",
                        job=job.ident,
                        shard=shard.name,
                        attempts=job.attempts,
                    )
                    return
            # Nobody took it this round; the next poll tries again.
        finally:
            job.resubmitting = False

    # -- status / result / cancel ----------------------------------------

    async def _job_status(
        self, ident: str, want_result: bool
    ) -> "tuple[int, dict, dict[str, str]]":
        job = self.table.get(ident)
        if job is None:
            return 404, {"error": f"unknown job {ident!r}"}, {}
        if job.terminal:
            return self._terminal_answer(job, want_result)
        refreshed = await self._refresh(job)
        if job.terminal:
            return self._terminal_answer(job, want_result)
        payload = (
            refreshed
            if refreshed is not None
            else job.placeholder_status()
        )
        return (202 if want_result else 200), payload, {}

    def _terminal_answer(
        self, job: FleetJob, want_result: bool
    ) -> "tuple[int, dict, dict[str, str]]":
        assert job.final is not None
        if not want_result:
            return 200, job.final, {}
        if job.state == "done":
            if job.result is not None:
                return 200, {**job.final, "result": job.result}, {}
            # The shard died between completion and the result fetch;
            # resubmitting is the recovery (cheap when the fleet shares
            # an artifact store), but that needs the event loop — tell
            # the client to keep polling and rescue on the next pass.
            return 202, job.final, {}
        return 409, job.final, {}

    async def _refresh(self, job: FleetJob) -> "dict | None":
        """One upstream status poll; drives failover when it fails.

        Returns the rewritten status payload when the shard answered,
        None when the job is between shards (resubmission pending).
        """
        if job.upstream is None or job.shard is None or job.resubmitting:
            return None
        shard = job.shard
        try:
            status, payload = await self._upstream(
                shard, "GET", f"/jobs/{job.upstream}"
            )
        except UpstreamError:
            self.metrics.count("upstream_errors")
            await self._rescue(job)
            return None
        if status == 404:
            # The shard restarted and forgot the job: same as death.
            await self._rescue(job)
            return None
        if status != 200:
            return None
        state = payload.get("state")
        if state in TERMINAL_STATES:
            await self._finalize(job, payload)
            return job.final
        if isinstance(state, str):
            job.state = state
        return {**payload, "job": job.ident}

    async def _cancel(
        self, ident: str
    ) -> "tuple[int, dict, dict[str, str]]":
        job = self.table.get(ident)
        if job is None:
            return 404, {"error": f"unknown job {ident!r}"}, {}
        if job.terminal:
            assert job.final is not None
            return 200, job.final, {}
        if job.upstream is None or job.shard is None:
            job.final = {
                **job.placeholder_status(),
                "state": "cancelled",
                "error": "cancelled before a shard accepted the job",
                "error_kind": "cancelled",
            }
            self.table.mark_terminal(job, "cancelled")
            return 200, job.final, {}
        try:
            status, payload = await self._upstream(
                job.shard, "DELETE", f"/jobs/{job.upstream}"
            )
        except UpstreamError:
            self.metrics.count("upstream_errors")
            return 200, job.placeholder_status(), {}
        if status != 200:
            return status, payload, {}
        state = payload.get("state")
        if state in TERMINAL_STATES:
            await self._finalize(job, payload)
            assert job.final is not None
            return 200, job.final, {}
        return 200, {**payload, "job": job.ident}, {}

    # -- upstream transport ----------------------------------------------

    async def _upstream(
        self,
        shard: ShardState,
        method: str,
        path: str,
        body: "dict | None" = None,
        timeout: "float | None" = None,
    ) -> "tuple[int, dict]":
        """One request to a shard daemon; (status, JSON payload).

        Any transport-level failure raises :class:`UpstreamError` and
        counts against the shard's breaker; an HTTP answer — any status
        — counts as the shard being alive.
        """
        timeout = self.config.upstream_timeout if timeout is None else timeout
        started = time.perf_counter()
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                timeout=timeout,
            )
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else b""
            )
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {shard.host}:{shard.port}",
                "Connection: close",
                "Accept: application/json",
            ]
            if encoded:
                head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(encoded)}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + encoded
            )
            await writer.drain()

            status_line = await asyncio.wait_for(
                reader.readline(), timeout=timeout
            )
            status = int(status_line.split()[1])
            length: "int | None" = None
            while True:
                raw = await asyncio.wait_for(
                    reader.readline(), timeout=timeout
                )
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length is not None:
                raw_body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout
                )
            else:
                raw_body = await asyncio.wait_for(
                    reader.read(), timeout=timeout
                )
        except (
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,
            IndexError,
        ) as exc:
            shard.breaker.record_failure()
            raise UpstreamError(shard, exc) from exc
        finally:
            if writer is not None:
                writer.close()
            self.metrics.observe_upstream(
                shard.name, time.perf_counter() - started
            )
        shard.breaker.record_success()
        shard.healthy = True
        try:
            payload = json.loads(raw_body) if raw_body else {}
        except ValueError:
            payload = {"error": raw_body.decode("utf-8", "replace")[:200]}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return status, payload

    # -- health + metrics -------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            for shard in list(self.shards.values()):
                was_healthy = shard.healthy
                try:
                    status, _ = await self._upstream(
                        shard,
                        "GET",
                        "/healthz",
                        timeout=self.config.health_timeout,
                    )
                    ok = status == 200
                except UpstreamError:
                    ok = False
                if ok:
                    shard.healthy = True
                    continue
                shard.healthy = False
                if was_healthy:
                    self.metrics.count("shard_down")
                    self.log(event="shard_down", shard=shard.name)
                    # Proactive rescue: don't wait for a client poll to
                    # notice the dead shard.
                    for job in self.table.pending_on(shard):
                        await self._rescue(job)

    def _health_payload(self) -> dict:
        return {
            "ok": any(s.healthy for s in self.shards.values()),
            "role": "fleet-router",
            "draining": self.draining,
            "pending_jobs": len(self.table.pending()),
            "shards": [s.snapshot() for s in self.shards.values()],
        }

    async def _metrics_payload(self) -> dict:
        async def fetch(shard: ShardState) -> "tuple[str, dict]":
            try:
                status, payload = await self._upstream(
                    shard, "GET", "/metrics", timeout=5.0
                )
            except UpstreamError as exc:
                return shard.name, {"error": str(exc)}
            if status != 200:
                return shard.name, {"error": f"status {status}"}
            return shard.name, payload

        gathered = await asyncio.gather(
            *(fetch(shard) for shard in self.shards.values())
        )
        shard_metrics = dict(gathered)
        aggregate: "dict[str, dict[str, int]]" = {"jobs": {}, "cache": {}}
        for payload in shard_metrics.values():
            for section in ("jobs", "cache"):
                for key, value in payload.get(section, {}).items():
                    if isinstance(value, (int, float)) and key != "hit_rate":
                        bucket = aggregate[section]
                        bucket[key] = bucket.get(key, 0) + value
        return {
            "fleet": {
                **self.metrics.snapshot(),
                "draining": self.draining,
                "pending_jobs": len(self.table.pending()),
                "shards": [s.snapshot() for s in self.shards.values()],
            },
            "aggregate": aggregate,
            "shards": shard_metrics,
        }
