"""Consistent hashing of payload digests onto shard names.

Classic ring construction: each shard contributes ``replicas`` virtual
points at ``sha256(f"{name}#{i}")``, a key routes to the first point
clockwise from its own hash, and :meth:`preference` continues the walk
to yield a deterministic failover order (every shard exactly once,
nearest first).  Properties the fleet leans on:

* **Stability** — the mapping is a pure function of the shard *names*,
  so every router instance (and a restarted one) routes identically,
  and a shard that dies and comes back under the same name owns the
  same keys.  Routing by payload digest therefore keeps each shard's
  result cache and warm window memo focused on its own slice of the
  keyspace.
* **Minimal disruption** — removing one of N shards moves only ~1/N of
  the keyspace (to the dead shard's ring successors), so a failover
  never reshuffles traffic that healthy shards were already serving.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual points per shard.  64 keeps the ring's load imbalance a few
#: percent at single-digit shard counts while staying trivially cheap
#: to build and search.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable consistent-hash ring over shard names."""

    def __init__(
        self, nodes: "list[str]", *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {sorted(nodes)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.nodes = tuple(nodes)
        self.replicas = replicas
        points: "list[tuple[int, str]]" = []
        for name in nodes:
            for index in range(replicas):
                points.append((_point(f"{name}#{index}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def route(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        return self.preference(key)[0]

    def preference(self, key: str) -> "list[str]":
        """Every shard, nearest-successor first — the failover order.

        The first element is the key's owner; subsequent elements are
        where the key lands as preceding shards are skipped (dead,
        breaker open, full).  Walking the ring — rather than hashing
        again per attempt — keeps the order identical for every router
        observing the same membership.
        """
        start = bisect.bisect_right(self._points, _point(key))
        seen: "set[str]" = set()
        order: "list[str]" = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == len(self.nodes):
                    break
        return order

    def spread(self, keys: "list[str]") -> "dict[str, int]":
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {name: 0 for name in self.nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
