"""``python -m repro.fleet`` runs the fleet (same as ``repro-fleet``)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
