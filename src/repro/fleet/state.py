"""The router's bookkeeping, kept free of any I/O so it unit-tests flat.

Three pieces:

* :class:`ShardState` — one upstream daemon as the router sees it:
  address, health, and a :class:`CircuitBreaker` that stops the router
  from burning its failover budget on a shard that keeps refusing.
* :class:`FleetJob` / :class:`FleetJobTable` — the fleet-level job
  registry.  The router issues its own job idents (``f`` + hex) and
  remembers, per job, the original submission body — that is what makes
  failover possible: when a shard dies with the job in flight, the
  router *resubmits the payload* to a ring sibling and the client keeps
  polling the same fleet ident, none the wiser.  The table doubles as
  the coalescing index: one in-flight entry per ``(payload digest,
  option facet)`` key, so concurrent identical submissions share one
  upstream job and one fleet ident.
* :class:`RouterMetrics` — counters plus per-shard latency rings for
  the fleet-level ``/metrics`` document.

Everything here is touched only from the router's event loop (or a
test), so there are no locks by design.
"""

from __future__ import annotations

import time
import uuid
from collections import Counter, deque
from dataclasses import dataclass, field

from ..service.metrics import LatencyRing

#: Consecutive upstream failures before a shard's breaker opens.
BREAKER_THRESHOLD = 3

#: Seconds an open breaker refuses traffic before allowing one probe.
BREAKER_COOLDOWN = 2.0


class CircuitBreaker:
    """A per-shard failure gate: closed -> open -> half-open -> closed.

    ``allow()`` answers "may I send this shard a request right now?".
    While open, it answers False until the cooldown passes, then True
    exactly once (the half-open probe); the probe's outcome either
    closes the breaker or re-opens it for another cooldown.
    """

    def __init__(
        self,
        threshold: int = BREAKER_THRESHOLD,
        cooldown: float = BREAKER_COOLDOWN,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.opened_monotonic: "float | None" = None
        self._probing = False

    @property
    def open(self) -> bool:
        return self.opened_monotonic is not None

    def allow(self) -> bool:
        if self.opened_monotonic is None:
            return True
        if time.monotonic() - self.opened_monotonic < self.cooldown:
            return False
        if self._probing:
            return False  # one half-open probe at a time
        self._probing = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_monotonic = None
        self._probing = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probing = False
        if self.consecutive_failures >= self.threshold:
            self.opened_monotonic = time.monotonic()

    def snapshot(self) -> dict:
        return {
            "open": self.open,
            "consecutive_failures": self.consecutive_failures,
        }


@dataclass
class ShardState:
    """One upstream daemon: address, health, breaker, accounting."""

    name: str
    host: str
    port: int
    healthy: bool = True
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    routed: int = 0  #: submissions this shard received
    generation: int = 0  #: bumped on every address update (restart)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def update_address(self, host: str, port: int) -> None:
        """Point at a restarted shard; resets health and the breaker."""
        self.host = host
        self.port = port
        self.generation += 1
        self.healthy = True
        self.breaker.record_success()

    def available(self) -> bool:
        """Worth sending a request to right now."""
        return self.healthy and self.breaker.allow()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "healthy": self.healthy,
            "routed": self.routed,
            "generation": self.generation,
            "breaker": self.breaker.snapshot(),
        }


#: Fleet job states mirror the daemon's JobState strings on purpose —
#: clients must not be able to tell a router from a daemon.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class FleetJob:
    """One client-visible job and everything needed to keep it alive."""

    ident: str
    body: dict  #: the original submission — the failover payload
    key: str  #: coalescing key: (payload digest, option facet) hash
    digest: str
    submitted_wall: float = field(default_factory=time.time)
    shard: "ShardState | None" = None
    upstream: "str | None" = None  #: the shard's job ident
    attempts: int = 0  #: upstream submissions performed (1 = no failover)
    waiters: int = 1  #: submissions coalesced onto this job (incl. first)
    state: str = "queued"
    final: "dict | None" = None  #: terminal status payload, job field ours
    result: "dict | None" = None  #: terminal result payload when fetched
    resubmitting: bool = False  #: a failover resubmission is in flight

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def placeholder_status(self) -> dict:
        """Status served before/while no upstream answer is available."""
        return {
            "job": self.ident,
            "state": self.state if self.terminal else "queued",
            "digest": self.digest,
            "cached": False,
            "submitted_at": self.submitted_wall,
        }


class FleetJobTable:
    """Registry of fleet jobs + the in-flight coalescing index."""

    def __init__(self, retain: int = 512) -> None:
        self.retain = retain
        self._jobs: "dict[str, FleetJob]" = {}
        self._inflight: "dict[str, FleetJob]" = {}
        self._finished: "deque[str]" = deque()

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, ident: str) -> "FleetJob | None":
        return self._jobs.get(ident)

    def coalesce(self, key: str) -> "FleetJob | None":
        """The live job a new identical submission should join, if any."""
        job = self._inflight.get(key)
        if job is not None and not job.terminal:
            job.waiters += 1
            return job
        return None

    def create(self, body: dict, key: str, digest: str) -> FleetJob:
        """Register a fresh fleet job and index it for coalescing."""
        job = FleetJob(
            ident=f"f{uuid.uuid4().hex[:12]}",
            body=body,
            key=key,
            digest=digest,
        )
        self._jobs[job.ident] = job
        self._inflight[key] = job
        return job

    def mark_terminal(self, job: FleetJob, state: str) -> None:
        """Move a job to a terminal state and retire its coalesce slot."""
        if job.terminal:
            return
        job.state = state
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._finished.append(job.ident)
        while len(self._finished) > self.retain:
            evicted = self._finished.popleft()
            self._jobs.pop(evicted, None)

    def discard(self, job: FleetJob) -> None:
        """Forget a job whose upstream submission never succeeded."""
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._jobs.pop(job.ident, None)

    def pending(self) -> "list[FleetJob]":
        """Every job not yet terminal (drain and rescue walk this)."""
        return [job for job in self._jobs.values() if not job.terminal]

    def pending_on(self, shard: ShardState) -> "list[FleetJob]":
        return [job for job in self.pending() if job.shard is shard]


class RouterMetrics:
    """Counters + per-shard upstream latency for fleet ``/metrics``."""

    def __init__(self, ring_size: int = 512) -> None:
        self.started_monotonic = time.monotonic()
        self.started_wall = time.time()
        self.counters: Counter = Counter()
        self.upstream_latency: "dict[str, LatencyRing]" = {}
        self._ring_size = ring_size

    def count(self, event: str, amount: int = 1) -> None:
        self.counters[event] += amount

    def observe_upstream(self, shard: str, seconds: float) -> None:
        ring = self.upstream_latency.get(shard)
        if ring is None:
            ring = self.upstream_latency[shard] = LatencyRing(
                self._ring_size
            )
        ring.observe(seconds)

    def snapshot(self) -> dict:
        return {
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
            "started_at": self.started_wall,
            "counters": dict(self.counters),
            "upstream_latency": {
                shard: ring.snapshot()
                for shard, ring in sorted(self.upstream_latency.items())
            },
        }
