"""The fleet tier: N extraction daemons behind one async front door.

One ``repro-serve`` daemon scales to one box.  This package is the
multi-process story (docs/FLEET.md):

* :mod:`repro.fleet.hashring` — consistent hashing of payload digests
  onto shard names, with a stable successor walk for failover;
* :mod:`repro.fleet.state` — the router's bookkeeping: shard health +
  circuit breakers, the fleet job table, in-flight request coalescing,
  and the router's own metrics;
* :mod:`repro.fleet.router` — the asyncio front-end that speaks the
  daemon's JSON job API unchanged and routes every request to a shard;
* :mod:`repro.fleet.supervisor` — spawns and babysits the shard
  processes (spawn, drain, rolling restart, SIGKILL for tests);
* :mod:`repro.fleet.cli` — the ``repro-fleet`` command gluing the two
  together into one supervised process tree.

The shards share one on-disk result store (the *shared artifact
store*, ``repro.parallel.cache.JsonEnvelopeStore`` with budgets), so a
result extracted anywhere in the fleet is a disk hit everywhere and a
replacement shard warm-starts from its siblings' work.
"""

from .hashring import HashRing
from .router import DEFAULT_FLEET_PORT, FleetRouter, RouterConfig
from .state import CircuitBreaker, FleetJob, FleetJobTable, ShardState
from .supervisor import FleetSupervisor, ShardProcess

__all__ = [
    "HashRing",
    "FleetRouter",
    "RouterConfig",
    "DEFAULT_FLEET_PORT",
    "CircuitBreaker",
    "FleetJob",
    "FleetJobTable",
    "ShardState",
    "FleetSupervisor",
    "ShardProcess",
]
