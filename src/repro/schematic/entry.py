"""Schematic entry for layout-vs-schematic comparison.

Section 1 of the paper: "If a circuit's schematic diagram is available
to the designer, it can be compared to the extracted circuit: if the two
are equivalent, the layout corresponds to the original circuit."  This
module is the schematic side of that check -- a small netlist-entry API
with NMOS gate-level helpers -- plus :func:`lvs`, which runs the
comparison against an extracted circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.netlist import Circuit
from ..wirelist.compare import ComparisonReport, compare_netlists
from ..wirelist.flatten import FlatCircuit, FlatDevice, circuit_to_flat


@dataclass
class Schematic:
    """A hand-entered NMOS netlist.

    Nets are referred to by name; ``VDD`` and ``GND`` exist implicitly.
    Devices are added either directly (:meth:`enhancement`,
    :meth:`depletion`) or through ratioed-gate helpers (:meth:`inverter`,
    :meth:`nand`, :meth:`nor`), which instantiate the standard
    load-plus-pulldown structures the extractor will find in the layout.
    """

    name: str = "schematic"
    _devices: list[tuple[str, str, str, str]] = field(default_factory=list)
    _nets: dict[str, int] = field(default_factory=dict)
    _anon: int = 0

    def net(self, name: str | None = None) -> str:
        """Declare (or create an anonymous) net; returns its name."""
        if name is None:
            self._anon += 1
            name = f"_anon{self._anon}"
        if name not in self._nets:
            self._nets[name] = len(self._nets)
        return name

    # -- primitive devices ---------------------------------------------

    def enhancement(self, gate: str, source: str, drain: str) -> "Schematic":
        self._devices.append(
            ("nEnh", self.net(gate), self.net(source), self.net(drain))
        )
        return self

    def depletion(self, gate: str, source: str, drain: str) -> "Schematic":
        self._devices.append(
            ("nDep", self.net(gate), self.net(source), self.net(drain))
        )
        return self

    # -- ratioed NMOS gates -----------------------------------------------

    def load(self, output: str, vdd: str = "VDD") -> "Schematic":
        """The standard depletion pullup: gate tied to the output."""
        return self.depletion(gate=output, source=vdd, drain=output)

    def inverter(
        self, input_: str, output: str, vdd: str = "VDD", gnd: str = "GND"
    ) -> "Schematic":
        self.load(output, vdd)
        return self.enhancement(gate=input_, source=output, drain=gnd)

    def nand(
        self,
        inputs: "list[str]",
        output: str,
        vdd: str = "VDD",
        gnd: str = "GND",
    ) -> "Schematic":
        """Series pulldown chain under one load.

        ``inputs`` are ordered from the output toward ground -- the
        stacking order is electrically symmetric for logic but *is* part
        of the netlist topology, and LVS will flag a layout whose series
        order differs from the schematic's.
        """
        if not inputs:
            raise ValueError("nand needs at least one input")
        self.load(output, vdd)
        node = output
        for input_ in inputs[:-1]:
            nxt = self.net()
            self.enhancement(gate=input_, source=node, drain=nxt)
            node = nxt
        return self.enhancement(gate=inputs[-1], source=node, drain=gnd)

    def nor(
        self,
        inputs: "list[str]",
        output: str,
        vdd: str = "VDD",
        gnd: str = "GND",
    ) -> "Schematic":
        """Parallel pulldowns under one load."""
        if not inputs:
            raise ValueError("nor needs at least one input")
        self.load(output, vdd)
        for input_ in inputs:
            self.enhancement(gate=input_, source=output, drain=gnd)
        return self

    def pass_transistor(self, gate: str, a: str, b: str) -> "Schematic":
        return self.enhancement(gate=gate, source=a, drain=b)

    # -- conversion -------------------------------------------------------

    @property
    def device_count(self) -> int:
        return len(self._devices)

    def to_flat(self, named: "tuple[str, ...] | None" = None) -> FlatCircuit:
        """Flatten to the comparator's netlist form.

        ``named`` selects which net names anchor the comparison; by
        default every non-anonymous net name is kept.  Restricting it to
        the external ports makes the check tolerant of internal-name
        differences.
        """
        flat = FlatCircuit()
        ids = dict(self._nets)
        for kind, gate, source, drain in self._devices:
            flat.devices.append(
                FlatDevice(kind, ids[gate], ids[source], ids[drain])
            )
        for name, ident in ids.items():
            if name.startswith("_anon"):
                continue
            if named is not None and name not in named:
                continue
            flat.net_names.setdefault(ident, []).append(name)
        flat.net_count = len(ids)
        return flat


def lvs(
    layout_circuit: "Circuit | FlatCircuit",
    schematic: Schematic,
    *,
    ports: "tuple[str, ...] | None" = None,
) -> ComparisonReport:
    """Layout vs schematic: are the two netlists equivalent?

    ``ports`` optionally restricts name-anchoring to the listed nets (the
    chip's external connections); otherwise every name both sides share
    is required to match.
    """
    extracted = (
        layout_circuit
        if isinstance(layout_circuit, FlatCircuit)
        else circuit_to_flat(layout_circuit)
    )
    reference = schematic.to_flat(named=ports)
    if ports is not None:
        extracted = _restrict_names(extracted, ports)
    return compare_netlists(extracted, reference)


def _restrict_names(flat: FlatCircuit, ports: "tuple[str, ...]") -> FlatCircuit:
    out = FlatCircuit()
    out.devices = list(flat.devices)
    out.net_count = flat.net_count
    for net, names in flat.net_names.items():
        kept = [n for n in names if n in ports]
        if kept:
            out.net_names[net] = kept
    return out
