"""Schematic entry and layout-vs-schematic (LVS) comparison."""

from .entry import Schematic, lvs

__all__ = ["Schematic", "lvs"]
