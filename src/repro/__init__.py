"""repro: a reproduction of "ACE: A Circuit Extractor" (DAC 1983).

A flat, edge-based circuit extractor for NMOS layouts, its hierarchical
companion HEXT, the raster-scan and region-merge baselines it was
benchmarked against, and the workload generators and harnesses that
regenerate every table in the paper.

Quickstart::

    from repro import extract, workloads
    from repro.wirelist import to_wirelist, write_wirelist

    circuit = extract(workloads.inverter(), keep_geometry=True)
    print(write_wirelist(to_wirelist(circuit, name="inverter")))
"""

from .core import Circuit, Device, Net, extract, extract_report
from .tech import NMOS

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Device",
    "NMOS",
    "Net",
    "extract",
    "extract_report",
]
