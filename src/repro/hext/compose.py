"""The Compose routine: merging two adjacent windows.

Following section 3 of the HEXT paper:

1. find all pairs of touching boundary segments from the two windows;
2. for each pair, step through the interface-segment lists for
   corresponding layers and establish signal equivalences;
3. compute the interface for the new window.

Matching spans on conducting layers union their nets; matching channel
spans union their partial transistors; a channel span facing a
conducting-diffusion span adds terminal contact perimeter to the partial
(the cross-window source/drain case).  Partial transistors left with no
channel span on the new boundary are "output as completed transistors".

Compose never copies child circuit contents -- it stores child pointers,
a net-offset, and the equivalence pairs -- so its cost is proportional to
the new window's boundary, which is what drives the O(sqrt N) ideal-case
behaviour of Table 4-1.  Coordinates are whatever parent space the two
:class:`Placed` inputs share; the result lives in that same space.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.unionfind import UnionFind
from ..geometry import Box, normalize_region
from ..tech import Technology
from .fragment import (
    BOTTOM,
    CHANNEL,
    ChildRef,
    DeviceRec,
    Fragment,
    IfaceRec,
    LEFT,
    Placed,
    RIGHT,
    TOP,
    opposite_face,
)


def compose(a: Placed, b: Placed, tech: Technology) -> Fragment:
    """Merge two placed fragments; result is in the same coordinates."""
    diff_layer = tech.channel_layers[0].cif_name
    na = a.fragment.net_count
    nb = b.fragment.net_count

    # Interface records in parent coordinates.  Conducting idents from b
    # are offset by na (the wirelist format's NetOffset); channel idents
    # stay raw and are tagged by side through the +pa convention below.
    recs_a = a.interface_records()
    recs_b = [
        IfaceRec(
            r.face,
            r.layer,
            r.fixed,
            r.lo,
            r.hi,
            r.ident if r.layer == CHANNEL else r.ident + na,
        )
        for r in b.interface_records()
    ]

    equivalences: list[tuple[int, int]] = []
    pa = len(a.fragment.partials)
    pb = len(b.fragment.partials)
    devs = UnionFind()
    for _ in range(pa + pb):
        devs.make()
    # Cross-boundary terminal contacts, keyed by *raw* partial id; they
    # are folded through the union-find only after all unions are known.
    extra_terms: dict[int, dict[int, int]] = defaultdict(dict)

    def add_term(pid: int, net: int, length: int) -> None:
        bucket = extra_terms[pid]
        bucket[net] = bucket.get(net, 0) + length

    # Steps 1+2: match touching spans.  Records are grouped per boundary
    # line, face, and layer; per-layer spans on one face of one line are
    # disjoint and sorted, so each pairing is a linear interval join --
    # this is the "step through the interface-segment lists for
    # corresponding layers" of section 3.
    index_a: dict[tuple, list[IfaceRec]] = defaultdict(list)
    for rec in recs_a:
        index_a[(rec.face, rec.fixed, rec.layer)].append(rec)
    index_b: dict[tuple, list[IfaceRec]] = defaultdict(list)
    for rec in recs_b:
        index_b[(rec.face, rec.fixed, rec.layer)].append(rec)
    for group in index_a.values():
        group.sort(key=lambda r: r.lo)
    for group in index_b.values():
        group.sort(key=lambda r: r.lo)

    def on_same_layer(ra: IfaceRec, rb: IfaceRec, overlap: int) -> None:
        if ra.layer == CHANNEL:
            devs.union(ra.ident, pa + rb.ident)
        else:
            equivalences.append((ra.ident, rb.ident))

    def a_channel_b_diff(ra: IfaceRec, rb: IfaceRec, overlap: int) -> None:
        add_term(ra.ident, rb.ident, overlap)

    def a_diff_b_channel(ra: IfaceRec, rb: IfaceRec, overlap: int) -> None:
        add_term(pa + rb.ident, ra.ident, overlap)

    for (face, fixed, layer), group_b in index_b.items():
        far = opposite_face(face)
        group_a = index_a.get((far, fixed, layer))
        if group_a:
            _interval_join(group_a, group_b, on_same_layer)
        if layer == diff_layer:
            chan_a = index_a.get((far, fixed, CHANNEL))
            if chan_a:
                _interval_join(chan_a, group_b, a_channel_b_diff)
        elif layer == CHANNEL:
            diff_a = index_a.get((far, fixed, diff_layer))
            if diff_a:
                _interval_join(diff_a, group_b, a_diff_b_channel)

    # Merge partial records through the union-find.
    shifted_partials = [
        rec.shifted(a.dx, a.dy, 0) for rec in a.fragment.partials
    ] + [rec.shifted(b.dx, b.dy, na) for rec in b.fragment.partials]
    merged: dict[int, DeviceRec] = {}
    for pid, rec in enumerate(shifted_partials):
        root = devs.find(pid)
        if root in merged:
            merged[root] = merged[root].merged_with(rec)
        else:
            merged[root] = rec
    for pid, terms in extra_terms.items():
        rec = merged[devs.find(pid)]
        for net, length in terms.items():
            rec.terms[net] = rec.terms.get(net, 0) + length

    # Step 3: the new interface = surviving spans of both windows.  A
    # side's records were already filtered against its own region by the
    # composes that built it, so each side is probed only against the
    # *other* side's rectangles (with a bounding-box fast path).
    rects_a = a.region_rects()
    rects_b = b.region_rects()
    region = normalize_region(rects_a + rects_b)
    bbox_a = _bbox(rects_a)
    bbox_b = _bbox(rects_b)
    survivors: list[IfaceRec] = []
    boundary_roots: set[int] = set()
    for side_recs, offset, far_rects, far_bbox in (
        (recs_a, 0, rects_b, bbox_b),
        (recs_b, pa, rects_a, bbox_a),
    ):
        for rec in side_recs:
            if _outside_bbox(rec, far_bbox):
                spans = [(rec.lo, rec.hi)]
            else:
                spans = _surviving_spans(rec, far_rects)
            if not spans:
                continue
            if rec.layer == CHANNEL:
                root = devs.find(rec.ident + offset)
                boundary_roots.add(root)
                ident = root
            else:
                ident = rec.ident
            for lo, hi in spans:
                survivors.append(
                    IfaceRec(rec.face, rec.layer, rec.fixed, lo, hi, ident)
                )

    # Partials with no surviving channel span complete here.
    completed: list[DeviceRec] = []
    still_partial: list[tuple[int, DeviceRec]] = []
    for root, rec in merged.items():
        if root in boundary_roots:
            still_partial.append((root, rec))
        else:
            completed.append(rec)
    new_pid = {root: i for i, (root, _) in enumerate(still_partial)}
    survivors = [
        IfaceRec(r.face, r.layer, r.fixed, r.lo, r.hi, new_pid[r.ident])
        if r.layer == CHANNEL
        else r
        for r in survivors
    ]

    return Fragment(
        region=tuple(region),
        net_count=na + nb,
        children=(
            ChildRef(a.fragment, a.dx, a.dy, 0),
            ChildRef(b.fragment, b.dx, b.dy, na),
        ),
        equivalences=tuple(equivalences),
        devices=tuple(completed),
        partials=tuple(rec for _, rec in still_partial),
        interface=tuple(survivors),
    )


def _interval_join(group_a: list[IfaceRec], group_b: list[IfaceRec], fn) -> None:
    """Visit overlapping (a, b) record pairs of two sorted span lists."""
    i = j = 0
    na, nb = len(group_a), len(group_b)
    while i < na and j < nb:
        ra, rb = group_a[i], group_b[j]
        overlap = min(ra.hi, rb.hi) - max(ra.lo, rb.lo)
        if overlap > 0:
            fn(ra, rb, overlap)
        if ra.hi <= rb.hi:
            i += 1
        else:
            j += 1


def _bbox(rects: list[Box]) -> Box:
    return Box(
        min(r.xmin for r in rects),
        min(r.ymin for r in rects),
        max(r.xmax for r in rects),
        max(r.ymax for r in rects),
    )


def _outside_bbox(rec: IfaceRec, bbox: Box) -> bool:
    """True when ``rec``'s span cannot touch material inside ``bbox``."""
    if rec.face in (LEFT, RIGHT):
        return (
            rec.fixed < bbox.xmin
            or rec.fixed > bbox.xmax
            or rec.hi <= bbox.ymin
            or rec.lo >= bbox.ymax
        )
    return (
        rec.fixed < bbox.ymin
        or rec.fixed > bbox.ymax
        or rec.hi <= bbox.xmin
        or rec.lo >= bbox.xmax
    )


def _surviving_spans(
    rec: IfaceRec, region: list[Box]
) -> list[tuple[int, int]]:
    """Portions of ``rec``'s span still on the outside of the new region.

    A record stops being boundary wherever the combined region covers the
    far side of its line; the far side is probed with half-open interval
    tests so rectangles spanning across the line are handled too.
    """
    cover: list[tuple[int, int]] = []
    fixed = rec.fixed
    if rec.face == RIGHT:
        cover = [
            (r.ymin, r.ymax)
            for r in region
            if r.xmin <= fixed < r.xmax
        ]
    elif rec.face == LEFT:
        cover = [
            (r.ymin, r.ymax)
            for r in region
            if r.xmin < fixed <= r.xmax
        ]
    elif rec.face == TOP:
        cover = [
            (r.xmin, r.xmax)
            for r in region
            if r.ymin <= fixed < r.ymax
        ]
    elif rec.face == BOTTOM:
        cover = [
            (r.xmin, r.xmax)
            for r in region
            if r.ymin < fixed <= r.ymax
        ]
    if not cover:
        return [(rec.lo, rec.hi)]
    cover.sort()
    spans: list[tuple[int, int]] = []
    pos = rec.lo
    for lo, hi in cover:
        if hi <= pos:
            continue
        if lo >= rec.hi:
            break
        if lo > pos:
            spans.append((pos, lo))
        pos = max(pos, hi)
        if pos >= rec.hi:
            break
    if pos < rec.hi:
        spans.append((pos, rec.hi))
    return spans
