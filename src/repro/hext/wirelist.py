"""Hierarchical wirelist output for HEXT results (Figure 2-2).

Each unique fragment becomes one ``DefPart Window<k>``; composed windows
instantiate their children with net maps (the explicit form of the
paper's ``NetOffset`` convention) and record boundary equivalences as
``(Net a b)`` declarations.  Flattening the result reproduces exactly the
circuit :func:`repro.hext.extractor.resolve` computes -- the test suite
checks this through the netlist comparator.
"""

from __future__ import annotations

from ..core.sizing import size_device
from ..tech import Technology
from ..wirelist.model import (
    DefPart,
    DeviceInstance,
    NetDecl,
    SubpartInstance,
    Wirelist,
    primitives_for,
)
from .extractor import HextResult
from .fragment import DeviceRec, Fragment


def to_hierarchical_wirelist(
    result: HextResult, name: str = "chip"
) -> Wirelist:
    """Build the hierarchical wirelist for a HEXT extraction."""
    tech = result.tech
    order = _topological(result.fragment)  # parents strictly before children

    # Propagate referenced-net sets down the DAG: a fragment must export
    # whatever any parent's equivalences, completed devices, or own
    # exports reach into it.
    exports: dict[int, set[int]] = {id(frag): set() for frag in order}
    needed: dict[int, set[int]] = {}
    for frag in order:
        refs = set(exports[id(frag)])
        refs.update(_level_referenced(frag, frag is result.fragment))
        needed[id(frag)] = refs
        for child in frag.children:
            size = child.fragment.net_count
            exports[id(child.fragment)].update(
                i - child.net_offset
                for i in refs
                if child.net_offset <= i < child.net_offset + size
            )

    names = {
        id(frag): f"Window{index}"
        for index, frag in enumerate(reversed(order), start=1)
    }
    parts = [
        _defpart(
            frag,
            names,
            sorted(exports[id(frag)]),
            needed[id(frag)],
            tech,
            include_partials=frag is result.fragment,
        )
        for frag in reversed(order)
    ]
    return Wirelist(
        name=name,
        defparts=parts,
        top=names[id(result.fragment)],
        primitives=primitives_for(tech),
    )


def _level_referenced(frag: Fragment, is_top: bool) -> set[int]:
    """Net ids referenced by this fragment's own level."""
    refs: set[int] = set()
    for a, b in frag.equivalences:
        refs.add(a)
        refs.add(b)
    recs: tuple[DeviceRec, ...] = frag.devices
    if is_top:
        recs = recs + frag.partials
    for rec in recs:
        refs.update(rec.terms)
        refs.update(rec.gates)
    for ident in frag.net_names:
        refs.add(ident)
    return refs


def _topological(root: Fragment) -> list[Fragment]:
    """Unique fragments with every parent before any of its children."""
    postorder: list[Fragment] = []
    visited: set[int] = set()

    def visit(frag: Fragment) -> None:
        if id(frag) in visited:
            return
        visited.add(id(frag))
        for child in frag.children:
            visit(child.fragment)
        postorder.append(frag)

    visit(root)
    postorder.reverse()
    return postorder


def _defpart(
    frag: Fragment,
    names: dict[int, str],
    export_ids: list[int],
    referenced: set[int],
    tech: Technology,
    include_partials: bool,
) -> DefPart:
    part = DefPart(name=names[id(frag)])
    part.exports = [f"N{i}" for i in export_ids]

    for inst, child in enumerate(frag.children):
        size = child.fragment.net_count
        child_ids = sorted(
            i - child.net_offset
            for i in referenced
            if child.net_offset <= i < child.net_offset + size
        )
        part.subparts.append(
            SubpartInstance(
                part=names[id(child.fragment)],
                inst_name=f"P{inst + 1}",
                loc_offset=(child.dx, child.dy),
                net_map={
                    f"N{i}": f"N{i + child.net_offset}" for i in child_ids
                },
            )
        )

    for a, b in frag.equivalences:
        part.nets.append(NetDecl(names=[f"N{a}", f"N{b}"]))
    for ident, name_list in frag.net_names.items():
        part.nets.append(NetDecl(names=[f"N{ident}", *name_list]))

    device_recs: list[DeviceRec] = list(frag.devices)
    if include_partials:
        device_recs.extend(frag.partials)
    for i, rec in enumerate(device_recs):
        part.devices.append(_device_instance(rec, i, tech))

    part.locals_ = [f"N{i}" for i in sorted(referenced - set(export_ids))]
    return part


def _device_instance(
    rec: DeviceRec, index: int, tech: Technology
) -> DeviceInstance:
    sized = size_device(rec.area, dict(rec.terms))
    gate = min(rec.gates) if rec.gates else None
    loc = (-rec.loc[1], rec.loc[0]) if rec.loc is not None else None
    return DeviceInstance(
        kind=tech.device_name(rec.impl),
        inst_name=f"D{index}",
        gate=f"N{gate}" if gate is not None else None,
        source=f"N{sized.source}" if sized.source is not None else None,
        drain=f"N{sized.drain}" if sized.drain is not None else None,
        location=loc,
        length=sized.length,
        width=sized.width,
    )
