"""Incremental extraction: re-extract only what changed.

The ACE paper closes with: "The edge-based algorithms are well suited
for hierarchical and incremental extractors.  A modified version of ACE
is used as a part of an experimental hierarchical extractor being
developed at CMU."  HEXT is that extractor; this module adds the
*incremental* half: the window memo table persists across extraction
runs, so re-extracting an edited chip only pays for windows whose
content actually changed -- everything else is recognized as redundant
against the previous session's table.

Because fragments are immutable and keyed purely by window content, the
persistent table needs no invalidation: an edit changes a window's key,
misses the cache, and is re-extracted; stale entries are simply never
looked up again (``prune()`` drops entries unused in the latest run).

Implementation-wise this is plan-then-execute with a persistent memo:
the plan walk treats every previously memoized key as redundant (it
stops there without descending), the execute phase skips primitives the
memo already holds, and composition pulls reused composites straight
from the memo.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cif import Layout, parse
from ..tech import NMOS, Technology
from .extractor import (
    HextResult,
    HextStats,
    compose_plan,
    execute_plan,
    plan_windows,
)
from .windows import WindowPlanner

if TYPE_CHECKING:
    from ..parallel.pool import PersistentPool


@dataclass
class IncrementalStats:
    """Cross-run reuse accounting for the latest extraction."""

    windows_seen: int
    reused_from_previous: int  #: memo hits on entries from earlier runs
    reused_within_run: int  #: ordinary same-run redundancy
    freshly_extracted: int  #: unique windows built this run

    @property
    def reuse_fraction(self) -> float:
        if not self.windows_seen:
            return 0.0
        return (
            self.reused_from_previous + self.reused_within_run
        ) / self.windows_seen


class IncrementalExtractor:
    """A HEXT front door whose memo table survives between calls."""

    def __init__(
        self,
        tech: Technology | None = None,
        *,
        resolution: int = 50,
        engine: str = "auto",
    ) -> None:
        self.tech = tech or NMOS()
        self.resolution = resolution
        # Purely a speed knob: fragments are byte-identical across strip
        # engines, so the persistent memo never needs engine-keyed entries.
        self.engine = engine
        self._memo: dict[object, object] = {}
        self._last_used: set[object] = set()
        self.last_stats: IncrementalStats | None = None

    def __len__(self) -> int:
        return len(self._memo)

    def extract(
        self,
        source: "str | Layout",
        *,
        jobs: "int | None" = None,
        cache: "str | None" = None,
        pool: "PersistentPool | None" = None,
    ) -> HextResult:
        """Extract, reusing any window seen in previous calls.

        ``jobs``, ``cache``, and ``pool`` pass straight through to the
        execute phase (see :func:`repro.hext.extractor.execute_plan`):
        windows the persistent memo does not already hold can be fanned
        out over worker processes — the extraction service hands in its
        long-lived :class:`~repro.parallel.pool.PersistentPool` here —
        or served from the on-disk fragment cache.
        """
        layout = parse(source) if isinstance(source, str) else source
        previous_keys = frozenset(self._memo)
        stats = HextStats()
        start = time.perf_counter()
        planner = WindowPlanner(layout, self.resolution)
        top = planner.top_content()
        stats.frontend_seconds += time.perf_counter() - start

        plan = plan_windows(planner, top, stats, seen=previous_keys)
        execute_plan(
            plan, self.tech, stats,
            resolution=self.resolution, memo=self._memo,
            jobs=jobs, cache=cache, pool=pool, engine=self.engine,
        )
        fragment = compose_plan(plan, self._memo, self.tech, stats)
        self._last_used = plan.used_keys()

        previous = sum(
            count for key, count in plan.hits.items() if key in previous_keys
        )
        self.last_stats = IncrementalStats(
            windows_seen=stats.windows_seen,
            reused_from_previous=previous,
            reused_within_run=stats.memo_hits - previous,
            freshly_extracted=stats.unique_windows,
        )
        return HextResult(
            fragment=fragment,
            origin=(top.region.xmin, top.region.ymin),
            stats=stats,
            tech=self.tech,
        )

    def prune(self) -> int:
        """Drop cache entries not used by the latest extraction.

        Returns the number of entries removed.  Useful for long editing
        sessions where abandoned cell revisions would otherwise pile up.
        """
        stale = [key for key in self._memo if key not in self._last_used]
        for key in stale:
            del self._memo[key]
        return len(stale)

    def clear(self) -> None:
        self._memo.clear()
        self._last_used.clear()
