"""HEXT's front-end: window contents, expansion, and subdivision.

The front-end "performs three basic operations: recognize redundant
windows, divide a window into a set of non-overlapping sub-windows, and
determine how to connect each sub-window to its neighbors."  This module
implements the middle one plus the canonicalization that powers the
first; composition order (the third) is a sort in the extractor.

Subdivision follows section 3 of the HEXT paper:

1. a window containing only geometry is primitive -- send to the back-end;
2. expand all symbol instances one level;
3. wherever expanded instance bounding boxes overlap, apply the disjoint
   transformation (Newell-Fitzpatrick): expand the offenders further until
   all instance boxes are disjoint;
4. slice the window, using the instance boxes for guidance: each instance
   box becomes a sub-window, and the leftover area is cut into cells
   along the box edges; top-level geometry is clipped into whichever
   sub-window covers it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..cif.layout import TOP_SYMBOL, Layout
from ..frontend.instantiate import PlacedLabel, symbol_bboxes
from ..geometry import Box, Transform


@dataclass
class Content:
    """What one window contains, in chip (parent) coordinates."""

    region: Box
    geometry: list[tuple[str, Box]] = field(default_factory=list)
    instances: list[tuple[int, Transform]] = field(default_factory=list)
    labels: list[PlacedLabel] = field(default_factory=list)

    def is_primitive(self) -> bool:
        return not self.instances

    def is_empty(self) -> bool:
        return not self.geometry and not self.instances and not self.labels


class WindowPlanner:
    """Shared expansion machinery bound to one layout."""

    def __init__(self, layout: Layout, resolution: int = 50) -> None:
        self.layout = layout
        self.resolution = resolution
        self.bboxes = symbol_bboxes(layout, resolution)
        self._fractured: dict[int, list[tuple[str, Box]]] = {}
        self._fingerprints = _symbol_fingerprints(layout, resolution)

    def key(self, content: Content):
        """Content key with structural (cross-layout-stable) symbol ids.

        Symbol numbers are local to one Layout; keying instances by a
        structural fingerprint of their full expansion lets a persistent
        memo (the incremental extractor) be shared safely across layouts
        -- and recognizes structurally identical symbols within one.
        """
        return content_key(content, self._fingerprints)

    # -- expansion -------------------------------------------------------

    def _local_boxes(self, number: int) -> list[tuple[str, Box]]:
        cached = self._fractured.get(number)
        if cached is None:
            cached = self.layout.symbol(number).fractured_boxes(self.resolution)
            self._fractured[number] = cached
        return cached

    def expand_one(
        self, number: int, transform: Transform
    ) -> tuple[
        list[tuple[str, Box]],
        list[tuple[int, Transform]],
        list[PlacedLabel],
    ]:
        """Replace one instance by its constituent parts."""
        symbol = self.layout.symbol(number)
        geometry = [
            (layer, transform.apply_box(box))
            for layer, box in self._local_boxes(number)
        ]
        instances = [
            (call.symbol, call.transform.then(transform))
            for call in symbol.calls
        ]
        labels = []
        for lb in symbol.labels:
            x, y = transform.apply_point(lb.x, lb.y)
            labels.append(PlacedLabel(lb.name, x, y, lb.layer))
        return geometry, instances, labels

    def placed_bbox(self, number: int, transform: Transform) -> Box | None:
        bbox = self.bboxes.get(number)
        return transform.apply_box(bbox) if bbox is not None else None

    def top_content(self) -> Content:
        """The whole chip as the initial window."""
        geometry, instances, labels = self.expand_one(
            TOP_SYMBOL, Transform.identity()
        )
        corners = [box for _, box in geometry]
        for number, transform in instances:
            placed = self.placed_bbox(number, transform)
            if placed is not None:
                corners.append(placed)
        if corners:
            region = Box(
                min(b.xmin for b in corners),
                min(b.ymin for b in corners),
                max(b.xmax for b in corners),
                max(b.ymax for b in corners),
            )
        else:
            region = Box(0, 0, 1, 1)
        return Content(region, geometry, instances, labels)

    # -- subdivision -------------------------------------------------------

    def subdivide(self, content: Content) -> list[Content]:
        """Split a non-primitive window into disjoint sub-windows.

        Step 2's "expand one level" applies when the window *is* a single
        symbol instance (the recursion's common case): the instance is
        replaced by its constituent parts, repeatedly if the symbol wraps
        a single call.  A window already holding several instances slices
        directly along their bounding boxes -- expanding those too would
        flatten whole rows into per-cell windows and hand the composer
        quadratic work, exactly what the window tree exists to avoid.
        """
        geometry = list(content.geometry)
        labels = list(content.labels)
        instances = list(content.instances)
        while len(instances) == 1:
            number, transform = instances[0]
            sub_geo, sub_inst, sub_labels = self.expand_one(number, transform)
            geometry.extend(sub_geo)
            labels.extend(sub_labels)
            instances = sub_inst

        # Step 3: disjoint transformation.
        instances, extra = self._make_disjoint(instances)
        geometry.extend(extra[0])
        labels.extend(extra[1])

        placed = []
        for number, transform in instances:
            bbox = self.placed_bbox(number, transform)
            if bbox is not None:
                placed.append((bbox, number, transform))

        # Step 4: slice.
        return self._slice(content.region, placed, geometry, labels)

    def _make_disjoint(
        self, instances: list[tuple[int, Transform]]
    ) -> tuple[
        list[tuple[int, Transform]],
        tuple[list[tuple[str, Box]], list[PlacedLabel]],
    ]:
        """Expand instances until all placed bounding boxes are disjoint."""
        geometry: list[tuple[str, Box]] = []
        labels: list[PlacedLabel] = []
        work = list(instances)
        while True:
            boxed = []
            for idx, (number, transform) in enumerate(work):
                bbox = self.placed_bbox(number, transform)
                if bbox is not None:
                    boxed.append((bbox, idx))
            offenders = _overlapping_indices(boxed)
            if not offenders:
                return work, (geometry, labels)
            next_work: list[tuple[int, Transform]] = []
            for idx, (number, transform) in enumerate(work):
                if idx in offenders:
                    sub_geo, sub_inst, sub_labels = self.expand_one(
                        number, transform
                    )
                    geometry.extend(sub_geo)
                    labels.extend(sub_labels)
                    next_work.extend(sub_inst)
                else:
                    next_work.append((number, transform))
            work = next_work

    def _slice(
        self,
        region: Box,
        placed: list[tuple[Box, int, Transform]],
        geometry: list[tuple[str, Box]],
        labels: list[PlacedLabel],
    ) -> list[Content]:
        windows: list[Content] = [
            Content(bbox, instances=[(number, transform)])
            for bbox, number, transform in placed
        ]
        # Filler cells along the instance-box cut lines.  Cells covered
        # by an instance box are marked directly from the boxes (cuts
        # come from box edges, so every box covers whole cells).
        from bisect import bisect_left

        xs = sorted(
            {region.xmin, region.xmax}
            | {b.xmin for b, _, _ in placed}
            | {b.xmax for b, _, _ in placed}
        )
        ys = sorted(
            {region.ymin, region.ymax}
            | {b.ymin for b, _, _ in placed}
            | {b.ymax for b, _, _ in placed}
        )
        covered: set[tuple[int, int]] = set()
        for box, _, _ in placed:
            i0 = bisect_left(xs, box.xmin)
            i1 = bisect_left(xs, box.xmax)
            j0 = bisect_left(ys, box.ymin)
            j1 = bisect_left(ys, box.ymax)
            for i in range(i0, i1):
                for j in range(j0, j1):
                    covered.add((i, j))
        for i, (x1, x2) in enumerate(zip(xs, xs[1:])):
            for j, (y1, y2) in enumerate(zip(ys, ys[1:])):
                if (i, j) not in covered:
                    windows.append(Content(Box(x1, y1, x2, y2)))

        # Clip geometry into windows.
        for layer, box in geometry:
            for window in windows:
                clipped = box.clipped(window.region)
                if clipped is not None:
                    window.geometry.append((layer, clipped))

        # Assign each label to the first window containing it.
        for label in labels:
            for window in windows:
                if window.region.contains_point(label.x, label.y):
                    window.labels.append(label)
                    break

        return [w for w in windows if not w.is_empty()]


def _overlapping_indices(boxed: list[tuple[Box, int]]) -> set[int]:
    """Indices of instances whose bounding boxes overlap another's."""
    offenders: set[int] = set()
    order = sorted(boxed, key=lambda item: item[0].xmin)
    for i, (bi, idx_i) in enumerate(order):
        for bj, idx_j in order[i + 1 :]:
            if bj.xmin >= bi.xmax:
                break
            if bi.overlaps(bj):
                offenders.add(idx_i)
                offenders.add(idx_j)
    return offenders


# ----------------------------------------------------------------------
# canonicalization (redundant-window recognition)
# ----------------------------------------------------------------------


def content_key(
    content: Content, fingerprints: "dict[int, str] | None" = None
):
    """A placement-independent key identifying the window's content.

    Two windows with equal keys contain identical artwork (same size,
    same geometry, instances and labels relative to their lower-left
    corner) and therefore share one extracted fragment.  When
    ``fingerprints`` is given, instances are keyed by their structural
    fingerprint instead of the layout-local symbol number, which makes
    keys stable across distinct :class:`Layout` objects.
    """
    ox, oy = content.region.xmin, content.region.ymin
    geometry = tuple(
        sorted(
            (layer, b.xmin - ox, b.ymin - oy, b.xmax - ox, b.ymax - oy)
            for layer, b in content.geometry
        )
    )
    instances = tuple(
        sorted(
            (
                fingerprints[number] if fingerprints else number,
                t.orientation,
                t.dx - ox,
                t.dy - oy,
            )
            for number, t in content.instances
        )
    )
    labels = tuple(
        sorted(
            (lb.name, lb.x - ox, lb.y - oy, lb.layer or "")
            for lb in content.labels
        )
    )
    return (
        content.region.width,
        content.region.height,
        geometry,
        instances,
        labels,
    )


def _symbol_fingerprints(layout: Layout, resolution: int) -> dict[int, str]:
    """Structural fingerprint per symbol: a digest of its expansion.

    Computed bottom-up over the (acyclic) call graph; two symbols -- in
    the same or different layouts -- get equal fingerprints exactly when
    their fully expanded artwork and labels are identical.
    """
    result: dict[int, str] = {}

    def fingerprint(number: int) -> str:
        cached = result.get(number)
        if cached is not None:
            return cached
        symbol = layout.symbol(number)
        hasher = hashlib.sha256()
        for layer, box in sorted(
            symbol.fractured_boxes(resolution),
            key=lambda item: (item[0], item[1].xmin, item[1].ymin,
                              item[1].xmax, item[1].ymax),
        ):
            hasher.update(
                f"B{layer}:{box.xmin},{box.ymin},{box.xmax},{box.ymax};".encode()
            )
        for label in sorted(
            symbol.labels, key=lambda lb: (lb.name, lb.x, lb.y, lb.layer or "")
        ):
            hasher.update(
                f"L{label.name}:{label.x},{label.y},{label.layer or ''};".encode()
            )
        for call in sorted(
            symbol.calls,
            key=lambda c: (c.transform.dx, c.transform.dy, c.symbol),
        ):
            t = call.transform
            hasher.update(
                f"C{fingerprint(call.symbol)}:{t.orientation},"
                f"{t.dx},{t.dy};".encode()
            )
        digest = hasher.hexdigest()
        result[number] = digest
        return digest

    fingerprint(TOP_SYMBOL)
    for number in layout.symbols:
        fingerprint(number)
    return result
