"""HEXT: the hierarchical circuit extractor.

Driver for the three-step process of section 2, restructured as an
explicit *plan-then-execute* pipeline:

1. **Plan** (:func:`plan_windows`): walk the window tree front-end only —
   find all distinct non-overlapping windows, with the memo table
   recognizing redundant ones — and record a :class:`WindowPlan`: the set
   of unique *primitive* windows plus, for every unique composite window,
   the ordered list of child window keys and placements.
2. **Execute** (:func:`execute_plan`): extract each unique primitive
   window with the modified flat extractor.  The extractions are mutually
   independent, which is what lets :mod:`repro.parallel` fan them out
   over a process pool and back them with a persistent fragment cache;
   the default path runs them serially in-process.
3. **Compose** (:func:`compose_plan`): combine windows bottom-to-top,
   left-to-right with Compose, walking the plan's key DAG serially (the
   memo table stays authoritative in this process).

The result is a :class:`Fragment` tree mirroring the hierarchical
wirelist; :func:`resolve` expands it (cost linear in devices, as the
paper notes for flattening) into the same :class:`Circuit` model flat ACE
produces, so the two extractors can be checked for netlist equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..cif import Layout, parse
from ..cif.layout import Label
from ..core.assemble import assemble_circuit
from ..core.extractor import extract_report
from ..core.netlist import CHANNEL as CORE_CHANNEL
from ..core.netlist import Circuit
from ..core.unionfind import UnionFind
from ..geometry import Box
from ..tech import NMOS, Technology
from .compose import compose
from .fragment import CHANNEL, ChildRef, DeviceRec, Fragment, IfaceRec, Placed
from .windows import Content, WindowPlanner

if TYPE_CHECKING:
    from ..parallel.pool import PersistentPool


@dataclass
class HextStats:
    """Counters and timers for Tables 5-1 and 5-2.

    The cache/jobs fields stay at their defaults for plain serial runs;
    :mod:`repro.parallel` fills them in when a worker pool or the
    persistent fragment cache is in play.
    """

    flat_calls: int = 0  #: calls to the (modified) flat extractor
    compose_calls: int = 0
    memo_hits: int = 0
    windows_seen: int = 0  #: windows considered (including memo hits)
    unique_windows: int = 0
    frontend_seconds: float = 0.0  #: subdivision + canonicalization
    flat_seconds: float = 0.0
    compose_seconds: float = 0.0
    resolve_seconds: float = 0.0
    jobs: int = 1  #: effective worker processes used for flat extraction
    worker_seconds: float = 0.0  #: cumulative in-worker extraction time
    cache_hits: int = 0  #: fragments served from the persistent cache
    cache_misses: int = 0
    cache_invalid: int = 0  #: corrupt/stale cache entries rejected

    @property
    def backend_seconds(self) -> float:
        return self.flat_seconds + self.compose_seconds

    @property
    def total_seconds(self) -> float:
        return self.frontend_seconds + self.backend_seconds + self.resolve_seconds

    @property
    def compose_share(self) -> float:
        """Fraction of back-end time spent composing (Table 5-2)."""
        backend = self.backend_seconds
        return self.compose_seconds / backend if backend else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fragment-cache hit fraction over this run's unique primitives."""
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0


@dataclass
class HextResult:
    """Fragment tree plus statistics; circuit is resolved on demand."""

    fragment: Fragment
    origin: tuple[int, int]
    stats: HextStats
    tech: Technology
    _circuit: Circuit | None = field(default=None, repr=False)

    @property
    def circuit(self) -> Circuit:
        if self._circuit is None:
            start = time.perf_counter()
            self._circuit = resolve(self.fragment, self.origin, self.tech)
            self.stats.resolve_seconds += time.perf_counter() - start
        return self._circuit


# ----------------------------------------------------------------------
# step 1: plan
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CompositePlan:
    """One unique composite window: its size and placed child keys.

    ``children`` holds ``(key, dx, dy)`` triples in composition order
    (bottom to top, then left to right); offsets are relative to the
    window's own lower-left corner.
    """

    width: int
    height: int
    children: tuple[tuple[object, int, int], ...]


@dataclass
class WindowPlan:
    """Everything the back-end needs, with the front-end fully done.

    Attributes:
        top_key: key of the whole-chip window.
        primitives: unique geometry-only windows, key -> :class:`Content`
            (insertion order is discovery order, which makes execution
            deterministic).
        composites: unique subdivided windows, key -> :class:`CompositePlan`.
        hits: redundant-visit count per already-seen key (memo hits).
    """

    top_key: object
    primitives: dict = field(default_factory=dict)
    composites: dict = field(default_factory=dict)
    hits: dict = field(default_factory=dict)

    def used_keys(self) -> set:
        """Every window key this plan's extraction touches."""
        return set(self.primitives) | set(self.composites) | set(self.hits)


def plan_windows(
    planner: WindowPlanner,
    top: Content,
    stats: HextStats,
    *,
    seen: "set | None" = None,
) -> WindowPlan:
    """Walk the window tree, recording unique windows and the compose DAG.

    ``seen`` pre-populates the redundancy check: keys already present are
    treated as memo hits and not descended into.  The incremental
    extractor passes its persistent memo's keys here, so an unchanged
    subtree costs one key computation.
    """
    start = time.perf_counter()
    known: set = set(seen) if seen else set()
    plan = WindowPlan(top_key=None)

    def visit(content: Content):
        stats.windows_seen += 1
        key = planner.key(content)
        if key in known:
            stats.memo_hits += 1
            plan.hits[key] = plan.hits.get(key, 0) + 1
            return key
        known.add(key)
        stats.unique_windows += 1
        if content.is_primitive():
            plan.primitives[key] = content
            return key
        subwindows = planner.subdivide(content)
        # Composition order: lower-left corner, bottom to top then left
        # to right (section 3).
        subwindows.sort(key=lambda w: (w.region.ymin, w.region.xmin))
        ox, oy = content.region.xmin, content.region.ymin
        children = tuple(
            (visit(sub), sub.region.xmin - ox, sub.region.ymin - oy)
            for sub in subwindows
        )
        plan.composites[key] = CompositePlan(
            content.region.width, content.region.height, children
        )
        return key

    plan.top_key = visit(top)
    stats.frontend_seconds += time.perf_counter() - start
    return plan


# ----------------------------------------------------------------------
# step 2: execute
# ----------------------------------------------------------------------


def extract_primitive(
    content: Content,
    tech: Technology,
    resolution: int = 50,
    engine: str = "auto",
) -> Fragment:
    """Run the modified flat extractor over a geometry-only window.

    The returned fragment is window-relative, so it depends only on the
    content's artwork *relative to its lower-left corner* — the same
    normalization the memo key and the persistent cache key use.
    """
    ox, oy = content.region.xmin, content.region.ymin
    window = Box(0, 0, content.region.width, content.region.height)
    layout = Layout()
    for layer, box in content.geometry:
        layout.top.add_box(layer, box.translated(-ox, -oy))
    for label in content.labels:
        layout.top.add_label(
            Label(label.name, label.x - ox, label.y - oy, label.layer)
        )
    circuit = extract_report(
        layout, tech, resolution=resolution, window=window, engine=engine
    ).circuit
    return _circuit_to_fragment(circuit, window)


def execute_plan(
    plan: WindowPlan,
    tech: Technology,
    stats: HextStats,
    *,
    resolution: int = 50,
    jobs: "int | None" = None,
    cache: "str | None" = None,
    memo: "dict | None" = None,
    pool: "PersistentPool | None" = None,
    engine: str = "auto",
    progress: "Callable[[int, int], None] | None" = None,
) -> dict:
    """Extract every unique primitive window in the plan.

    Returns (and fills) ``memo``: key -> :class:`Fragment`.  With ``jobs``,
    ``cache``, or ``pool`` set, the work is delegated to
    :mod:`repro.parallel`, which fans extractions out over a process pool
    (a long-lived :class:`~repro.parallel.pool.PersistentPool` when one
    is passed) and/or serves them from the persistent on-disk fragment
    cache; otherwise the extractions run serially in-process.  Keys
    already present in ``memo`` (the incremental extractor's persistent
    table) are never re-extracted.

    ``progress`` is called as ``progress(done, total)`` over the plan's
    unique primitive windows — memo and cache hits count as immediately
    done — so long executions can surface liveness the way streaming
    band sweeps do.
    """
    memo = {} if memo is None else memo
    if jobs is not None and jobs != 1 or cache is not None or pool is not None:
        from ..parallel import execute_plan_parallel

        return execute_plan_parallel(
            plan, tech, stats,
            resolution=resolution, jobs=jobs, cache=cache, memo=memo,
            pool=pool, engine=engine, progress=progress,
        )
    total = len(plan.primitives)
    done = sum(1 for key in plan.primitives if key in memo)
    if progress is not None and done:
        progress(done, total)
    for key, content in plan.primitives.items():
        if key in memo:
            continue
        start = time.perf_counter()
        memo[key] = extract_primitive(content, tech, resolution, engine)
        stats.flat_seconds += time.perf_counter() - start
        stats.flat_calls += 1
        done += 1
        if progress is not None:
            progress(done, total)
    return memo


# ----------------------------------------------------------------------
# step 3: compose
# ----------------------------------------------------------------------


def compose_plan(
    plan: WindowPlan, memo: dict, tech: Technology, stats: HextStats
) -> Fragment:
    """Combine extracted fragments along the plan's key DAG, serially.

    Composite fragments are memoized into ``memo`` as they are built, so
    a key reached through several parents is composed once.
    """

    def build(key) -> Fragment:
        fragment = memo.get(key)
        if fragment is not None:
            return fragment
        node: CompositePlan = plan.composites[key]
        placed = [
            Placed(build(child_key), dx, dy)
            for child_key, dx, dy in node.children
        ]
        if not placed:
            fragment = _empty_fragment(node.width, node.height)
        else:
            acc = placed[0]
            for nxt in placed[1:]:
                start = time.perf_counter()
                merged = compose(acc, nxt, tech)
                stats.compose_seconds += time.perf_counter() - start
                stats.compose_calls += 1
                acc = Placed(merged, 0, 0)
            if acc.dx or acc.dy:
                # Single sub-window: re-anchor it to this window's origin
                # by wrapping (content differs, so no mutation).
                fragment = _wrap_fragment(acc)
            else:
                fragment = acc.fragment
        memo[key] = fragment
        return fragment

    return build(plan.top_key)


def hext_extract(
    source: "str | Layout",
    tech: Technology | None = None,
    *,
    resolution: int = 50,
    jobs: "int | None" = None,
    cache: "str | None" = None,
    pool: "PersistentPool | None" = None,
    engine: str = "auto",
) -> HextResult:
    """Hierarchically extract a CIF string or parsed layout.

    Args:
        source: CIF text, or an already parsed :class:`Layout`.
        tech: process rules; defaults to standard NMOS.
        resolution: fracture resolution for non-manhattan geometry.
        jobs: fan unique-window extraction out over this many worker
            processes (``None`` or ``1``: serial; ``0``: one per CPU).
        cache: directory of the persistent fragment cache; repeated runs
            over unchanged windows skip extraction entirely.
        pool: a long-lived worker pool to reuse instead of a one-shot
            pool (the extraction service's amortization path).
        engine: strip-batch engine for the per-window flat extractions
            (see :mod:`repro.core.stripengine`); results are
            byte-identical across engines, so this is purely a speed
            knob and is deliberately excluded from memo and cache keys.

    The three phases run plan -> execute -> compose; parallel and cached
    runs produce wirelists equivalent to serial ones because the plan
    (and therefore the composition order) is identical — only *where*
    each unique primitive fragment comes from differs.
    """
    tech = tech or NMOS()
    layout = parse(source) if isinstance(source, str) else source
    stats = HextStats()
    planner_start = time.perf_counter()
    planner = WindowPlanner(layout, resolution)
    top = planner.top_content()
    stats.frontend_seconds += time.perf_counter() - planner_start
    plan = plan_windows(planner, top, stats)
    memo = execute_plan(
        plan, tech, stats,
        resolution=resolution, jobs=jobs, cache=cache, pool=pool,
        engine=engine,
    )
    fragment = compose_plan(plan, memo, tech, stats)
    return HextResult(
        fragment=fragment,
        origin=(top.region.xmin, top.region.ymin),
        stats=stats,
        tech=tech,
    )


def _empty_fragment(width: int, height: int) -> Fragment:
    return Fragment(region=(Box(0, 0, width, height),), net_count=0)


def _wrap_fragment(placed: Placed) -> Fragment:
    return Fragment(
        region=tuple(placed.region_rects()),
        net_count=placed.fragment.net_count,
        children=(ChildRef(placed.fragment, placed.dx, placed.dy, 0),),
        interface=tuple(placed.interface_records()),
        partials=tuple(
            rec.shifted(placed.dx, placed.dy, 0)
            for rec in placed.fragment.partials
        ),
    )


def _circuit_to_fragment(circuit: Circuit, window: Box) -> Fragment:
    """Adapt the modified flat extractor's output to a Fragment."""
    fixed_of = {"L": window.xmin, "R": window.xmax, "T": window.ymax, "B": window.ymin}
    complete: list[DeviceRec] = []
    partial: list[DeviceRec] = []
    partial_id: dict[int, int] = {}  # circuit device index -> partial id
    for device in circuit.devices:
        rec = DeviceRec(
            area=device.area,
            terms={net - 1: p for net, p in device.terminals.items()},
            gates={g - 1 for g in device.gates},
            impl=device.depletion,
            loc=(device.location[1], -device.location[0])
            if device.location
            else None,
        )
        if device.touches_boundary:
            partial_id[device.index] = len(partial)
            partial.append(rec)
        else:
            complete.append(rec)

    interface = []
    for rec in circuit.boundary:
        if rec.layer == CORE_CHANNEL:
            mapped = partial_id.get(rec.ident)
            if mapped is None:
                continue  # coalesced away; device completed internally
            interface.append(
                IfaceRec(
                    rec.face.value, CHANNEL, fixed_of[rec.face.value],
                    rec.lo, rec.hi, mapped,
                )
            )
        else:
            interface.append(
                IfaceRec(
                    rec.face.value, rec.layer, fixed_of[rec.face.value],
                    rec.lo, rec.hi, rec.ident - 1,
                )
            )

    net_names = {
        net.index - 1: list(net.names) for net in circuit.nets if net.names
    }
    net_locs = {
        net.index - 1: (net.location[1], -net.location[0])
        for net in circuit.nets
        if net.location
    }
    return Fragment(
        region=(window,),
        net_count=len(circuit.nets),
        net_names=net_names,
        net_locs=net_locs,
        devices=tuple(complete),
        partials=tuple(partial),
        interface=tuple(interface),
    )


def resolve(
    fragment: Fragment, origin: tuple[int, int], tech: Technology
) -> Circuit:
    """Expand a fragment tree into a flat Circuit (linear in devices)."""
    nets = UnionFind()
    for _ in range(fragment.net_count):
        nets.make()
    net_loc: dict[int, tuple[int, int]] = {}
    net_names: dict[int, list[str]] = {}
    devs = UnionFind()
    dev_rec: dict[int, dict] = {}

    def add_device(rec: DeviceRec, base: int, ox: int, oy: int) -> None:
        ident = devs.make()
        dev_rec[ident] = {
            "area": rec.area,
            "gates": {base + g for g in rec.gates},
            "terms": {base + n: p for n, p in rec.terms.items()},
            "loc": (rec.loc[0] + oy, rec.loc[1] - ox) if rec.loc else None,
            "impl": rec.impl,
        }

    stack: list[tuple[Fragment, int, int, int]] = [
        (fragment, 0, origin[0], origin[1])
    ]
    while stack:
        frag, base, ox, oy = stack.pop()
        for a, b in frag.equivalences:
            nets.union(base + a, base + b)
        for ident, names in frag.net_names.items():
            net_names.setdefault(base + ident, []).extend(names)
        for ident, (ymax, neg_xmin) in frag.net_locs.items():
            key = (ymax + oy, neg_xmin - ox)
            current = net_loc.get(base + ident)
            if current is None or key > current:
                net_loc[base + ident] = key
        for rec in frag.devices:
            add_device(rec, base, ox, oy)
        for child in frag.children:
            stack.append(
                (child.fragment, base + child.net_offset, ox + child.dx, oy + child.dy)
            )
    # Channels still on the chip boundary are legitimate devices.
    for rec in fragment.partials:
        add_device(rec, 0, origin[0], origin[1])

    return assemble_circuit(
        tech, nets, devs, net_loc, net_names, dev_rec, warnings=[]
    )
