"""HEXT: the hierarchical circuit extractor.

Driver for the three-step process of section 2:

1. find all distinct non-overlapping windows (front-end, with the memo
   table recognizing redundant windows);
2. extract each unique window with the modified flat extractor, which
   also computes its boundary interface;
3. combine windows bottom-to-top, left-to-right with Compose.

The result is a :class:`Fragment` tree mirroring the hierarchical
wirelist; :func:`resolve` expands it (cost linear in devices, as the
paper notes for flattening) into the same :class:`Circuit` model flat ACE
produces, so the two extractors can be checked for netlist equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cif import Layout, parse
from ..core.assemble import assemble_circuit
from ..core.extractor import extract_report
from ..core.netlist import CHANNEL as CORE_CHANNEL
from ..core.netlist import Circuit
from ..core.unionfind import UnionFind
from ..geometry import Box
from ..tech import NMOS, Technology
from .compose import compose
from .fragment import CHANNEL, DeviceRec, Fragment, IfaceRec, Placed
from .windows import Content, WindowPlanner


@dataclass
class HextStats:
    """Counters and timers for Tables 5-1 and 5-2."""

    flat_calls: int = 0  #: calls to the (modified) flat extractor
    compose_calls: int = 0
    memo_hits: int = 0
    windows_seen: int = 0  #: windows considered (including memo hits)
    unique_windows: int = 0
    frontend_seconds: float = 0.0  #: subdivision + canonicalization
    flat_seconds: float = 0.0
    compose_seconds: float = 0.0
    resolve_seconds: float = 0.0

    @property
    def backend_seconds(self) -> float:
        return self.flat_seconds + self.compose_seconds

    @property
    def total_seconds(self) -> float:
        return self.frontend_seconds + self.backend_seconds + self.resolve_seconds

    @property
    def compose_share(self) -> float:
        """Fraction of back-end time spent composing (Table 5-2)."""
        backend = self.backend_seconds
        return self.compose_seconds / backend if backend else 0.0


@dataclass
class HextResult:
    """Fragment tree plus statistics; circuit is resolved on demand."""

    fragment: Fragment
    origin: tuple[int, int]
    stats: HextStats
    tech: Technology
    _circuit: Circuit | None = field(default=None, repr=False)

    @property
    def circuit(self) -> Circuit:
        if self._circuit is None:
            start = time.perf_counter()
            self._circuit = resolve(self.fragment, self.origin, self.tech)
            self.stats.resolve_seconds += time.perf_counter() - start
        return self._circuit


def hext_extract(
    source: "str | Layout",
    tech: Technology | None = None,
    *,
    resolution: int = 50,
) -> HextResult:
    """Hierarchically extract a CIF string or parsed layout."""
    tech = tech or NMOS()
    layout = parse(source) if isinstance(source, str) else source
    stats = HextStats()
    planner_start = time.perf_counter()
    planner = WindowPlanner(layout, resolution)
    top = planner.top_content()
    stats.frontend_seconds += time.perf_counter() - planner_start
    extractor = _Extractor(planner, tech, stats, resolution)
    fragment = extractor.window(top)
    return HextResult(
        fragment=fragment,
        origin=(top.region.xmin, top.region.ymin),
        stats=stats,
        tech=tech,
    )


class _Extractor:
    def __init__(
        self,
        planner: WindowPlanner,
        tech: Technology,
        stats: HextStats,
        resolution: int,
    ) -> None:
        self.planner = planner
        self.tech = tech
        self.stats = stats
        self.resolution = resolution
        self.memo: dict[object, Fragment] = {}

    def window(self, content: Content) -> Fragment:
        """Fragment for a window, via the memo table."""
        start = time.perf_counter()
        self.stats.windows_seen += 1
        key = self.planner.key(content)
        cached = self.memo.get(key)
        self.stats.frontend_seconds += time.perf_counter() - start
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        fragment = self._build(content)
        self.memo[key] = fragment
        self.stats.unique_windows += 1
        return fragment

    def _build(self, content: Content) -> Fragment:
        if content.is_primitive():
            start = time.perf_counter()
            fragment = self._extract_primitive(content)
            self.stats.flat_seconds += time.perf_counter() - start
            self.stats.flat_calls += 1
            return fragment

        start = time.perf_counter()
        subwindows = self.planner.subdivide(content)
        # Composition order: lower-left corner, bottom to top then left
        # to right (section 3).
        subwindows.sort(key=lambda w: (w.region.ymin, w.region.xmin))
        self.stats.frontend_seconds += time.perf_counter() - start

        ox, oy = content.region.xmin, content.region.ymin
        placed: list[Placed] = []
        for sub in subwindows:
            fragment = self.window(sub)
            placed.append(
                Placed(fragment, sub.region.xmin - ox, sub.region.ymin - oy)
            )
        if not placed:
            return _empty_fragment(content.region)
        acc = placed[0]
        for nxt in placed[1:]:
            start = time.perf_counter()
            merged = compose(acc, nxt, self.tech)
            self.stats.compose_seconds += time.perf_counter() - start
            self.stats.compose_calls += 1
            acc = Placed(merged, 0, 0)
        if acc.dx or acc.dy:
            # Single sub-window: re-anchor it to this window's origin by
            # wrapping (content differs, so the fragment must not mutate).
            return _wrap_fragment(acc)
        return acc.fragment

    def _extract_primitive(self, content: Content) -> Fragment:
        """Run the modified flat extractor over a geometry-only window."""
        ox, oy = content.region.xmin, content.region.ymin
        window = Box(
            0, 0, content.region.width, content.region.height
        )
        layout = Layout()
        for layer, box in content.geometry:
            layout.top.add_box(layer, box.translated(-ox, -oy))
        for label in content.labels:
            from ..cif.layout import Label

            layout.top.add_label(
                Label(label.name, label.x - ox, label.y - oy, label.layer)
            )
        circuit = extract_report(
            layout, self.tech, resolution=self.resolution, window=window
        ).circuit
        return _circuit_to_fragment(circuit, window)


def _empty_fragment(region: Box) -> Fragment:
    return Fragment(
        region=(Box(0, 0, region.width, region.height),), net_count=0
    )


def _wrap_fragment(placed: Placed) -> Fragment:
    from .fragment import ChildRef

    return Fragment(
        region=tuple(placed.region_rects()),
        net_count=placed.fragment.net_count,
        children=(ChildRef(placed.fragment, placed.dx, placed.dy, 0),),
        interface=tuple(placed.interface_records()),
        partials=tuple(
            rec.shifted(placed.dx, placed.dy, 0)
            for rec in placed.fragment.partials
        ),
    )


def _circuit_to_fragment(circuit: Circuit, window: Box) -> Fragment:
    """Adapt the modified flat extractor's output to a Fragment."""
    fixed_of = {"L": window.xmin, "R": window.xmax, "T": window.ymax, "B": window.ymin}
    complete: list[DeviceRec] = []
    partial: list[DeviceRec] = []
    partial_id: dict[int, int] = {}  # circuit device index -> partial id
    for device in circuit.devices:
        rec = DeviceRec(
            area=device.area,
            terms={net - 1: p for net, p in device.terminals.items()},
            gates={g - 1 for g in device.gates},
            impl=device.depletion,
            loc=(device.location[1], -device.location[0])
            if device.location
            else None,
        )
        if device.touches_boundary:
            partial_id[device.index] = len(partial)
            partial.append(rec)
        else:
            complete.append(rec)

    interface = []
    for rec in circuit.boundary:
        if rec.layer == CORE_CHANNEL:
            mapped = partial_id.get(rec.ident)
            if mapped is None:
                continue  # coalesced away; device completed internally
            interface.append(
                IfaceRec(
                    rec.face.value, CHANNEL, fixed_of[rec.face.value],
                    rec.lo, rec.hi, mapped,
                )
            )
        else:
            interface.append(
                IfaceRec(
                    rec.face.value, rec.layer, fixed_of[rec.face.value],
                    rec.lo, rec.hi, rec.ident - 1,
                )
            )

    net_names = {
        net.index - 1: list(net.names) for net in circuit.nets if net.names
    }
    net_locs = {
        net.index - 1: (net.location[1], -net.location[0])
        for net in circuit.nets
        if net.location
    }
    return Fragment(
        region=(window,),
        net_count=len(circuit.nets),
        net_names=net_names,
        net_locs=net_locs,
        devices=tuple(complete),
        partials=tuple(partial),
        interface=tuple(interface),
    )


def resolve(
    fragment: Fragment, origin: tuple[int, int], tech: Technology
) -> Circuit:
    """Expand a fragment tree into a flat Circuit (linear in devices)."""
    nets = UnionFind()
    for _ in range(fragment.net_count):
        nets.make()
    net_loc: dict[int, tuple[int, int]] = {}
    net_names: dict[int, list[str]] = {}
    devs = UnionFind()
    dev_rec: dict[int, dict] = {}

    def add_device(rec: DeviceRec, base: int, ox: int, oy: int) -> None:
        ident = devs.make()
        dev_rec[ident] = {
            "area": rec.area,
            "gates": {base + g for g in rec.gates},
            "terms": {base + n: p for n, p in rec.terms.items()},
            "loc": (rec.loc[0] + oy, rec.loc[1] - ox) if rec.loc else None,
            "impl": rec.impl,
        }

    stack: list[tuple[Fragment, int, int, int]] = [
        (fragment, 0, origin[0], origin[1])
    ]
    while stack:
        frag, base, ox, oy = stack.pop()
        for a, b in frag.equivalences:
            nets.union(base + a, base + b)
        for ident, names in frag.net_names.items():
            net_names.setdefault(base + ident, []).extend(names)
        for ident, (ymax, neg_xmin) in frag.net_locs.items():
            key = (ymax + oy, neg_xmin - ox)
            current = net_loc.get(base + ident)
            if current is None or key > current:
                net_loc[base + ident] = key
        for rec in frag.devices:
            add_device(rec, base, ox, oy)
        for child in frag.children:
            stack.append(
                (child.fragment, base + child.net_offset, ox + child.dx, oy + child.dy)
            )
    # Channels still on the chip boundary are legitimate devices.
    for rec in fragment.partials:
        add_device(rec, 0, origin[0], origin[1])

    return assemble_circuit(
        tech, nets, devs, net_loc, net_names, dev_rec, warnings=[]
    )
