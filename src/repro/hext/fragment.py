"""Circuit fragments: the unit of HEXT's window memoization.

A :class:`Fragment` is the extracted result of one *unique* window,
expressed in window-relative coordinates so it can be instantiated at any
placement.  Following the paper, a composed fragment "does not copy the
contents of its component windows, but simply stores pointers to them"
(children plus net-equivalence pairs); only the interface is copied.

Net id convention: a fragment owns local net ids ``0..net_count``.  For a
composed fragment these are exactly the first child's ids followed by the
second child's ids shifted by the first's ``net_count`` -- the paper's
``NetOffset``.  No renumbering ever happens during composition, which is
what keeps compose cost proportional to the boundary, not the contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Box

#: Interface record layers: conducting mask layers plus the channel
#: pseudo-layer (partial transistors).
CHANNEL = "__channel__"

# Faces, matching repro.core.netlist.Face values.
LEFT, RIGHT, TOP, BOTTOM = "L", "R", "T", "B"

_OPPOSITE = {LEFT: RIGHT, RIGHT: LEFT, TOP: BOTTOM, BOTTOM: TOP}


def opposite_face(face: str) -> str:
    return _OPPOSITE[face]


@dataclass(frozen=True, slots=True)
class IfaceRec:
    """One conducting (or channel) span on a window boundary.

    ``fixed`` is the boundary line coordinate: x for LEFT/RIGHT faces,
    y for TOP/BOTTOM.  ``lo``/``hi`` span the other axis.  ``ident`` is a
    local net id, or a local partial-device id when ``layer`` is CHANNEL.
    """

    face: str
    layer: str
    fixed: int
    lo: int
    hi: int
    ident: int

    def shifted(self, dx: int, dy: int) -> "IfaceRec":
        if dx == 0 and dy == 0:
            return self
        if self.face in (LEFT, RIGHT):
            return IfaceRec(
                self.face, self.layer, self.fixed + dx, self.lo + dy,
                self.hi + dy, self.ident,
            )
        return IfaceRec(
            self.face, self.layer, self.fixed + dy, self.lo + dx,
            self.hi + dx, self.ident,
        )


@dataclass
class DeviceRec:
    """A transistor record, sizing-ready (mirrors the scanline's state).

    ``terms`` maps local net id to contact perimeter; ``gates`` holds
    local net ids of poly over the channel.
    """

    area: int
    terms: dict[int, int]
    gates: set[int]
    impl: bool
    loc: tuple[int, int] | None  # (ymax, -xmin) ordering key, like core

    def shifted(self, dx: int, dy: int, net_offset: int) -> "DeviceRec":
        if dx == 0 and dy == 0 and net_offset == 0:
            return DeviceRec(
                area=self.area,
                terms=dict(self.terms),
                gates=set(self.gates),
                impl=self.impl,
                loc=self.loc,
            )
        return DeviceRec(
            area=self.area,
            terms={net + net_offset: p for net, p in self.terms.items()},
            gates={net + net_offset for net in self.gates},
            impl=self.impl,
            loc=(self.loc[0] + dy, self.loc[1] - dx) if self.loc else None,
        )

    def merged_with(self, other: "DeviceRec") -> "DeviceRec":
        terms = dict(self.terms)
        for net, perimeter in other.terms.items():
            terms[net] = terms.get(net, 0) + perimeter
        loc = self.loc
        if other.loc is not None and (loc is None or other.loc > loc):
            loc = other.loc
        return DeviceRec(
            area=self.area + other.area,
            terms=terms,
            gates=self.gates | other.gates,
            impl=self.impl or other.impl,
            loc=loc,
        )


@dataclass(frozen=True, slots=True)
class ChildRef:
    """A placed, net-offset reference to a child fragment."""

    fragment: "Fragment"
    dx: int
    dy: int
    net_offset: int


@dataclass
class Fragment:
    """Extraction result of one unique window, window-relative.

    Attributes:
        region: rectangles tiling the window area (origin-anchored).
        net_count: size of the local net id space.
        children: composed sub-fragments (empty for primitive windows).
        equivalences: local net id pairs unified at this level.
        net_names: user names introduced at this level (primitive only).
        net_locs: net id -> (ymax, -xmin) keys (primitive only).
        devices: transistors completed at this level.
        partials: device records whose channels still touch the boundary,
            indexed by local partial id (dense).
        interface: surviving boundary records.
    """

    region: tuple[Box, ...]
    net_count: int
    children: tuple[ChildRef, ...] = ()
    equivalences: tuple[tuple[int, int], ...] = ()
    net_names: dict[int, list[str]] = field(default_factory=dict)
    net_locs: dict[int, tuple[int, int]] = field(default_factory=dict)
    devices: tuple[DeviceRec, ...] = ()
    partials: tuple[DeviceRec, ...] = ()
    interface: tuple[IfaceRec, ...] = ()

    def bbox(self) -> Box:
        return Box(
            min(r.xmin for r in self.region),
            min(r.ymin for r in self.region),
            max(r.xmax for r in self.region),
            max(r.ymax for r in self.region),
        )

    def total_devices(self) -> int:
        """Devices in this fragment counting children once (not per use)."""
        return (
            len(self.devices)
            + len(self.partials)
            + sum(c.fragment.total_devices() for c in self.children)
        )


@dataclass(frozen=True, slots=True)
class Placed:
    """A fragment placed at an offset in some parent coordinate space."""

    fragment: Fragment
    dx: int
    dy: int

    def region_rects(self) -> list[Box]:
        if self.dx == 0 and self.dy == 0:
            return list(self.fragment.region)
        return [r.translated(self.dx, self.dy) for r in self.fragment.region]

    def interface_records(self) -> list[IfaceRec]:
        if self.dx == 0 and self.dy == 0:
            return list(self.fragment.interface)
        return [rec.shifted(self.dx, self.dy) for rec in self.fragment.interface]
