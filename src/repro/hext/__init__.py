"""HEXT: the hierarchical circuit extractor built on modified ACE."""

from .compose import compose
from .extractor import HextResult, HextStats, hext_extract, resolve
from .incremental import IncrementalExtractor, IncrementalStats
from .fragment import (
    CHANNEL,
    ChildRef,
    DeviceRec,
    Fragment,
    IfaceRec,
    Placed,
)
from .windows import Content, WindowPlanner, content_key

__all__ = [
    "CHANNEL",
    "ChildRef",
    "Content",
    "DeviceRec",
    "Fragment",
    "HextResult",
    "HextStats",
    "IncrementalExtractor",
    "IncrementalStats",
    "IfaceRec",
    "Placed",
    "WindowPlanner",
    "compose",
    "content_key",
    "hext_extract",
    "resolve",
]
