"""HEXT: the hierarchical circuit extractor built on modified ACE."""

from .compose import compose
from .extractor import (
    CompositePlan,
    HextResult,
    HextStats,
    WindowPlan,
    compose_plan,
    execute_plan,
    extract_primitive,
    hext_extract,
    plan_windows,
    resolve,
)
from .incremental import IncrementalExtractor, IncrementalStats
from .fragment import (
    CHANNEL,
    ChildRef,
    DeviceRec,
    Fragment,
    IfaceRec,
    Placed,
)
from .windows import Content, WindowPlanner, content_key

__all__ = [
    "CHANNEL",
    "ChildRef",
    "CompositePlan",
    "Content",
    "DeviceRec",
    "Fragment",
    "HextResult",
    "HextStats",
    "IncrementalExtractor",
    "IncrementalStats",
    "IfaceRec",
    "Placed",
    "WindowPlan",
    "WindowPlanner",
    "compose",
    "compose_plan",
    "content_key",
    "execute_plan",
    "extract_primitive",
    "hext_extract",
    "plan_windows",
    "resolve",
]
