"""Persistent content-addressed JSON stores, and the fragment cache.

One file per key, under a two-level fan-out directory::

    <root>/<key[:2]>/<key>.json

Each file is a small envelope around an arbitrary JSON payload::

    {"format": 1, "key": "<sha256>", "checksum": "<sha256 of payload>",
     "payload": {...}}

Trust nothing read back: an entry is served only when the envelope's
format version matches, its recorded key matches the file's name, the
checksum matches the canonical JSON of the payload, *and* the payload
survives structural validation.  Any failure counts as ``invalid``, the
file is deleted, and the entry is recomputed — a corrupted or stale
store can cost time, never correctness.

Writes go through a temp file and ``os.replace`` so a crashed run leaves
either the old entry or the new one, never a torn file.

The store is safe to share between processes — the whole design is that
several extraction daemons (a fleet of shards, see ``repro.fleet``) can
read and write one directory concurrently.  Reads are lock-free: a
reader either sees a complete old entry or a complete new one (atomic
replace), and a file deleted out from under a reader is just a miss.
Budgets make the shared store self-limiting: ``max_entries`` /
``max_bytes`` evict the least-recently-used entries (recency is the
file mtime, refreshed on every hit), and ``ttl_seconds`` expires
entries by age regardless of use.  Eviction races between processes are
benign — an unlink that loses the race is a no-op.

:class:`JsonEnvelopeStore` is the generic layer (the extraction service
builds its result cache on it); :class:`FragmentCache` specializes it to
primitive HEXT fragments, which is why fragment envelopes carry the
payload under the historical ``"fragment"`` field.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..hext.fragment import Fragment
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    canonical_json,
    fragment_from_payload,
    fragment_payload,
)


@dataclass
class CacheStats:
    """Lookup accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    invalid: int = 0  #: entries rejected (corrupt, stale, or malformed)
    stores: int = 0
    expired: int = 0  #: entries dropped because their TTL passed
    evicted: int = 0  #: entries dropped to stay inside the budgets

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0


class JsonEnvelopeStore:
    """Content-addressed store of JSON payloads across runs.

    Subclasses pin the envelope ``format_version`` (bump it to shed every
    older entry on the next lookup), may rename the payload field for
    compatibility (``payload_field``), and hook structural validation via
    :meth:`validate_payload`.
    """

    format_version: int = 1
    payload_field: str = "payload"

    def __init__(
        self,
        root: "str | os.PathLike",
        *,
        max_entries: "int | None" = None,
        max_bytes: "int | None" = None,
        ttl_seconds: "float | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def validate_payload(self, payload: dict) -> None:
        """Reject malformed payloads by raising SerializationError."""

    def get_payload(self, key: str) -> "dict | None":
        """The validated payload for ``key``, or None (miss or rejected)."""
        path = self.path_for(key)
        try:
            if self.ttl_seconds is not None:
                age = time.time() - path.stat().st_mtime
                if age > self.ttl_seconds:
                    self.stats.expired += 1
                    self.stats.misses += 1
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                    return None
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return self._reject(path)
        try:
            payload = self._validate(key, envelope)
        except SerializationError:
            return self._reject(path)
        self.stats.hits += 1
        # Refresh recency so LRU eviction (here or in a sibling process
        # sharing the directory) spares the hot set.  Best effort: a
        # concurrent eviction racing the touch is just a future miss.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def put_payload(self, key: str, payload: dict) -> None:
        """Store a JSON payload under ``key`` (atomic replace)."""
        body = canonical_json(payload)
        envelope = {
            "format": self.format_version,
            "key": key,
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            self.payload_field: payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)
        self.stats.stores += 1
        if self.max_entries is not None or self.max_bytes is not None:
            self.enforce_budget(keep=key)

    def _validate(self, key: str, envelope: dict) -> dict:
        if not isinstance(envelope, dict):
            raise SerializationError("envelope is not an object")
        if envelope.get("format") != self.format_version:
            raise SerializationError(
                f"stale cache format {envelope.get('format')!r}"
            )
        if envelope.get("key") != key:
            raise SerializationError("envelope key does not match file name")
        payload = envelope.get(self.payload_field)
        if not isinstance(payload, dict):
            raise SerializationError("missing payload")
        checksum = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        if envelope.get("checksum") != checksum:
            raise SerializationError("payload checksum mismatch")
        self.validate_payload(payload)
        return payload

    def _reject(self, path: Path) -> None:
        self.stats.invalid += 1
        try:
            os.remove(path)
        except OSError:
            pass
        return None

    # -- maintenance -----------------------------------------------------

    def entries(self) -> "Iterator[tuple[str, Path, os.stat_result]]":
        """Every live ``(key, path, stat)``, racing deletions tolerated."""
        for path in self.root.glob("??/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted by a sibling process mid-scan
            yield path.stem, path, stat

    def recent_keys(self, limit: "int | None" = None) -> "list[str]":
        """Keys ordered most-recently-used first (mtime descending).

        The warm-start path: a cold daemon primes its memory LRU from
        the shared store's hottest entries before taking traffic.
        """
        ranked = sorted(
            self.entries(), key=lambda entry: entry[2].st_mtime, reverse=True
        )
        if limit is not None:
            ranked = ranked[:limit]
        return [key for key, _, _ in ranked]

    def enforce_budget(self, *, keep: "str | None" = None) -> int:
        """Expire by TTL and evict LRU-first down to the budgets.

        Returns the number of entries removed.  ``keep`` shields one key
        (the entry just written) from eviction even if budgets are so
        tight it would otherwise be the victim.  Runs after every put
        when a budget is set; safe to call concurrently from several
        processes — losing an unlink race simply means a sibling evicted
        the entry first.
        """
        ranked = sorted(self.entries(), key=lambda e: e[2].st_mtime)
        removed = 0
        survivors: "list[tuple[str, Path, os.stat_result]]" = []
        now = time.time()
        for key, path, stat in ranked:
            if (
                self.ttl_seconds is not None
                and now - stat.st_mtime > self.ttl_seconds
                and key != keep
            ):
                if self._evict(path):
                    self.stats.expired += 1
                    removed += 1
                continue
            survivors.append((key, path, stat))
        alive = len(survivors)
        total_bytes = sum(stat.st_size for _, _, stat in survivors)

        def over_budget() -> bool:
            if self.max_entries is not None and alive > self.max_entries:
                return True
            return self.max_bytes is not None and total_bytes > self.max_bytes

        for key, path, stat in survivors:  # oldest mtime first
            if not over_budget():
                break
            if key == keep:
                continue  # never evict the entry just written
            if self._evict(path):
                self.stats.evicted += 1
                removed += 1
            alive -= 1
            total_bytes -= stat.st_size
        return removed

    @staticmethod
    def _evict(path: Path) -> bool:
        try:
            os.remove(path)
            return True
        except OSError:
            return False

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed


class FragmentCache(JsonEnvelopeStore):
    """Content-addressed store of primitive fragments across runs."""

    format_version = FORMAT_VERSION
    payload_field = "fragment"

    def validate_payload(self, payload: dict) -> None:
        fragment_from_payload(payload)

    def get(self, key: str) -> "Fragment | None":
        """The cached fragment for ``key``, or None (miss or rejected)."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return fragment_from_payload(payload)

    def put(self, key: str, fragment: Fragment, payload: "dict | None" = None) -> None:
        """Store a primitive fragment under ``key`` (atomic replace)."""
        payload = fragment_payload(fragment) if payload is None else payload
        self.put_payload(key, payload)
