"""Persistent content-addressed JSON stores, and the fragment cache.

One file per key, under a two-level fan-out directory::

    <root>/<key[:2]>/<key>.json

Each file is a small envelope around an arbitrary JSON payload::

    {"format": 1, "key": "<sha256>", "checksum": "<sha256 of payload>",
     "payload": {...}}

Trust nothing read back: an entry is served only when the envelope's
format version matches, its recorded key matches the file's name, the
checksum matches the canonical JSON of the payload, *and* the payload
survives structural validation.  Any failure counts as ``invalid``, the
file is deleted, and the entry is recomputed — a corrupted or stale
store can cost time, never correctness.

Writes go through a temp file and ``os.replace`` so a crashed run leaves
either the old entry or the new one, never a torn file.

:class:`JsonEnvelopeStore` is the generic layer (the extraction service
builds its result cache on it); :class:`FragmentCache` specializes it to
primitive HEXT fragments, which is why fragment envelopes carry the
payload under the historical ``"fragment"`` field.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..hext.fragment import Fragment
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    canonical_json,
    fragment_from_payload,
    fragment_payload,
)


@dataclass
class CacheStats:
    """Lookup accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    invalid: int = 0  #: entries rejected (corrupt, stale, or malformed)
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0


class JsonEnvelopeStore:
    """Content-addressed store of JSON payloads across runs.

    Subclasses pin the envelope ``format_version`` (bump it to shed every
    older entry on the next lookup), may rename the payload field for
    compatibility (``payload_field``), and hook structural validation via
    :meth:`validate_payload`.
    """

    format_version: int = 1
    payload_field: str = "payload"

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def validate_payload(self, payload: dict) -> None:
        """Reject malformed payloads by raising SerializationError."""

    def get_payload(self, key: str) -> "dict | None":
        """The validated payload for ``key``, or None (miss or rejected)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return self._reject(path)
        try:
            payload = self._validate(key, envelope)
        except SerializationError:
            return self._reject(path)
        self.stats.hits += 1
        return payload

    def put_payload(self, key: str, payload: dict) -> None:
        """Store a JSON payload under ``key`` (atomic replace)."""
        body = canonical_json(payload)
        envelope = {
            "format": self.format_version,
            "key": key,
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            self.payload_field: payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)
        self.stats.stores += 1

    def _validate(self, key: str, envelope: dict) -> dict:
        if not isinstance(envelope, dict):
            raise SerializationError("envelope is not an object")
        if envelope.get("format") != self.format_version:
            raise SerializationError(
                f"stale cache format {envelope.get('format')!r}"
            )
        if envelope.get("key") != key:
            raise SerializationError("envelope key does not match file name")
        payload = envelope.get(self.payload_field)
        if not isinstance(payload, dict):
            raise SerializationError("missing payload")
        checksum = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        if envelope.get("checksum") != checksum:
            raise SerializationError("payload checksum mismatch")
        self.validate_payload(payload)
        return payload

    def _reject(self, path: Path) -> None:
        self.stats.invalid += 1
        try:
            os.remove(path)
        except OSError:
            pass
        return None

    # -- maintenance -----------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed


class FragmentCache(JsonEnvelopeStore):
    """Content-addressed store of primitive fragments across runs."""

    format_version = FORMAT_VERSION
    payload_field = "fragment"

    def validate_payload(self, payload: dict) -> None:
        fragment_from_payload(payload)

    def get(self, key: str) -> "Fragment | None":
        """The cached fragment for ``key``, or None (miss or rejected)."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return fragment_from_payload(payload)

    def put(self, key: str, fragment: Fragment, payload: "dict | None" = None) -> None:
        """Store a primitive fragment under ``key`` (atomic replace)."""
        payload = fragment_payload(fragment) if payload is None else payload
        self.put_payload(key, payload)
