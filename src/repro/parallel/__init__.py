"""Parallel HEXT execution and the persistent fragment cache.

HEXT's unique-window extractions are mutually independent: each one runs
the modified flat extractor over a window's clipped geometry and nothing
else.  This package exploits that twice:

* :mod:`repro.parallel.pool` fans the execute phase of a
  :class:`~repro.hext.extractor.WindowPlan` out over a
  ``ProcessPoolExecutor`` while planning and composition stay serial in
  the parent, so the memo table remains authoritative in one process;
* :mod:`repro.parallel.cache` persists extracted fragments on disk,
  keyed by a content hash of the window's normalized geometry plus the
  technology and fracture resolution, so repeated runs over unchanged
  windows (the design-iteration workflow) skip extraction entirely.

Both paths move fragments through the versioned serialization format in
:mod:`repro.parallel.serialize`; a cached or worker-produced fragment is
byte-for-byte the same payload either way, which is what makes serial,
parallel, and warm-cache runs produce equivalent wirelists.
"""

from .cache import CacheStats, FragmentCache, JsonEnvelopeStore
from .executor import execute_plan_parallel, resolve_jobs
from .pool import PersistentPool, PoolUnavailable, extract_contents_parallel
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    content_from_payload,
    content_payload,
    fragment_from_payload,
    fragment_payload,
    technology_fingerprint,
    window_cache_key,
)

__all__ = [
    "CacheStats",
    "FORMAT_VERSION",
    "FragmentCache",
    "JsonEnvelopeStore",
    "PersistentPool",
    "PoolUnavailable",
    "SerializationError",
    "content_from_payload",
    "content_payload",
    "execute_plan_parallel",
    "extract_contents_parallel",
    "fragment_from_payload",
    "fragment_payload",
    "resolve_jobs",
    "technology_fingerprint",
    "window_cache_key",
]
