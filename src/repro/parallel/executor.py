"""Orchestration of HEXT's execute phase: cache, pool, serial fallback.

The plan walk (:func:`repro.hext.extractor.plan_windows`) has already
reduced the chip to its unique primitive windows; this module decides
*where* each one's fragment comes from:

1. the persistent :class:`~repro.parallel.cache.FragmentCache`, when a
   ``cache`` directory is given and holds a valid entry;
2. a process pool, when ``jobs`` asks for more than one worker and more
   than one window remains;
3. the in-process modified flat extractor otherwise — also the fallback
   when the pool cannot run, so a restricted environment degrades to the
   serial result rather than an error.

Every fragment a worker or the cache produces passes through the
versioned payload round-trip, so all three sources are interchangeable;
newly extracted fragments are written back to the cache for the next
run.  Composition order is fixed by the plan, which is why the source of
a fragment can never change the extracted circuit.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from ..hext.extractor import HextStats, WindowPlan, extract_primitive
from ..tech import Technology
from .cache import FragmentCache
from .pool import PersistentPool, PoolUnavailable, extract_contents_parallel
from .serialize import (
    content_payload,
    fragment_from_payload,
    window_cache_key,
)


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a jobs request: None/1 -> serial, 0 -> one per CPU."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def execute_plan_parallel(
    plan: WindowPlan,
    tech: Technology,
    stats: HextStats,
    *,
    resolution: int = 50,
    jobs: "int | None" = None,
    cache: "str | None" = None,
    memo: "dict | None" = None,
    pool: "PersistentPool | None" = None,
    engine: str = "auto",
    progress: "Callable[[int, int], None] | None" = None,
) -> dict:
    """Fill ``memo`` with a fragment per unique primitive window.

    With ``pool`` set, pending extractions go to that long-lived
    :class:`~repro.parallel.pool.PersistentPool` instead of a one-shot
    pool sized by ``jobs``; the pool's own worker count wins.

    ``progress(done, total)`` is called over the plan's unique
    primitives; memo/cache hits land in one batched call, and a batch
    served by the process pool completes all at once.
    """
    memo = {} if memo is None else memo
    workers = pool.workers if pool is not None else resolve_jobs(jobs)
    phase_start = time.perf_counter()
    store = FragmentCache(cache) if cache is not None else None
    total = len(plan.primitives)

    # Windows still needing extraction after cache lookup, in plan order.
    pending: list[tuple[object, dict, "str | None"]] = []
    for key, content in plan.primitives.items():
        if key in memo:
            continue
        payload = content_payload(content)
        cache_key = None
        if store is not None:
            cache_key = window_cache_key(content, tech, resolution)
            cached = store.get(cache_key)
            if cached is not None:
                memo[key] = cached
                continue
        pending.append((key, payload, cache_key))

    done = total - len(pending)
    if progress is not None and done:
        progress(done, total)

    if workers > 1 and len(pending) > 1:
        try:
            batch = [payload for _, payload, _ in pending]
            if pool is not None:
                produced = pool.extract(batch)
            else:
                produced = extract_contents_parallel(
                    batch, tech, resolution, workers, engine
                )
        except PoolUnavailable:
            workers = 1
        else:
            for (key, _, cache_key), (fragment_pl, seconds) in zip(
                pending, produced
            ):
                fragment = fragment_from_payload(fragment_pl)
                memo[key] = fragment
                stats.flat_calls += 1
                stats.worker_seconds += seconds
                if store is not None:
                    store.put(cache_key, fragment, payload=fragment_pl)
                done += 1
                if progress is not None:
                    progress(done, total)
            pending = []

    for key, payload, cache_key in pending:
        content = plan.primitives[key]
        start = time.perf_counter()
        fragment = extract_primitive(content, tech, resolution, engine)
        stats.worker_seconds += time.perf_counter() - start
        memo[key] = fragment
        stats.flat_calls += 1
        if store is not None:
            store.put(cache_key, fragment)
        done += 1
        if progress is not None:
            progress(done, total)

    stats.flat_seconds += time.perf_counter() - phase_start
    stats.jobs = max(stats.jobs, workers)
    if store is not None:
        stats.cache_hits += store.stats.hits
        stats.cache_misses += store.stats.misses + store.stats.invalid
        stats.cache_invalid += store.stats.invalid
    return memo
