"""Versioned serialization for windows and primitive fragments.

Two payload shapes, both plain JSON-able dicts:

* a **window payload** is the canonical form of a primitive window's
  content — size plus sorted window-relative geometry and labels.  Its
  hash (together with the technology fingerprint, fracture resolution
  and format version) is the persistent cache key, and it is also what
  crosses the process boundary to pool workers, so a worker sees exactly
  the bytes the cache would key on;
* a **fragment payload** is a primitive :class:`~repro.hext.fragment.Fragment`
  flattened to lists and ints.  Only primitive fragments (no children)
  serialize: composed fragments are cheap to rebuild and share child
  pointers, which a file format cannot preserve.

``FORMAT_VERSION`` participates in every cache key and envelope, so a
format change simply orphans old entries instead of misreading them.
Deserialization validates structure eagerly and raises
:class:`SerializationError` on anything malformed — the cache treats
that the same as a checksum mismatch: discard and re-extract.
"""

from __future__ import annotations

import hashlib
import json

from ..frontend.instantiate import PlacedLabel
from ..geometry import Box
from ..hext.fragment import DeviceRec, Fragment, IfaceRec
from ..hext.windows import Content
from ..tech import Technology

#: Bump when the fragment payload or cache key derivation changes shape.
FORMAT_VERSION = 1

_FACES = frozenset("LRTB")


class SerializationError(ValueError):
    """A payload is structurally invalid for the current format."""


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def technology_fingerprint(tech: Technology) -> str:
    """Digest of every process rule that can influence extraction.

    ``Technology`` is a frozen value object of strings, ints and layer
    constants, so its repr is deterministic and complete.
    """
    return hashlib.sha256(repr(tech).encode()).hexdigest()


# ----------------------------------------------------------------------
# window payloads (cache keys + worker inputs)
# ----------------------------------------------------------------------


def content_payload(content: Content) -> dict:
    """Canonical window-relative payload of a primitive window."""
    if not content.is_primitive():
        raise SerializationError(
            "only primitive (geometry-only) windows serialize"
        )
    ox, oy = content.region.xmin, content.region.ymin
    return {
        "format": FORMAT_VERSION,
        "width": content.region.width,
        "height": content.region.height,
        "geometry": sorted(
            [layer, b.xmin - ox, b.ymin - oy, b.xmax - ox, b.ymax - oy]
            for layer, b in content.geometry
        ),
        "labels": sorted(
            [lb.name, lb.x - ox, lb.y - oy, lb.layer or ""]
            for lb in content.labels
        ),
    }


def content_from_payload(payload: dict) -> Content:
    """Rebuild a window-relative :class:`Content` (origin at 0,0)."""
    try:
        region = Box(0, 0, _as_int(payload["width"]), _as_int(payload["height"]))
        geometry = [
            (str(layer), Box(_as_int(x1), _as_int(y1), _as_int(x2), _as_int(y2)))
            for layer, x1, y1, x2, y2 in payload["geometry"]
        ]
        labels = [
            PlacedLabel(str(name), _as_int(x), _as_int(y), str(layer) or None)
            for name, x, y, layer in payload["labels"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad window payload: {exc}") from exc
    return Content(region=region, geometry=geometry, labels=labels)


def window_cache_key(
    content: Content, tech: Technology, resolution: int
) -> str:
    """Persistent cache key: content hash of window + process + format.

    Everything the extraction result depends on is hashed: the window's
    normalized artwork, the technology rules, the fracture resolution and
    the payload format version.  Placement is *not* part of the key —
    fragments are window-relative — which is exactly the memoization
    property the cache extends across runs.
    """
    body = canonical_json(
        {
            "format": FORMAT_VERSION,
            "tech": technology_fingerprint(tech),
            "resolution": resolution,
            "window": content_payload(content),
        }
    )
    return hashlib.sha256(body.encode()).hexdigest()


# ----------------------------------------------------------------------
# fragment payloads (cache values + worker outputs)
# ----------------------------------------------------------------------


def fragment_payload(fragment: Fragment) -> dict:
    """Flatten a primitive fragment to a JSON-able dict."""
    if fragment.children:
        raise SerializationError("composed fragments do not serialize")
    return {
        "format": FORMAT_VERSION,
        "region": [[b.xmin, b.ymin, b.xmax, b.ymax] for b in fragment.region],
        "net_count": fragment.net_count,
        "equivalences": [list(pair) for pair in fragment.equivalences],
        # Sorted by net id; name order within a net is meaningful (it is
        # discovery order) and preserved.
        "net_names": sorted(
            [ident, list(names)]
            for ident, names in fragment.net_names.items()
        ),
        "net_locs": sorted(
            [ident, loc[0], loc[1]]
            for ident, loc in fragment.net_locs.items()
        ),
        "devices": [_device_payload(rec) for rec in fragment.devices],
        "partials": [_device_payload(rec) for rec in fragment.partials],
        "interface": [
            [rec.face, rec.layer, rec.fixed, rec.lo, rec.hi, rec.ident]
            for rec in fragment.interface
        ],
    }


def fragment_from_payload(payload: dict) -> Fragment:
    """Rebuild a primitive fragment, validating structure throughout."""
    try:
        if payload["format"] != FORMAT_VERSION:
            raise SerializationError(
                f"format {payload['format']!r} != {FORMAT_VERSION}"
            )
        net_count = _as_int(payload["net_count"])
        region = tuple(
            Box(_as_int(x1), _as_int(y1), _as_int(x2), _as_int(y2))
            for x1, y1, x2, y2 in payload["region"]
        )
        if not region:
            raise SerializationError("fragment has no region")
        equivalences = tuple(
            (_net_id(a, net_count), _net_id(b, net_count))
            for a, b in payload["equivalences"]
        )
        net_names = {
            _net_id(ident, net_count): [str(n) for n in names]
            for ident, names in payload["net_names"]
        }
        net_locs = {
            _net_id(ident, net_count): (_as_int(a), _as_int(b))
            for ident, a, b in payload["net_locs"]
        }
        devices = tuple(
            _device_from_payload(item, net_count)
            for item in payload["devices"]
        )
        partials = tuple(
            _device_from_payload(item, net_count)
            for item in payload["partials"]
        )
        interface = tuple(
            _iface_from_payload(item, net_count, len(partials))
            for item in payload["interface"]
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad fragment payload: {exc}") from exc
    return Fragment(
        region=region,
        net_count=net_count,
        equivalences=equivalences,
        net_names=net_names,
        net_locs=net_locs,
        devices=devices,
        partials=partials,
        interface=interface,
    )


def _device_payload(rec: DeviceRec) -> dict:
    return {
        "area": rec.area,
        "terms": sorted([net, per] for net, per in rec.terms.items()),
        "gates": sorted(rec.gates),
        "impl": rec.impl,
        "loc": list(rec.loc) if rec.loc is not None else None,
    }


def _device_from_payload(item: dict, net_count: int) -> DeviceRec:
    loc = item["loc"]
    return DeviceRec(
        area=_as_int(item["area"]),
        terms={
            _net_id(net, net_count): _as_int(per)
            for net, per in item["terms"]
        },
        gates={_net_id(net, net_count) for net in item["gates"]},
        impl=bool(item["impl"]),
        loc=(_as_int(loc[0]), _as_int(loc[1])) if loc is not None else None,
    )


def _iface_from_payload(item: list, net_count: int, partials: int) -> IfaceRec:
    face, layer, fixed, lo, hi, ident = item
    if face not in _FACES:
        raise SerializationError(f"bad interface face {face!r}")
    from ..hext.fragment import CHANNEL

    limit = partials if layer == CHANNEL else net_count
    if not 0 <= _as_int(ident) < limit:
        raise SerializationError(
            f"interface ident {ident} out of range for {layer!r}"
        )
    return IfaceRec(
        str(face), str(layer), _as_int(fixed), _as_int(lo), _as_int(hi),
        _as_int(ident),
    )


def _as_int(value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SerializationError(f"expected int, got {value!r}")
    return value


def _net_id(value, net_count: int) -> int:
    ident = _as_int(value)
    if not 0 <= ident < net_count:
        raise SerializationError(
            f"net id {ident} out of range (net_count={net_count})"
        )
    return ident
