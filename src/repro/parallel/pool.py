"""The worker pool: unique-window extraction over child processes.

The parent sends each worker a canonical *window payload* (the same
bytes the persistent cache keys on) and receives a *fragment payload*
back; workers never see the layout, the memo table, or each other.  The
technology and fracture resolution ride in once per worker via the pool
initializer.  Because the payloads are placement-independent and the
extraction is deterministic, result order cannot affect the extracted
circuit — the parent matches results to windows by index and composes
in plan order regardless of completion order.

Process pools are not available everywhere (restricted sandboxes may
refuse to create the synchronization primitives).  Callers should catch
:class:`PoolUnavailable` and fall back to serial extraction; the
orchestrator in :mod:`repro.parallel.executor` does exactly that.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, process

from ..tech import Technology
from .serialize import content_from_payload, fragment_payload

#: Per-worker state installed by the pool initializer.
_WORKER_STATE: dict = {}


class PoolUnavailable(RuntimeError):
    """The process pool could not be created or died mid-flight."""


def _init_worker(tech: Technology, resolution: int, engine: str = "auto") -> None:
    _WORKER_STATE["tech"] = tech
    _WORKER_STATE["resolution"] = resolution
    _WORKER_STATE["engine"] = engine


def _extract_job(item: "tuple[int, dict]") -> "tuple[int, dict, float]":
    """Worker body: window payload in, fragment payload out."""
    from ..hext.extractor import extract_primitive

    index, payload = item
    start = time.perf_counter()
    content = content_from_payload(payload)
    fragment = extract_primitive(
        content,
        _WORKER_STATE["tech"],
        _WORKER_STATE["resolution"],
        _WORKER_STATE.get("engine", "auto"),
    )
    return index, fragment_payload(fragment), time.perf_counter() - start


def _pool_context() -> "multiprocessing.context.BaseContext":
    # fork is much cheaper than spawn and inherits the imported modules;
    # prefer it where the platform offers it.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


class PersistentPool:
    """A process pool kept alive across extraction runs.

    One-shot callers pay pool startup on every chip; a long-lived host
    (the extraction service daemon) amortizes it by keeping one of these
    per ``(technology, resolution)`` and handing it to
    :func:`repro.parallel.executor.execute_plan_parallel` for every
    request.  Workers are created lazily on the first :meth:`extract`;
    a pool that breaks mid-flight is torn down (broken executors cannot
    be reused) and raises :class:`PoolUnavailable`, after which the next
    :meth:`extract` call transparently builds a fresh pool.
    """

    def __init__(
        self,
        tech: Technology,
        resolution: int,
        jobs: int,
        engine: str = "auto",
    ) -> None:
        self.tech = tech
        self.resolution = resolution
        self.workers = max(1, jobs)
        self.engine = engine
        self._executor: "ProcessPoolExecutor | None" = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_pool_context(),
                    initializer=_init_worker,
                    initargs=(self.tech, self.resolution, self.engine),
                )
            except (OSError, PermissionError, ValueError) as exc:
                raise PoolUnavailable(str(exc)) from exc
        return self._executor

    def extract(self, payloads: "list[dict]") -> "list[tuple[dict, float]]":
        """Extract window payloads over the pool's worker processes.

        Returns ``(fragment_payload, worker_seconds)`` per input, in
        input order.  Raises :class:`PoolUnavailable` when the pool
        cannot run — the caller decides whether to retry serially.
        """
        executor = self._ensure()
        results: "list[tuple[dict, float] | None]" = [None] * len(payloads)
        try:
            for index, payload, seconds in executor.map(
                _extract_job, list(enumerate(payloads)), chunksize=1
            ):
                results[index] = (payload, seconds)
        except (OSError, PermissionError, process.BrokenProcessPool) as exc:
            self.close()
            raise PoolUnavailable(str(exc)) from exc
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise PoolUnavailable(f"workers returned no result for {missing}")
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def extract_contents_parallel(
    payloads: "list[dict]",
    tech: Technology,
    resolution: int,
    jobs: int,
    engine: str = "auto",
) -> "list[tuple[dict, float]]":
    """Extract window payloads over a one-shot pool of ``jobs`` processes.

    Returns ``(fragment_payload, worker_seconds)`` per input, in input
    order.  Raises :class:`PoolUnavailable` when the pool cannot run —
    the caller decides whether to retry serially.
    """
    workers = max(1, min(jobs, len(payloads)))
    with PersistentPool(tech, resolution, workers, engine) as pool:
        return pool.extract(payloads)
