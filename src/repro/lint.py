"""Command-line interface: ``repro-lint``.

One front-end over both checkers: the geometric design-rule checker
(:mod:`repro.drc`) and the electrical static checker
(:mod:`repro.analysis.static_check`).  Each input file is extracted
once -- the DRC rides the extraction scanline as a strip consumer, so
lint costs a single pass per layout -- and the merged findings go out
as text, JSON, or SARIF, optionally filtered through a committed
baseline file.

Both checkers are driven by a technology deck (``--deck`` selects a
builtin name like ``nmos``/``cmos`` or a deck JSON file), and the deck
itself is a lintable artifact: ``--check-deck`` runs the deck
compiler's static validation pass and reports its findings through the
same writers, so CI can gate malformed process descriptions exactly
like malformed layouts.

Exit codes: 0 when no (unsuppressed) errors remain; otherwise the error
count, capped at 99; 120 for usage, parse, or internal failures.
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis.static_check import ERC_RULE_HELP, static_check
from .cif import Layout, parse_file
from .cli import add_version_argument
from .core import extract_report
from .diagnostics import (
    CheckReport,
    SourceIndex,
    apply_baseline,
    format_text,
    load_baseline,
    write_baseline,
    write_json,
    write_sarif,
)
from .drc import ALL_RULES, DrcChecker, help_for, rules_for
from .tech import (
    BUILTIN_DECKS,
    DECK_RULE_HELP,
    DEFAULT_LAMBDA,
    NMOS,
    DeckError,
    Technology,
    TechnologyDeck,
    compile_deck,
    deck_by_name,
    load_deck_file,
    validate_deck,
)

#: Exit code cap: large error counts must not collide with shell
#: signal/usage codes above 125.
MAX_ERROR_EXIT = 99
#: Exit code for parse or internal failures (distinct from any count).
INTERNAL_ERROR_EXIT = 120


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Design-rule and static checks over CIF layouts, "
        "in one scanline pass per file.",
    )
    add_version_argument(parser)
    parser.add_argument("files", nargs="*", help="input CIF files")
    parser.add_argument(
        "--deck",
        default="nmos",
        metavar="NAME|PATH",
        help="technology deck: a builtin name "
        f"({', '.join(sorted(BUILTIN_DECKS))}) or a deck JSON file "
        "(default nmos)",
    )
    parser.add_argument(
        "--check-deck",
        action="store_true",
        help="validate technology decks instead of linting layouts: "
        "checks the positional files as deck JSON (or, with no files, "
        "the --deck selection) and reports the findings",
    )
    parser.add_argument(
        "--lambda",
        dest="lambda_",
        type=int,
        default=None,
        metavar="CENTIMICRONS",
        help="process lambda in centimicrons (default 250)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "-o", "--output", help="report output file (default: stdout)"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--no-drc",
        action="store_true",
        help="skip the geometric design-rule checks",
    )
    parser.add_argument(
        "--no-erc",
        action="store_true",
        help="skip the electrical static checks",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        action="append",
        default=None,
        help="only report these rule ids (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--vdd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra VDD rail name (repeatable, case-insensitive)",
    )
    parser.add_argument(
        "--gnd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra GND rail name (repeatable, case-insensitive)",
    )
    parser.add_argument(
        "--no-attribution",
        action="store_true",
        help="skip mapping findings back to CIF symbols",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule ids (DRC, ERC, and deck validation) and exit",
    )
    return parser


def resolve_deck(spec: str, lambda_: "int | None" = None) -> TechnologyDeck:
    """A deck from a builtin name or a JSON file path.

    Anything that looks like a path (exists on disk, ends in ``.json``,
    or contains a separator) is loaded as a deck file; otherwise the
    builtin registry is consulted.  Raises :class:`DeckError` for
    unparsable files and ``KeyError`` for unknown builtin names.
    """
    looks_like_path = (
        os.path.exists(spec)
        or spec.endswith(".json")
        or os.sep in spec
        or "/" in spec
    )
    if looks_like_path:
        return load_deck_file(spec)
    return deck_by_name(spec, lambda_ or DEFAULT_LAMBDA)


def all_rule_help(tech: "Technology | None" = None) -> dict[str, str]:
    """Rule-id help across DRC, ERC, and deck validation."""
    return {**help_for(tech), **ERC_RULE_HELP, **DECK_RULE_HELP}


def check_deck_reports(
    specs: "list[str]", lambda_: "int | None" = None
) -> "list[CheckReport]":
    """Run the deck validator over each spec; one report per deck.

    Parse failures (unreadable file, malformed JSON shape) surface as a
    single ``deck.parse`` ERROR so the caller still gets a report per
    input instead of an exception.
    """
    reports: list[CheckReport] = []
    for spec in specs:
        try:
            deck = resolve_deck(spec, lambda_)
        except DeckError as exc:
            if exc.report is not None and exc.report.diagnostics:
                report = exc.report
                report.artifact = spec
            else:
                from .diagnostics import Diagnostic, Severity

                report = CheckReport(
                    diagnostics=[
                        Diagnostic(
                            Severity.ERROR,
                            "deck.parse",
                            str(exc),
                            tool="deck",
                        )
                    ],
                    artifact=spec,
                )
            reports.append(report)
            continue
        report = validate_deck(deck)
        report.artifact = spec
        reports.append(report)
    return reports


def _rule_filter(specs: "list[str] | None") -> "frozenset[str] | None":
    if not specs:
        return None
    ids = set()
    for spec in specs:
        ids.update(part.strip() for part in spec.split(",") if part.strip())
    return frozenset(ids)


def lint_layout(
    layout: "Layout",
    *,
    tech: "Technology | None" = None,
    drc: bool = True,
    erc: bool = True,
    rule_ids: "frozenset[str] | None" = None,
    vdd_names: "tuple[str, ...] | None" = None,
    gnd_names: "tuple[str, ...] | None" = None,
    attribute: bool = True,
    artifact: "str | None" = None,
) -> CheckReport:
    """Lint a parsed layout: a single extraction pass feeds both checkers.

    ``tech`` carries the deck whose rule set, messages, and ERC policy
    apply; rail names left ``None`` resolve from the deck (the CLI's
    ``--vdd``/``--gnd`` extend rather than replace them).
    """
    tech = tech or NMOS()
    checker = (
        DrcChecker(
            tech,
            rules_for(tech),
            enabled=(
                frozenset(r for r in rule_ids if r in ALL_RULES)
                if rule_ids is not None
                else None
            ),
        )
        if drc
        else None
    )
    extraction = extract_report(
        layout, tech, strip_consumers=(checker,) if checker else ()
    )
    report = CheckReport(artifact=artifact)
    if checker is not None:
        drc_report = checker.report(artifact=artifact)
        if attribute and drc_report.diagnostics:
            drc_report = SourceIndex(layout).attribute(drc_report)
        report.extend(drc_report)
    if erc:
        erc_report = static_check(
            extraction.circuit,
            tech=tech,
            vdd_names=vdd_names,
            gnd_names=gnd_names,
        )
        if rule_ids is not None:
            erc_report = CheckReport(
                diagnostics=[
                    d for d in erc_report.diagnostics if d.rule in rule_ids
                ]
            )
        report.extend(erc_report)
    return report.sorted()


def lint_file(
    path: str,
    *,
    lambda_: "int | None" = None,
    tech: "Technology | None" = None,
    drc: bool = True,
    erc: bool = True,
    rule_ids: "frozenset[str] | None" = None,
    vdd_names: "tuple[str, ...] | None" = None,
    gnd_names: "tuple[str, ...] | None" = None,
    attribute: bool = True,
) -> CheckReport:
    """Lint one CIF file (see :func:`lint_layout`)."""
    if tech is None:
        tech = NMOS(lambda_) if lambda_ else NMOS()
    return lint_layout(
        parse_file(path),
        tech=tech,
        drc=drc,
        erc=erc,
        rule_ids=rule_ids,
        vdd_names=vdd_names,
        gnd_names=gnd_names,
        attribute=attribute,
        artifact=path,
    )


def _emit(reports: "list[CheckReport]", args: argparse.Namespace,
          rule_help: "dict[str, str]") -> None:
    if args.format == "json":
        text = write_json(reports)
    elif args.format == "sarif":
        text = write_sarif(reports, rule_help=rule_help)
    else:
        text = "".join(format_text(r) for r in reports)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        try:
            deck = resolve_deck(args.deck, args.lambda_)
            tech = compile_deck(deck)
        except (DeckError, KeyError, OSError):
            tech = None
        for rule, help_text in sorted(all_rule_help(tech).items()):
            print(f"{rule}: {help_text}")
        return 0

    if args.check_deck:
        specs = list(args.files) or [args.deck]
        reports = check_deck_reports(specs, args.lambda_)
        _emit(reports, args, all_rule_help())
        errors = sum(len(r.errors) for r in reports)
        return min(errors, MAX_ERROR_EXIT)

    if not args.files:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no input files", file=sys.stderr)
        return INTERNAL_ERROR_EXIT

    try:
        deck = resolve_deck(args.deck, args.lambda_)
        tech = compile_deck(deck)
    except DeckError as exc:
        print(f"repro-lint: --deck {args.deck}: {exc}", file=sys.stderr)
        print(
            "repro-lint: run with --check-deck for the full validation "
            "report",
            file=sys.stderr,
        )
        return INTERNAL_ERROR_EXIT
    except (KeyError, OSError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro-lint: --deck {args.deck}: {message}", file=sys.stderr)
        return INTERNAL_ERROR_EXIT

    rule_ids = _rule_filter(args.rules)
    vdd = tuple(tech.deck.erc.vdd_names) + tuple(args.vdd or ())
    gnd = tuple(tech.deck.erc.gnd_names) + tuple(args.gnd or ())

    reports: list[CheckReport] = []
    for path in args.files:
        try:
            reports.append(
                lint_file(
                    path,
                    tech=tech,
                    drc=not args.no_drc,
                    erc=not args.no_erc,
                    rule_ids=rule_ids,
                    vdd_names=vdd,
                    gnd_names=gnd,
                    attribute=not args.no_attribution,
                )
            )
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {path}: {exc}", file=sys.stderr)
            return INTERNAL_ERROR_EXIT

    if args.write_baseline:
        write_baseline(args.write_baseline, reports)
        total = sum(len(r.diagnostics) for r in reports)
        print(
            f"repro-lint: wrote baseline of {total} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {args.baseline}: {exc}", file=sys.stderr)
            return INTERNAL_ERROR_EXIT
        reports = [apply_baseline(r, baseline) for r in reports]

    _emit(reports, args, all_rule_help(tech))

    errors = sum(len(r.errors) for r in reports)
    return min(errors, MAX_ERROR_EXIT)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
