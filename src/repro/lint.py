"""Command-line interface: ``repro-lint``.

One front-end over both checkers: the geometric design-rule checker
(:mod:`repro.drc`) and the electrical static checker
(:mod:`repro.analysis.static_check`).  Each input file is extracted
once -- the DRC rides the extraction scanline as a strip consumer, so
lint costs a single pass per layout -- and the merged findings go out
as text, JSON, or SARIF, optionally filtered through a committed
baseline file.

Exit codes: 0 when no (unsuppressed) errors remain; otherwise the error
count, capped at 99; 120 for usage, parse, or internal failures.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.static_check import (
    DEFAULT_GND_NAMES,
    DEFAULT_VDD_NAMES,
    static_check,
)
from .cif import Layout, parse_file
from .cli import add_version_argument
from .core import extract_report
from .diagnostics import (
    CheckReport,
    SourceIndex,
    apply_baseline,
    format_text,
    load_baseline,
    write_baseline,
    write_json,
    write_sarif,
)
from .drc import ALL_RULES, RULE_HELP, DrcChecker, default_rules
from .tech import NMOS, Technology

#: Exit code cap: large error counts must not collide with shell
#: signal/usage codes above 125.
MAX_ERROR_EXIT = 99
#: Exit code for parse or internal failures (distinct from any count).
INTERNAL_ERROR_EXIT = 120


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Design-rule and static checks over CIF layouts, "
        "in one scanline pass per file.",
    )
    add_version_argument(parser)
    parser.add_argument("files", nargs="*", help="input CIF files")
    parser.add_argument(
        "--lambda",
        dest="lambda_",
        type=int,
        default=None,
        metavar="CENTIMICRONS",
        help="process lambda in centimicrons (default 250)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "-o", "--output", help="report output file (default: stdout)"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--no-drc",
        action="store_true",
        help="skip the geometric design-rule checks",
    )
    parser.add_argument(
        "--no-erc",
        action="store_true",
        help="skip the electrical static checks",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        action="append",
        default=None,
        help="only report these rule ids (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--vdd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra VDD rail name (repeatable, case-insensitive)",
    )
    parser.add_argument(
        "--gnd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra GND rail name (repeatable, case-insensitive)",
    )
    parser.add_argument(
        "--no-attribution",
        action="store_true",
        help="skip mapping findings back to CIF symbols",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the design-rule ids and exit",
    )
    return parser


def _rule_filter(specs: "list[str] | None") -> "frozenset[str] | None":
    if not specs:
        return None
    ids = set()
    for spec in specs:
        ids.update(part.strip() for part in spec.split(",") if part.strip())
    return frozenset(ids)


def lint_layout(
    layout: "Layout",
    *,
    tech: "Technology | None" = None,
    drc: bool = True,
    erc: bool = True,
    rule_ids: "frozenset[str] | None" = None,
    vdd_names: "tuple[str, ...]" = DEFAULT_VDD_NAMES,
    gnd_names: "tuple[str, ...]" = DEFAULT_GND_NAMES,
    attribute: bool = True,
    artifact: "str | None" = None,
) -> CheckReport:
    """Lint a parsed layout: a single extraction pass feeds both checkers."""
    tech = tech or NMOS()
    checker = (
        DrcChecker(
            tech,
            default_rules(tech.lambda_),
            enabled=(
                frozenset(r for r in rule_ids if r in ALL_RULES)
                if rule_ids is not None
                else None
            ),
        )
        if drc
        else None
    )
    extraction = extract_report(
        layout, tech, strip_consumers=(checker,) if checker else ()
    )
    report = CheckReport(artifact=artifact)
    if checker is not None:
        drc_report = checker.report(artifact=artifact)
        if attribute and drc_report.diagnostics:
            drc_report = SourceIndex(layout).attribute(drc_report)
        report.extend(drc_report)
    if erc:
        erc_report = static_check(
            extraction.circuit, vdd_names=vdd_names, gnd_names=gnd_names
        )
        if rule_ids is not None:
            erc_report = CheckReport(
                diagnostics=[
                    d for d in erc_report.diagnostics if d.rule in rule_ids
                ]
            )
        report.extend(erc_report)
    return report.sorted()


def lint_file(
    path: str,
    *,
    lambda_: "int | None" = None,
    drc: bool = True,
    erc: bool = True,
    rule_ids: "frozenset[str] | None" = None,
    vdd_names: "tuple[str, ...]" = DEFAULT_VDD_NAMES,
    gnd_names: "tuple[str, ...]" = DEFAULT_GND_NAMES,
    attribute: bool = True,
) -> CheckReport:
    """Lint one CIF file (see :func:`lint_layout`)."""
    return lint_layout(
        parse_file(path),
        tech=NMOS(lambda_) if lambda_ else NMOS(),
        drc=drc,
        erc=erc,
        rule_ids=rule_ids,
        vdd_names=vdd_names,
        gnd_names=gnd_names,
        attribute=attribute,
        artifact=path,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule}: {RULE_HELP[rule]}")
        return 0
    if not args.files:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no input files", file=sys.stderr)
        return INTERNAL_ERROR_EXIT

    rule_ids = _rule_filter(args.rules)
    vdd = DEFAULT_VDD_NAMES + tuple(args.vdd or ())
    gnd = DEFAULT_GND_NAMES + tuple(args.gnd or ())

    reports: list[CheckReport] = []
    for path in args.files:
        try:
            reports.append(
                lint_file(
                    path,
                    lambda_=args.lambda_,
                    drc=not args.no_drc,
                    erc=not args.no_erc,
                    rule_ids=rule_ids,
                    vdd_names=vdd,
                    gnd_names=gnd,
                    attribute=not args.no_attribution,
                )
            )
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {path}: {exc}", file=sys.stderr)
            return INTERNAL_ERROR_EXIT

    if args.write_baseline:
        write_baseline(args.write_baseline, reports)
        total = sum(len(r.diagnostics) for r in reports)
        print(
            f"repro-lint: wrote baseline of {total} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {args.baseline}: {exc}", file=sys.stderr)
            return INTERNAL_ERROR_EXIT
        reports = [apply_baseline(r, baseline) for r in reports]

    if args.format == "json":
        text = write_json(reports)
    elif args.format == "sarif":
        text = write_sarif(reports, rule_help=RULE_HELP)
    else:
        text = "".join(format_text(r) for r in reports)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    errors = sum(len(r.errors) for r in reports)
    return min(errors, MAX_ERROR_EXIT)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
