"""Layout rendering: ASCII art for terminals, SVG for everything else.

Cifplot -- the Berkeley comparator of Table 5-2 -- was first of all a
*plotter* that happened to extract; a reproduction of this toolchain
deserves the plot half too.  Both renderers work from the fully
instantiated artwork, so what you see is exactly what the extractor
analyzes (fractured polygons, expanded hierarchy and all).
"""

from __future__ import annotations

from io import StringIO

from ..cif import Layout
from ..frontend import instantiate

#: Mead-Conway-ish layer colors for SVG (fill, opacity).
LAYER_COLORS = {
    "ND": ("#1f9d2f", 0.55),  # diffusion: green
    "NP": ("#d42a2a", 0.55),  # poly: red
    "NM": ("#2a52d4", 0.40),  # metal: blue
    "NC": ("#111111", 0.90),  # contact cut: black
    "NI": ("#d4b72a", 0.35),  # implant: yellow
    "NB": ("#8a5a2a", 0.60),  # buried: brown
    "NG": ("#777777", 0.30),  # overglass: grey
}

#: ASCII cell characters by descending precedence.  A cell showing 'T'
#: is a transistor channel (diffusion under poly, no buried).
_ASCII_RULES = (
    (frozenset({"NC"}), "X"),
    (frozenset({"NB", "NP", "ND"}), "B"),
    (frozenset({"NP", "ND"}), "T"),
    (frozenset({"NP"}), "p"),
    (frozenset({"ND"}), "d"),
    (frozenset({"NM"}), "m"),
    (frozenset({"NI"}), "i"),
    (frozenset({"NB"}), "b"),
    (frozenset({"NG"}), "g"),
)


def ascii_plot(
    layout: Layout, *, width: int = 72, show_labels: bool = True
) -> str:
    """Render the layout as a character grid.

    One character per sampled cell, picked by layer precedence: ``X``
    contact cut, ``B`` buried contact, ``T`` transistor channel, ``p``
    poly, ``d`` diffusion, ``m`` metal, ``i`` implant.  Labels are
    overprinted when they fit.
    """
    boxes, labels = instantiate(layout)
    if not boxes:
        return "(empty layout)\n"
    xmin = min(b.xmin for _, b in boxes)
    xmax = max(b.xmax for _, b in boxes)
    ymin = min(b.ymin for _, b in boxes)
    ymax = max(b.ymax for _, b in boxes)
    span_x = xmax - xmin
    span_y = ymax - ymin
    # Terminal cells are ~2x taller than wide; halve the row count.
    step = max(1, -(-span_x // width))
    cols = -(-span_x // step)
    rows = max(1, -(-span_y // (step * 2)))

    grid = [[" "] * cols for _ in range(rows)]
    sets: list[list[set]] = [[set() for _ in range(cols)] for _ in range(rows)]
    for layer, box in boxes:
        c0 = max(0, (box.xmin - xmin) // step)
        c1 = min(cols, -(-(box.xmax - xmin) // step))
        r0 = max(0, (ymax - box.ymax) // (step * 2))
        r1 = min(rows, -(-(ymax - box.ymin) // (step * 2)))
        for r in range(r0, r1):
            for c in range(c0, c1):
                sets[r][c].add(layer)

    for r in range(rows):
        for c in range(cols):
            present = sets[r][c]
            if not present:
                continue
            for needed, char in _ASCII_RULES:
                if needed <= present:
                    grid[r][c] = char
                    break

    if show_labels:
        for label in labels:
            c = min(cols - 1, max(0, (label.x - xmin) // step))
            r = min(rows - 1, max(0, (ymax - label.y) // (step * 2)))
            for k, ch in enumerate(label.name):
                if c + k < cols:
                    grid[r][c + k] = ch

    out = StringIO()
    for row in grid:
        out.write("".join(row).rstrip() + "\n")
    return out.getvalue()


def svg_plot(
    layout: Layout,
    path: str | None = None,
    *,
    scale: float = 0.05,
    show_labels: bool = True,
) -> str:
    """Render the layout as an SVG document; optionally write it out.

    ``scale`` maps CIF centimicrons to SVG user units (default: 0.05,
    i.e. one lambda of a 2.5 micron process is 12.5 units).
    """
    boxes, labels = instantiate(layout)
    if boxes:
        xmin = min(b.xmin for _, b in boxes)
        xmax = max(b.xmax for _, b in boxes)
        ymin = min(b.ymin for _, b in boxes)
        ymax = max(b.ymax for _, b in boxes)
    else:
        xmin = ymin = 0
        xmax = ymax = 1
    pad = max(1.0, (xmax - xmin) * scale * 0.03)
    width = (xmax - xmin) * scale + 2 * pad
    height = (ymax - ymin) * scale + 2 * pad

    def tx(x: int) -> float:
        return (x - xmin) * scale + pad

    def ty(y: int) -> float:
        # SVG y grows downward; CIF y grows upward.
        return (ymax - y) * scale + pad

    out = StringIO()
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.1f}" height="{height:.1f}" '
        f'viewBox="0 0 {width:.1f} {height:.1f}">\n'
    )
    out.write(
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        f'fill="#f8f6ef"/>\n'
    )
    # Draw in a fixed layer order so the stack reads correctly.
    order = ("NI", "ND", "NP", "NB", "NM", "NC", "NG")
    ranked = sorted(
        boxes,
        key=lambda item: order.index(item[0]) if item[0] in order else 99,
    )
    for layer, box in ranked:
        fill, opacity = LAYER_COLORS.get(layer, ("#999999", 0.4))
        out.write(
            f'<rect x="{tx(box.xmin):.1f}" y="{ty(box.ymax):.1f}" '
            f'width="{box.width * scale:.1f}" '
            f'height="{box.height * scale:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity}">'
            f"<title>{layer} {box.xmin},{box.ymin}..{box.xmax},{box.ymax}"
            f"</title></rect>\n"
        )
    if show_labels:
        font = max(4.0, 8 * scale / 0.05)
        for label in labels:
            out.write(
                f'<text x="{tx(label.x):.1f}" y="{ty(label.y):.1f}" '
                f'font-size="{font:.1f}" font-family="monospace" '
                f'fill="#222">{label.name}</text>\n'
            )
    out.write("</svg>\n")
    text = out.getvalue()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def plot_legend() -> str:
    """The ASCII character legend, for example output."""
    return (
        "legend: T transistor channel  B buried contact  X contact cut\n"
        "        d diffusion  p poly  m metal  i implant\n"
    )
