"""Layout plotting: ASCII and SVG renderers."""

from .render import LAYER_COLORS, ascii_plot, plot_legend, svg_plot

__all__ = ["LAYER_COLORS", "ascii_plot", "plot_legend", "svg_plot"]
