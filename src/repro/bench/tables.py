"""ASCII table rendering for the benchmark harness.

The benchmarks print tables in the same shape as the paper's, with a
paper-reported column next to the measured one where applicable, so the
reproduction can be eyeballed row by row.
"""

from __future__ import annotations

from io import StringIO


def format_table(
    headers: "list[str]", rows: "list[list]", title: str = ""
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    out = StringIO()
    if title:
        out.write(f"\n{title}\n")
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rendered:
        out.write(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            ).rstrip()
            + "\n"
        )
    return out.getvalue()


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(".", "", 1).replace("-", "", 1).replace(":", "")
    return stripped.isdigit()


def mmss(seconds: float) -> str:
    """Render seconds as the paper's min:sec columns."""
    total = round(seconds)
    return f"{total // 60}:{total % 60:02d}"


def ratio_column(values: "list[float]") -> list[str]:
    """Each value relative to the first ('1.0x', '3.9x', ...)."""
    if not values or values[0] == 0:
        return ["-" for _ in values]
    return [f"{v / values[0]:.1f}x" for v in values]
