"""Service load benchmark: ``python -m repro.bench.service``.

Starts an in-process extraction daemon on an ephemeral port, then
hammers it over real HTTP with ``--clients`` concurrent blocking
clients, each submitting from a shared pool of distinct generated
layouts.  Two passes run back to back:

* **cold** — the daemon has never seen any payload: every request pays
  full extraction (this is also where the warm *window* memo builds);
* **warm** — the identical request mix again: every request must be a
  result-cache hit.

The report (``BENCH_service.json``) captures throughput and tail
latency (client-observed p50/p95/p99) per pass, the daemon's own
``/metrics`` snapshot, and the accounting the acceptance bar cares
about: submitted == completed (zero dropped jobs) and a warm pass
served entirely from the result cache.  ``--check`` turns those into
hard failures so CI can run the benchmark without timing flakiness.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from ..cif import write as write_cif
from ..service import ExtractionService, ServiceClient, ServiceConfig
from ..service.client import ServiceError
from ..service.metrics import quantile
from ..workloads import dram_column, inverter, poly_diff_mesh, transistor_array

DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 6  #: requests per client per pass
DEFAULT_WORKERS = 4


def payload_pool() -> "list[tuple[str, str]]":
    """Distinct (name, cif) payloads; small but structurally varied."""
    return [
        ("inverter.cif", write_cif(inverter())),
        ("array8.cif", write_cif(transistor_array(8))),
        ("dram6.cif", write_cif(dram_column(6))),
        ("mesh6.cif", write_cif(poly_diff_mesh(6))),
    ]


def _client_loop(
    client: ServiceClient,
    payloads: "list[tuple[str, str]]",
    requests: int,
    offset: int,
    latencies: "list[float]",
    errors: "list[str]",
    hext: bool,
) -> None:
    for index in range(requests):
        name, cif = payloads[(offset + index) % len(payloads)]
        started = time.perf_counter()
        try:
            # Backpressure is part of the protocol: honor Retry-After.
            while True:
                try:
                    client.extract(
                        cif, name=name, hext=hext, wait_timeout=120.0
                    )
                    break
                except ServiceError as exc:
                    if exc.status != 429:
                        raise
                    time.sleep(min(exc.retry_after or 0.2, 1.0))
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            errors.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        latencies.append(time.perf_counter() - started)


def _run_pass(
    label: str,
    port: int,
    clients: int,
    requests: int,
    hext: bool,
) -> dict:
    latencies: "list[float]" = []
    errors: "list[str]" = []
    threads = []
    started = time.perf_counter()
    for index in range(clients):
        client = ServiceClient(port=port, timeout=150.0)
        thread = threading.Thread(
            target=_client_loop,
            args=(
                client, payload_pool(), requests, index, latencies, errors,
                hext,
            ),
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    total = clients * requests
    return {
        "pass": label,
        "requests": total,
        "completed": len(latencies),
        "errors": errors,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 2) if elapsed else 0,
        "latency": {
            "p50_seconds": round(quantile(ordered, 0.50), 5),
            "p95_seconds": round(quantile(ordered, 0.95), 5),
            "p99_seconds": round(quantile(ordered, 0.99), 5),
            "max_seconds": round(ordered[-1], 5) if ordered else 0.0,
        },
    }


def bench_service(
    clients: int = DEFAULT_CLIENTS,
    requests: int = DEFAULT_REQUESTS,
    workers: int = DEFAULT_WORKERS,
    queue_capacity: int = 32,
    hext: bool = False,
) -> dict:
    """Run the cold/warm load test; returns the JSON-ready report."""
    service = ExtractionService(
        ServiceConfig(
            port=0,
            workers=workers,
            queue_capacity=queue_capacity,
            quiet=True,
        )
    )
    service.start()
    try:
        cold = _run_pass("cold", service.port, clients, requests, hext)
        after_cold = service.metrics_payload()
        warm = _run_pass("warm", service.port, clients, requests, hext)
        metrics = service.metrics_payload()
    finally:
        clean = service.drain(grace=30.0)
    warm_hits = (
        metrics["cache"]["hits"] - after_cold["cache"]["hits"]
    )
    return {
        "benchmark": "extraction service load test (real HTTP, "
        "concurrent blocking clients)",
        "config": {
            "clients": clients,
            "requests_per_client": requests,
            "workers": workers,
            "queue_capacity": queue_capacity,
            "hext": hext,
            "payloads": [name for name, _ in payload_pool()],
        },
        "passes": [cold, warm],
        "warm_cache_hits": warm_hits,
        "drained_clean": clean,
        "daemon_metrics": metrics,
    }


# -- fleet topology sweeps ------------------------------------------------


def _reference_wirelists(
    payloads: "list[tuple[str, str]]", workers: int, hext: bool
) -> "dict[str, str]":
    """Ground truth: every payload through one solo daemon."""
    service = ExtractionService(
        ServiceConfig(port=0, workers=workers, quiet=True)
    )
    service.start()
    try:
        client = ServiceClient(port=service.port, timeout=150.0)
        return {
            name: client.extract(cif, name=name, hext=hext)["wirelist"]
            for name, cif in payloads
        }
    finally:
        service.drain(grace=30.0)


def _duplicate_burst(
    port: int, name: str, cif: str, submitters: int
) -> "dict":
    """All submitters fire one identical payload at the same instant.

    The router must collapse the burst onto one upstream job: every
    submitter gets the same fleet ident back, every result is byte-
    identical, and the fleet's ``coalesced`` counter accounts for the
    pile-up.  (The payload must be fresh — a cached payload would test
    the result cache, not in-flight coalescing.)
    """
    barrier = threading.Barrier(submitters)
    idents: "list[str]" = []
    wirelists: "list[str]" = []
    errors: "list[str]" = []
    lock = threading.Lock()

    def fire() -> None:
        client = ServiceClient(port=port, timeout=150.0, retries=4)
        barrier.wait()
        try:
            receipt = client.submit(cif, name=name)
            ident = receipt["job"]
            status = (
                receipt
                if receipt["state"] == "done"
                else client.wait(ident, timeout=120.0)
            )
            if status["state"] != "done":
                raise RuntimeError(f"burst job ended {status['state']}")
            wirelist = client.result(ident)["wirelist"]
            with lock:
                idents.append(ident)
                wirelists.append(wirelist)
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=fire) for _ in range(submitters)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "submitters": submitters,
        "completed": len(wirelists),
        "errors": errors,
        "distinct_idents": len(set(idents)),
        "identical_results": len(set(wirelists)) <= 1,
        "wirelist": wirelists[0] if wirelists else None,
    }


def _fleet_client_loop(
    port: int,
    payloads: "list[tuple[str, str]]",
    requests: int,
    offset: int,
    latencies: "list[float]",
    errors: "list[str]",
    collected: "dict[str, set]",
    lock: "threading.Lock",
    done_counter: "list[int]",
    hext: bool,
) -> None:
    client = ServiceClient(port=port, timeout=150.0, retries=6)
    for index in range(requests):
        name, cif = payloads[(offset + index) % len(payloads)]
        started = time.perf_counter()
        try:
            result = client.extract(
                cif, name=name, hext=hext, wait_timeout=120.0
            )
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            with lock:
                errors.append(f"{name}: {type(exc).__name__}: {exc}")
                done_counter[0] += 1
            continue
        elapsed = time.perf_counter() - started
        with lock:
            latencies.append(elapsed)
            collected.setdefault(name, set()).add(result["wirelist"])
            done_counter[0] += 1


def _bench_fleet_topology(
    shard_count: int,
    reference: "dict[str, str]",
    burst_payload: "tuple[str, str]",
    burst_reference: str,
    clients: int,
    requests: int,
    workers: int,
    queue_capacity: int,
    hext: bool,
    kill_mid_run: bool,
) -> dict:
    """One row of the sweep: a full fleet exercised at one shard count."""
    import tempfile

    from ..fleet import FleetRouter, FleetSupervisor, RouterConfig

    store = tempfile.mkdtemp(prefix=f"bench-fleet-{shard_count}-")
    supervisor = FleetSupervisor(
        shard_count,
        workers=workers,
        queue_capacity=queue_capacity,
        store_dir=store,
        prime_cache=16,
    )
    router = None
    killed_shard = None
    try:
        specs = supervisor.start()
        router = FleetRouter(
            specs,
            RouterConfig(port=0, quiet=True, health_interval=0.25),
        )
        router.start()
        port = router.port

        burst = _duplicate_burst(
            port,
            burst_payload[0],
            burst_payload[1],
            submitters=max(8, clients),
        )
        burst["matches_reference"] = burst["wirelist"] == burst_reference
        del burst["wirelist"]

        latencies: "list[float]" = []
        errors: "list[str]" = []
        collected: "dict[str, set]" = {}
        lock = threading.Lock()
        done = [0]
        payloads = payload_pool()
        total = clients * requests
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_fleet_client_loop,
                args=(
                    port, payloads, requests, index, latencies, errors,
                    collected, lock, done, hext,
                ),
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        if kill_mid_run and shard_count > 1:
            # Shard death drill: SIGKILL one shard once the load is in
            # full flight; every remaining request must still complete
            # (router failover + client retry absorb the hole).
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with lock:
                    progressed = done[0]
                if progressed >= max(1, total // 4):
                    break
                time.sleep(0.01)
            killed_shard = "shard1"
            supervisor.kill_shard(killed_shard)
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        if killed_shard is not None:
            # Recovery drill: replace the corpse and re-point the
            # router, so the end-of-row drain can be fully clean.
            host, new_port = supervisor.restart_shard(killed_shard)
            router.update_shard(killed_shard, host, new_port)

        parity_ok = all(
            wirelists == {reference[name]}
            for name, wirelists in collected.items()
        ) and len(collected) == len(payloads)

        verify_client = ServiceClient(port=port, timeout=150.0, retries=4)
        post_kill_parity = all(
            verify_client.extract(cif, name=name, hext=hext)["wirelist"]
            == reference[name]
            for name, cif in payloads
        )
        fleet_metrics = verify_client.metrics()["fleet"]

        ordered = sorted(latencies)
        router_clean = router.drain(grace=60.0)
        router = None
        shards_clean = supervisor.drain()
        counters = fleet_metrics["counters"]
        return {
            "shards": shard_count,
            "burst": burst,
            "load": {
                "requests": total,
                "completed": len(latencies),
                "errors": errors,
                "elapsed_seconds": round(elapsed, 4),
                "throughput_rps": (
                    round(len(latencies) / elapsed, 2) if elapsed else 0
                ),
                "latency": {
                    "p50_seconds": round(quantile(ordered, 0.50), 5),
                    "p95_seconds": round(quantile(ordered, 0.95), 5),
                    "p99_seconds": round(quantile(ordered, 0.99), 5),
                },
            },
            "killed_shard": killed_shard,
            "parity_ok": parity_ok,
            "post_kill_parity_ok": post_kill_parity,
            "coalesce_hits": counters.get("coalesced", 0),
            "failovers": counters.get("failover", 0),
            "shards_down_seen": counters.get("shard_down", 0),
            "drained_clean": bool(router_clean and shards_clean),
        }
    finally:
        if router is not None:
            router.close()
        supervisor.close()


def bench_fleet(
    shard_counts: "list[int]",
    clients: int = DEFAULT_CLIENTS,
    requests: int = DEFAULT_REQUESTS,
    workers: int = 2,
    queue_capacity: int = 32,
    hext: bool = False,
    kill_mid_run: bool = True,
) -> dict:
    """Sweep fleet topologies; one row per shard count.

    Every row is judged against the same single-daemon ground truth:
    byte-identical wirelists, zero dropped requests, coalesce hits on
    the duplicate burst, and a clean drain — with one shard SIGKILLed
    mid-load whenever the topology has a spare.
    """
    payloads = payload_pool()
    reference = _reference_wirelists(payloads, workers, hext)
    burst_payload = ("burst.cif", write_cif(poly_diff_mesh(9)))
    burst_reference = _reference_wirelists(
        [burst_payload], workers, hext
    )[burst_payload[0]]
    rows = [
        _bench_fleet_topology(
            count,
            reference,
            burst_payload,
            burst_reference,
            clients,
            requests,
            workers,
            queue_capacity,
            hext,
            kill_mid_run,
        )
        for count in shard_counts
    ]
    return {
        "benchmark": "fleet topology sweep (router + N daemon shards, "
        "duplicate bursts, mid-run shard kill)",
        "config": {
            "shard_counts": shard_counts,
            "clients": clients,
            "requests_per_client": requests,
            "workers_per_shard": workers,
            "queue_capacity": queue_capacity,
            "hext": hext,
            "kill_mid_run": kill_mid_run,
            "payloads": [name for name, _ in payloads],
        },
        "rows": rows,
    }


def check_fleet_report(report: dict) -> "list[str]":
    """Fleet acceptance bar; returns violations (empty = pass)."""
    problems = []
    for row in report["rows"]:
        tag = f"shards={row['shards']}"
        burst = row["burst"]
        if burst["completed"] != burst["submitters"]:
            problems.append(
                f"{tag}: duplicate burst dropped "
                f"{burst['submitters'] - burst['completed']} submitters: "
                + "; ".join(burst["errors"][:3])
            )
        if not burst["identical_results"] or not burst["matches_reference"]:
            problems.append(
                f"{tag}: duplicate burst results diverged from the "
                "single-daemon reference"
            )
        if row["coalesce_hits"] < 1:
            problems.append(
                f"{tag}: the duplicate burst produced no coalesce hits "
                f"({burst['distinct_idents']} distinct fleet jobs)"
            )
        load = row["load"]
        if load["completed"] != load["requests"]:
            problems.append(
                f"{tag}: {load['requests'] - load['completed']} of "
                f"{load['requests']} requests dropped: "
                + "; ".join(load["errors"][:3])
            )
        if not row["parity_ok"] or not row["post_kill_parity_ok"]:
            problems.append(
                f"{tag}: wirelists diverged from the single-daemon "
                "reference"
            )
        if not row["drained_clean"]:
            problems.append(f"{tag}: fleet did not drain cleanly")
    return problems


def check_report(report: dict) -> "list[str]":
    """The machine-independent acceptance bar; returns violations."""
    problems = []
    for entry in report["passes"]:
        if entry["completed"] != entry["requests"]:
            problems.append(
                f"{entry['pass']}: {entry['requests'] - entry['completed']}"
                f" of {entry['requests']} requests dropped: "
                + "; ".join(entry["errors"][:3])
            )
    warm = report["passes"][1]
    if report["warm_cache_hits"] < warm["requests"]:
        problems.append(
            f"warm pass expected >= {warm['requests']} result-cache hits, "
            f"daemon counted {report['warm_cache_hits']}"
        )
    jobs = report["daemon_metrics"]["jobs"]
    if jobs["failed"] or jobs["timed_out"]:
        problems.append(
            f"{jobs['failed']} failed + {jobs['timed_out']} timed-out jobs"
        )
    if not report["drained_clean"]:
        problems.append("daemon did not drain cleanly")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_CLIENTS,
        help="concurrent clients (default %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests per client per pass (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="daemon worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--queue", type=int, default=32,
        help="daemon queue capacity (default %(default)s)",
    )
    parser.add_argument(
        "--hext", action="store_true",
        help="submit hierarchical jobs (exercises the warm window memo)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None, metavar="N",
        help="fleet mode: sweep these shard counts behind a router "
        "instead of load-testing one daemon (writes BENCH_fleet.json)",
    )
    parser.add_argument(
        "--no-kill", action="store_true",
        help="fleet mode: skip the mid-run shard SIGKILL drill",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default BENCH_service.json, or "
        "BENCH_fleet.json with --shards)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on dropped jobs or a warm pass that missed the cache",
    )
    args = parser.parse_args(argv)

    if args.shards is not None:
        return _fleet_main(args)

    out = args.out or "BENCH_service.json"
    report = bench_service(
        clients=args.clients,
        requests=args.requests,
        workers=args.workers,
        queue_capacity=args.queue,
        hext=args.hext,
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["passes"]:
        lat = entry["latency"]
        print(
            f"{entry['pass']:>4}: {entry['completed']}/{entry['requests']} "
            f"ok, {entry['throughput_rps']:.1f} req/s, "
            f"p50 {lat['p50_seconds'] * 1000:.1f}ms  "
            f"p95 {lat['p95_seconds'] * 1000:.1f}ms  "
            f"p99 {lat['p99_seconds'] * 1000:.1f}ms"
        )
    print(
        f"warm cache hits: {report['warm_cache_hits']}, "
        f"drained clean: {report['drained_clean']}"
    )
    print(f"wrote {out}")

    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"LOAD TEST FAILURE: {problem}", file=sys.stderr)
            return 1
        print("service load invariants hold")
    return 0


def _fleet_main(args: argparse.Namespace) -> int:
    out = args.out or "BENCH_fleet.json"
    report = bench_fleet(
        args.shards,
        clients=args.clients,
        requests=args.requests,
        workers=args.workers,
        queue_capacity=args.queue,
        hext=args.hext,
        kill_mid_run=not args.no_kill,
    )
    Path(out).write_text(json.dumps(report, indent=2) + "\n")

    for row in report["rows"]:
        load = row["load"]
        lat = load["latency"]
        killed = (
            f", killed {row['killed_shard']}" if row["killed_shard"] else ""
        )
        print(
            f"shards={row['shards']}: {load['completed']}/"
            f"{load['requests']} ok, {load['throughput_rps']:.1f} req/s, "
            f"p95 {lat['p95_seconds'] * 1000:.1f}ms, "
            f"coalesced {row['coalesce_hits']}, "
            f"failovers {row['failovers']}{killed}, "
            f"parity {'ok' if row['parity_ok'] else 'BROKEN'}, "
            f"drain {'clean' if row['drained_clean'] else 'DIRTY'}"
        )
    print(f"wrote {out}")

    if args.check:
        problems = check_fleet_report(report)
        if problems:
            for problem in problems:
                print(f"FLEET TEST FAILURE: {problem}", file=sys.stderr)
            return 1
        print("fleet invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
