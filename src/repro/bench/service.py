"""Service load benchmark: ``python -m repro.bench.service``.

Starts an in-process extraction daemon on an ephemeral port, then
hammers it over real HTTP with ``--clients`` concurrent blocking
clients, each submitting from a shared pool of distinct generated
layouts.  Two passes run back to back:

* **cold** — the daemon has never seen any payload: every request pays
  full extraction (this is also where the warm *window* memo builds);
* **warm** — the identical request mix again: every request must be a
  result-cache hit.

The report (``BENCH_service.json``) captures throughput and tail
latency (client-observed p50/p95/p99) per pass, the daemon's own
``/metrics`` snapshot, and the accounting the acceptance bar cares
about: submitted == completed (zero dropped jobs) and a warm pass
served entirely from the result cache.  ``--check`` turns those into
hard failures so CI can run the benchmark without timing flakiness.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from ..cif import write as write_cif
from ..service import ExtractionService, ServiceClient, ServiceConfig
from ..service.client import ServiceError
from ..service.metrics import quantile
from ..workloads import dram_column, inverter, poly_diff_mesh, transistor_array

DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 6  #: requests per client per pass
DEFAULT_WORKERS = 4


def payload_pool() -> "list[tuple[str, str]]":
    """Distinct (name, cif) payloads; small but structurally varied."""
    return [
        ("inverter.cif", write_cif(inverter())),
        ("array8.cif", write_cif(transistor_array(8))),
        ("dram6.cif", write_cif(dram_column(6))),
        ("mesh6.cif", write_cif(poly_diff_mesh(6))),
    ]


def _client_loop(
    client: ServiceClient,
    payloads: "list[tuple[str, str]]",
    requests: int,
    offset: int,
    latencies: "list[float]",
    errors: "list[str]",
    hext: bool,
) -> None:
    for index in range(requests):
        name, cif = payloads[(offset + index) % len(payloads)]
        started = time.perf_counter()
        try:
            # Backpressure is part of the protocol: honor Retry-After.
            while True:
                try:
                    client.extract(
                        cif, name=name, hext=hext, wait_timeout=120.0
                    )
                    break
                except ServiceError as exc:
                    if exc.status != 429:
                        raise
                    time.sleep(min(exc.retry_after or 0.2, 1.0))
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            errors.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        latencies.append(time.perf_counter() - started)


def _run_pass(
    label: str,
    port: int,
    clients: int,
    requests: int,
    hext: bool,
) -> dict:
    latencies: "list[float]" = []
    errors: "list[str]" = []
    threads = []
    started = time.perf_counter()
    for index in range(clients):
        client = ServiceClient(port=port, timeout=150.0)
        thread = threading.Thread(
            target=_client_loop,
            args=(
                client, payload_pool(), requests, index, latencies, errors,
                hext,
            ),
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    total = clients * requests
    return {
        "pass": label,
        "requests": total,
        "completed": len(latencies),
        "errors": errors,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 2) if elapsed else 0,
        "latency": {
            "p50_seconds": round(quantile(ordered, 0.50), 5),
            "p95_seconds": round(quantile(ordered, 0.95), 5),
            "p99_seconds": round(quantile(ordered, 0.99), 5),
            "max_seconds": round(ordered[-1], 5) if ordered else 0.0,
        },
    }


def bench_service(
    clients: int = DEFAULT_CLIENTS,
    requests: int = DEFAULT_REQUESTS,
    workers: int = DEFAULT_WORKERS,
    queue_capacity: int = 32,
    hext: bool = False,
) -> dict:
    """Run the cold/warm load test; returns the JSON-ready report."""
    service = ExtractionService(
        ServiceConfig(
            port=0,
            workers=workers,
            queue_capacity=queue_capacity,
            quiet=True,
        )
    )
    service.start()
    try:
        cold = _run_pass("cold", service.port, clients, requests, hext)
        after_cold = service.metrics_payload()
        warm = _run_pass("warm", service.port, clients, requests, hext)
        metrics = service.metrics_payload()
    finally:
        clean = service.drain(grace=30.0)
    warm_hits = (
        metrics["cache"]["hits"] - after_cold["cache"]["hits"]
    )
    return {
        "benchmark": "extraction service load test (real HTTP, "
        "concurrent blocking clients)",
        "config": {
            "clients": clients,
            "requests_per_client": requests,
            "workers": workers,
            "queue_capacity": queue_capacity,
            "hext": hext,
            "payloads": [name for name, _ in payload_pool()],
        },
        "passes": [cold, warm],
        "warm_cache_hits": warm_hits,
        "drained_clean": clean,
        "daemon_metrics": metrics,
    }


def check_report(report: dict) -> "list[str]":
    """The machine-independent acceptance bar; returns violations."""
    problems = []
    for entry in report["passes"]:
        if entry["completed"] != entry["requests"]:
            problems.append(
                f"{entry['pass']}: {entry['requests'] - entry['completed']}"
                f" of {entry['requests']} requests dropped: "
                + "; ".join(entry["errors"][:3])
            )
    warm = report["passes"][1]
    if report["warm_cache_hits"] < warm["requests"]:
        problems.append(
            f"warm pass expected >= {warm['requests']} result-cache hits, "
            f"daemon counted {report['warm_cache_hits']}"
        )
    jobs = report["daemon_metrics"]["jobs"]
    if jobs["failed"] or jobs["timed_out"]:
        problems.append(
            f"{jobs['failed']} failed + {jobs['timed_out']} timed-out jobs"
        )
    if not report["drained_clean"]:
        problems.append("daemon did not drain cleanly")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_CLIENTS,
        help="concurrent clients (default %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests per client per pass (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="daemon worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--queue", type=int, default=32,
        help="daemon queue capacity (default %(default)s)",
    )
    parser.add_argument(
        "--hext", action="store_true",
        help="submit hierarchical jobs (exercises the warm window memo)",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json",
        help="report path (default %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on dropped jobs or a warm pass that missed the cache",
    )
    args = parser.parse_args(argv)

    report = bench_service(
        clients=args.clients,
        requests=args.requests,
        workers=args.workers,
        queue_capacity=args.queue,
        hext=args.hext,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["passes"]:
        lat = entry["latency"]
        print(
            f"{entry['pass']:>4}: {entry['completed']}/{entry['requests']} "
            f"ok, {entry['throughput_rps']:.1f} req/s, "
            f"p50 {lat['p50_seconds'] * 1000:.1f}ms  "
            f"p95 {lat['p95_seconds'] * 1000:.1f}ms  "
            f"p99 {lat['p99_seconds'] * 1000:.1f}ms"
        )
    print(
        f"warm cache hits: {report['warm_cache_hits']}, "
        f"drained clean: {report['drained_clean']}"
    )
    print(f"wrote {args.out}")

    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"LOAD TEST FAILURE: {problem}", file=sys.stderr)
            return 1
        print("service load invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
