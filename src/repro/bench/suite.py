"""Chip-suite runner shared by the table benchmarks.

Builds the synthetic suite at a chosen scale and runs any of the
extractors over it, collecting the columns Tables 5-1/5-2 (ACE) and
5-1/5-2 (HEXT) report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..analysis import layout_stats
from ..baselines import extract_polyflat, extract_raster
from ..cif import Layout
from ..core import extract_report
from ..hext import HextStats, hext_extract
from ..workloads import CHIP_SPECS, build_chip
from .harness import timed

#: Default device-count scale for benchmark runs.  Overridable through
#: the environment so `pytest benchmarks/` can be dialed up on faster
#: machines: REPRO_BENCH_SCALE=0.25 pytest benchmarks/ ...
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.0625"))

#: Chips small enough for the slow baselines at the default scale,
#: mirroring the paper's '-' entries where Partlist/Cifplot gave up.
RASTER_LIMIT = 30000
POLYFLAT_LIMIT = 4000


@dataclass
class SuiteRow:
    """Measurements for one chip."""

    name: str
    paper_devices: int
    devices: int
    boxes: int
    ace_seconds: float
    ace_stats: object
    raster_seconds: float | None = None
    polyflat_seconds: float | None = None
    hext_stats: HextStats | None = None
    hext_devices: int | None = None

    @property
    def devices_per_second(self) -> float:
        return self.devices / self.ace_seconds if self.ace_seconds else 0.0

    @property
    def boxes_per_second(self) -> float:
        return self.boxes / self.ace_seconds if self.ace_seconds else 0.0


def build_suite(
    scale: float = DEFAULT_SCALE, names: "tuple[str, ...] | None" = None
) -> dict[str, Layout]:
    selected = names or tuple(spec.name for spec in CHIP_SPECS)
    return {name: build_chip(name, scale) for name in selected}


def run_suite(
    scale: float = DEFAULT_SCALE,
    names: "tuple[str, ...] | None" = None,
    *,
    with_baselines: bool = False,
    with_hext: bool = False,
) -> list[SuiteRow]:
    rows: list[SuiteRow] = []
    for name, layout in build_suite(scale, names).items():
        spec = next(s for s in CHIP_SPECS if s.name == name)
        art = layout_stats(layout)
        ace = timed(extract_report, layout)
        report = ace.result
        row = SuiteRow(
            name=name,
            paper_devices=spec.paper_devices,
            devices=len(report.circuit.devices),
            boxes=art.boxes,
            ace_seconds=ace.seconds,
            ace_stats=report.stats,
        )
        if with_baselines:
            if row.devices <= RASTER_LIMIT:
                row.raster_seconds = timed(extract_raster, layout).seconds
            if row.devices <= POLYFLAT_LIMIT:
                row.polyflat_seconds = timed(extract_polyflat, layout).seconds
        if with_hext:
            hext = timed(hext_extract, layout)
            result = hext.result
            circuit = result.circuit  # resolve, so timers fill in
            row.hext_stats = result.stats
            row.hext_devices = len(circuit.devices)
        rows.append(row)
    return rows
