"""Benchmark harness: timing, table formatting, and the suite runner."""

from .harness import Timed, best_of, measured, timed
from .parallel import ScalingRow, distinct_cell_grid, scaling_run

# NOTE: the scanline micro-benchmark lives in repro.bench.scanline and is
# imported directly (it doubles as ``python -m repro.bench.scanline``, and
# importing it here would shadow that runpy entry point).
from .suite import (
    DEFAULT_SCALE,
    POLYFLAT_LIMIT,
    RASTER_LIMIT,
    SuiteRow,
    build_suite,
    run_suite,
)
from .tables import format_table, mmss, ratio_column

__all__ = [
    "DEFAULT_SCALE",
    "POLYFLAT_LIMIT",
    "RASTER_LIMIT",
    "ScalingRow",
    "SuiteRow",
    "Timed",
    "best_of",
    "build_suite",
    "distinct_cell_grid",
    "format_table",
    "measured",
    "mmss",
    "ratio_column",
    "run_suite",
    "scaling_run",
    "timed",
]
