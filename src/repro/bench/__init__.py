"""Benchmark harness: timing, table formatting, and the suite runner."""

from .harness import Timed, best_of, timed
from .suite import (
    DEFAULT_SCALE,
    POLYFLAT_LIMIT,
    RASTER_LIMIT,
    SuiteRow,
    build_suite,
    run_suite,
)
from .tables import format_table, mmss, ratio_column

__all__ = [
    "DEFAULT_SCALE",
    "POLYFLAT_LIMIT",
    "RASTER_LIMIT",
    "SuiteRow",
    "Timed",
    "best_of",
    "build_suite",
    "format_table",
    "mmss",
    "ratio_column",
    "run_suite",
    "timed",
]
