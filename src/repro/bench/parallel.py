"""Serial-vs-parallel scaling benchmark for the HEXT execute phase.

The workload is built to be the parallel layer's best case and the memo
table's worst: ``distinct_cell_grid`` places *distinct* random cells
(no two share a window key), so every cell is a unique primitive window
and the execute phase has real, independent work to fan out.  That is
deliberate — on highly redundant layouts the memo table already removes
the work a pool would share, which is the "when parallelism does not
help" note of ``docs/PARALLELISM.md``.

``scaling_run`` measures the same layout at several ``--jobs`` levels
plus a cold-then-warm persistent-cache pair, and verifies every variant
against the serial wirelist, mirroring the correctness bar of the test
suite: parallelism and caching may only move time, never the circuit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..hext import hext_extract
from ..tech import DEFAULT_LAMBDA
from ..wirelist import circuit_to_flat, compare_netlists
from ..workloads import LayoutBuilder
from .harness import timed

#: Layers drawn in generated cells, weighted like the random-square model.
_CELL_LAYERS = ("NM", "NM", "NP", "NP", "ND", "ND", "NC", "NI", "NB")


def distinct_cell_grid(
    cells: int = 8,
    repeats: int = 4,
    boxes: int = 120,
    seed: int = 0,
    lambda_: int = DEFAULT_LAMBDA,
):
    """A chip of ``cells`` distinct random cells, each placed ``repeats`` times.

    Every cell gets its own random artwork, so HEXT sees ``cells`` unique
    primitive windows (plus memo hits for the repeats) — the fan-out the
    parallel execute phase feeds on.  Cell frames are spaced so instance
    bounding boxes never overlap and subdivision is a single slice.
    """
    rng = random.Random(seed)
    side = max(12, int(2.2 * boxes**0.5))
    pitch = side + 4
    builder = LayoutBuilder(lambda_)
    symbols = []
    for _ in range(cells):
        cell = builder.new_symbol()
        for _ in range(boxes):
            x = rng.randint(0, side - 3)
            y = rng.randint(0, side - 3)
            w = rng.randint(2, 4)
            h = rng.randint(2, 4)
            cell.box(rng.choice(_CELL_LAYERS), x, y, x + w, y + h)
        symbols.append(cell)
    top = builder.top
    for column, cell in enumerate(symbols):
        for row in range(repeats):
            top.call(cell.number, dx=column * pitch, dy=row * pitch)
    return builder.done()


@dataclass
class ScalingRow:
    """One measured configuration of the same extraction."""

    label: str
    seconds: float
    flat_calls: int
    cache_hits: int = 0
    cache_misses: int = 0
    equivalent: bool = True

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0


def scaling_run(
    layout,
    jobs_levels: "tuple[int, ...]" = (1, 2, 4),
    cache_dir: "str | None" = None,
) -> list[ScalingRow]:
    """Measure serial, per-jobs-level, and cold/warm cache extractions.

    Every row's wirelist is equivalence-checked against the serial run.
    """
    serial = timed(lambda: hext_extract(layout))
    reference = circuit_to_flat(serial.result.circuit)
    rows = [
        ScalingRow(
            label="serial",
            seconds=serial.seconds,
            flat_calls=serial.result.stats.flat_calls,
        )
    ]

    def measure(label: str, **kwargs) -> ScalingRow:
        run = timed(lambda: hext_extract(layout, **kwargs))
        stats = run.result.stats
        report = compare_netlists(
            reference, circuit_to_flat(run.result.circuit)
        )
        row = ScalingRow(
            label=label,
            seconds=run.seconds,
            flat_calls=stats.flat_calls,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            equivalent=report.equivalent,
        )
        rows.append(row)
        return row

    for level in jobs_levels:
        measure(f"jobs={level}", jobs=level)
    if cache_dir is not None:
        measure("cache cold", cache=cache_dir)
        measure("cache warm", cache=cache_dir)
    return rows
