"""Scanline engine micro-benchmark: ``python -m repro.bench.scanline``.

Times the :class:`~repro.core.scanline.ScanlineEngine` alone — front-end
stream construction and CIF parsing excluded, matching the paper's phase
split — on the worst-case poly/diffusion mesh of section 4, and writes a
``BENCH_scanline.json`` report with wall clock per (size, strip engine)
plus the event-heap counters from :class:`~repro.core.stats.ScanStats`.

The ``--engine`` axis benchmarks the pluggable strip back-ends (see
docs/ENGINES.md): ``both`` (the default) runs every engine available in
this interpreter and tags each row, so the report carries the python and
numpy trajectories side by side with a same-run ``speedup_vs_python``
column on the numpy rows — the only cross-engine comparison that is
meaningful on shared hardware.

"Before" numbers come from ``benchmarks/results/scanline_baseline.json``,
a committed one-off capture of the pre-event-heap engine on the same
harness; wall-clock speedups are therefore only meaningful on comparable
hardware.  A missing or malformed capture raises :class:`BaselineError`
with the repair story instead of a raw traceback.  The counters are not
hardware-bound: ``--check`` asserts machine-independent invariants of
the event-heap design (every scheduled interval is popped exactly once,
per-stop scheduling overhead is bounded by the number of tracked layers,
never by the active-list population, and never worse than the per-size
``max_stop_overhead`` recorded in the committed baseline) — and, because
the counters must be identical for every strip engine, the check doubles
as an engine-parity probe CI can run without timing flakiness.

``--profile`` adds one profiled run per (size, engine) through the
host's per-phase timers (``schedule`` / ``expire`` / ``insert`` /
``strip`` / ``finalize``, see :data:`~repro.core.scanline.PROFILE_PHASES`)
and writes the breakdown both into each report row and into a sibling
``<out-stem>_profile.json`` artifact.  See docs/SCANLINE_PERF.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.extractor import extract_report
from ..core.scanline import PROFILE_PHASES, ScanlineEngine
from ..core.stripengine import (
    EngineUnavailable,
    numpy_available,
    resolve_engine,
)
from ..frontend.stream import GeometryStream
from ..tech import NMOS
from ..wirelist import to_wirelist, write_wirelist
from ..workloads.mesh import poly_diff_mesh
from .harness import measured, timed

#: Mesh sizes (n lines per direction -> n^2 transistors).  The largest
#: size is where the asymptotic win over the O(stops x active) engine
#: shows; the smaller ones keep the scaling trend visible.
DEFAULT_SIZES = (32, 64, 128, 256, 512)

#: Default number of timed runs per size (best-of).
DEFAULT_REPEATS = 3

#: Mesh sizes for the ``--stream`` axis.  Every configuration runs an
#: extra tracked pass for the allocator peak, so the axis uses smaller
#: meshes than the engine-only timing.
DEFAULT_STREAM_SIZES = (32, 64, 128)

#: Chip-height divisors for the ``--stream`` band sweep: a few fat
#: bands, then progressively finer slicing.
DEFAULT_STREAM_DIVISORS = (4, 16, 64)

#: Committed capture of the pre-event-heap engine, relative to repo root.
BASELINE_PATH = Path("benchmarks") / "results" / "scanline_baseline.json"


class BaselineError(RuntimeError):
    """The committed legacy baseline is missing or not a capture."""


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def _load_baseline_rows(path: Path | None = None) -> list[dict]:
    """The committed capture's row list, schema-checked.

    Raises :class:`BaselineError` — not ``FileNotFoundError`` soup — when
    the capture is absent or does not look like one, so the CLI can say
    what is wrong and how to fix it.
    """
    path = path or _repo_root() / BASELINE_PATH
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise BaselineError(
            f"legacy baseline capture not found at {path}: {exc}. "
            "The committed capture lives at "
            f"{BASELINE_PATH} in the repo; pass --baseline to point at "
            "another capture file."
        ) from exc
    except ValueError as exc:
        raise BaselineError(
            f"legacy baseline at {path} is not valid JSON: {exc}"
        ) from exc
    try:
        rows = payload["rows"]
        for row in rows:
            int(row["n"]), float(row["seconds"])
    except (KeyError, TypeError, ValueError) as exc:
        raise BaselineError(
            f"legacy baseline at {path} does not match the capture "
            "schema (expected {'rows': [{'n': int, 'seconds': float}, "
            f"...]}}): {exc!r}"
        ) from exc
    return rows


def load_baseline(path: Path | None = None) -> dict[int, float]:
    """Map mesh size -> legacy-engine seconds from a committed capture."""
    return {
        int(row["n"]): float(row["seconds"])
        for row in _load_baseline_rows(path)
    }


def load_baseline_overheads(path: Path | None = None) -> dict[int, int]:
    """Map mesh size -> committed ``max_stop_overhead`` bound.

    The bound is a machine-independent counter, so ``--check`` can hold
    every fresh run to it exactly.  Rows without the field (captures
    predating it) are simply skipped — old baselines keep loading, they
    just bound fewer sizes.
    """
    bounds: dict[int, int] = {}
    for row in _load_baseline_rows(path):
        try:
            bounds[int(row["n"])] = int(row["max_stop_overhead"])
        except (KeyError, TypeError, ValueError):
            continue
    return bounds


def resolve_bench_engines(requested: str) -> tuple[list[str], list[str]]:
    """Map an ``--engine`` request to concrete engine names.

    Returns ``(engines, notes)``.  ``both`` means every engine available
    in this interpreter, with a note (not an error) when numpy is
    absent; a single explicit engine resolves through
    :func:`~repro.core.stripengine.resolve_engine`, so asking for numpy
    without numpy raises :class:`EngineUnavailable`.
    """
    if requested == "both":
        engines = ["python"]
        notes = []
        if numpy_available():
            engines.append("numpy")
        else:
            notes.append(
                "numpy not importable: benchmarking the python engine "
                "only (install the fast extra for the numpy trajectory)"
            )
        return engines, notes
    return [resolve_engine(requested)], []


def bench_scanline(
    sizes=DEFAULT_SIZES,
    repeats: int = DEFAULT_REPEATS,
    baseline: dict[int, float] | None = None,
    engines: "list[str] | None" = None,
    profile: bool = False,
) -> list[dict]:
    """Benchmark each (mesh size, strip engine); one JSON row per pair.

    Engines are interleaved per size (every engine runs on the same
    layout object back to back) so the same-run ``speedup_vs_python``
    column compares like with like even when machine speed drifts over
    the course of the run.  Python rows carry ``speedup_vs_python`` of
    ``1.0`` (the identity comparison), so report consumers can assert
    the column uniformly instead of special-casing nulls.

    With ``profile=True`` each pair runs once more with the host's
    per-phase profiler enabled; that run's wall clock is **not** folded
    into ``seconds`` (the timer instrumentation, however light, would
    taint the headline number) and its breakdown lands in the row's
    ``profile`` mapping.
    """
    if baseline is None:
        baseline = load_baseline()
    if engines is None:
        engines = resolve_bench_engines("both")[0]
    tech = NMOS()
    rows = []
    for n in sizes:
        layout = poly_diff_mesh(n)
        python_seconds: float | None = None
        for engine_name in engines:
            # The engine consumes its stream destructively, so each
            # repeat rebuilds stream and engine OUTSIDE the timer: the
            # measurement covers engine.run alone, not the paper's
            # parse/sort phase.
            seconds = float("inf")
            for _ in range(max(1, repeats)):
                stream = GeometryStream(layout)
                engine = ScanlineEngine(tech, engine=engine_name)
                seconds = min(seconds, timed(engine.run, stream).seconds)
            # One extra run under tracemalloc for the allocator peak;
            # its (slowed) wall clock is discarded so the timing stays
            # comparable to the untracked baseline capture.
            stream = GeometryStream(layout)
            engine = ScanlineEngine(tech, engine=engine_name)
            tracked = timed(engine.run, stream, track_alloc=True)
            phases: "dict[str, float] | None" = None
            if profile:
                stream = GeometryStream(layout)
                profiled = ScanlineEngine(
                    tech, engine=engine_name, profile=True
                )
                timed(profiled.run, stream)
                phases = dict(profiled.stats.profile or {})
            if engine_name == "python":
                python_seconds = seconds
            stats = engine.stats
            before = baseline.get(n)
            row = {
                "n": n,
                "engine": engine.engine_name,
                "mode": "engine",
                "band_height": None,
                "peak_alloc": tracked.peak_alloc,
                "boxes": stats.boxes_in,
                "stops": stats.stops,
                "devices": stats.devices_created,
                "peak_active": stats.peak_active,
                "seconds": seconds,
                "baseline_seconds": before,
                "speedup": (before / seconds) if before else None,
                "speedup_vs_python": (
                    python_seconds / seconds
                    if engine_name != "python"
                    and python_seconds is not None
                    else (1.0 if engine_name == "python" else None)
                ),
                "tracked_layers": len(engine._heaps),
                "counters": {
                    "heap_pushes": stats.heap_pushes,
                    "heap_pops": stats.heap_pops,
                    "lazy_discards": stats.lazy_discards,
                    "expired": stats.expired,
                    "intervals_scanned": stats.intervals_scanned,
                    "max_stop_overhead": stats.max_stop_overhead,
                },
            }
            if phases is not None:
                row["profile"] = phases
            rows.append(row)
    return rows


def _memory_once(layout, tech, engine_name: str):
    """One full in-memory extraction down to wirelist text."""
    report = extract_report(layout, tech, engine=engine_name)
    text = write_wirelist(to_wirelist(report.circuit, name="bench.cif"))
    return report, text


def _stream_once(layout, tech, engine_name: str, band_height: int):
    from ..streaming import stream_extract

    return stream_extract(
        layout,
        tech,
        name="bench.cif",
        engine=engine_name,
        band_height=band_height,
    )


def bench_stream(
    sizes=DEFAULT_STREAM_SIZES,
    repeats: int = DEFAULT_REPEATS,
    engines: "list[str] | None" = None,
    divisors=DEFAULT_STREAM_DIVISORS,
) -> list[dict]:
    """The banded-streaming axis: wall time and allocator peak per plan.

    For each (mesh size, engine) the full in-memory extraction (parse to
    wirelist text) is measured once as ``mode == "memory"``, then the
    streamed extraction at one band height per chip-height divisor as
    ``mode == "stream"`` rows.  Each configuration's allocator peak
    comes from one tracemalloc-tracked run whose wall clock is
    discarded; the O(band) contract shows up as stream rows' peaks
    shrinking with the band height while the memory row's stays put.

    The streamed wirelist is asserted byte-identical to the in-memory
    one on every row, so a bench run doubles as an equivalence check.
    Rows carry the same event counters as the engine-only axis, which
    lets :func:`check_rows` cross-check streamed against in-memory
    bookkeeping too.
    """
    if engines is None:
        engines = resolve_bench_engines("both")[0]
    tech = NMOS()
    rows = []
    for n in sizes:
        layout = poly_diff_mesh(n)
        bbox = GeometryStream(layout).chip_bbox
        height = bbox.ymax - bbox.ymin
        tracked_layers = len(ScanlineEngine(tech)._heaps)
        # Same-run python seconds per (mode, band_height), so stream
        # rows get the same like-with-like speedup column as the
        # engine-only axis (engines run python-first).
        python_secs: "dict[tuple, float]" = {}
        for engine_name in engines:
            mem = measured(
                _memory_once, layout, tech, engine_name, repeats=repeats
            )
            report, expected = mem.result
            if engine_name == "python":
                python_secs[("memory", None)] = mem.seconds
            rows.append(
                _stream_row(
                    n,
                    "memory",
                    None,
                    1,
                    mem,
                    report.stats,
                    engine=engine_name,
                    devices=len(report.circuit.devices),
                    tracked_layers=tracked_layers,
                    python_seconds=python_secs.get(("memory", None)),
                )
            )
            for divisor in divisors:
                band_height = max(1, height // divisor)
                run = measured(
                    _stream_once,
                    layout,
                    tech,
                    engine_name,
                    band_height,
                    repeats=repeats,
                )
                sreport = run.result
                if sreport.text != expected:
                    raise RuntimeError(
                        f"streamed wirelist diverged from in-memory at "
                        f"n={n} engine={engine_name} "
                        f"band_height={band_height}"
                    )
                if engine_name == "python":
                    python_secs[("stream", band_height)] = run.seconds
                rows.append(
                    _stream_row(
                        n,
                        "stream",
                        band_height,
                        sreport.bands,
                        run,
                        sreport.stats,
                        engine=engine_name,
                        devices=sreport.devices,
                        tracked_layers=tracked_layers,
                        python_seconds=python_secs.get(
                            ("stream", band_height)
                        ),
                    )
                )
    return rows


def _stream_row(
    n: int,
    mode: str,
    band_height: "int | None",
    bands: int,
    run,
    stats,
    *,
    engine: str,
    devices: int,
    tracked_layers: int,
    python_seconds: "float | None" = None,
) -> dict:
    if engine == "python":
        speedup_vs_python: "float | None" = 1.0
    elif python_seconds is not None:
        speedup_vs_python = python_seconds / run.seconds
    else:
        speedup_vs_python = None
    return {
        "n": n,
        "engine": engine,
        "mode": mode,
        "band_height": band_height,
        "bands": bands,
        "boxes": stats.boxes_in,
        "stops": stats.stops,
        "devices": devices,
        "peak_active": stats.peak_active,
        "seconds": run.seconds,
        "peak_alloc": run.peak_alloc,
        "baseline_seconds": None,
        "speedup": None,
        "speedup_vs_python": speedup_vs_python,
        "tracked_layers": tracked_layers,
        "counters": {
            "heap_pushes": stats.heap_pushes,
            "heap_pops": stats.heap_pops,
            "lazy_discards": stats.lazy_discards,
            "expired": stats.expired,
            "intervals_scanned": stats.intervals_scanned,
            "max_stop_overhead": stats.max_stop_overhead,
        },
    }


def check_rows(
    rows: list[dict],
    overhead_bounds: "dict[int, int] | None" = None,
) -> list[str]:
    """Machine-independent event-heap invariants; returns violations.

    * conservation: every push is eventually popped, and every pop is
      either a real expiry or a lazy discard of a merge-consumed entry;
    * bounded overhead: at any stop the engine examines at most two
      heap heads per tracked layer beyond the entries it removes, so
      scheduling work per stop is O(layers), not O(active intervals);
    * the aggregate corollary: total examinations are bounded by total
      removals plus that per-stop allowance;
    * engine parity: the counters are host-side event bookkeeping, so
      every strip engine must report identical counters for a size;
    * baseline regression: with ``overhead_bounds`` (size ->
      ``max_stop_overhead`` from the committed baseline capture), a
      fresh run must not schedule worse per stop than the capture did —
      the counter is deterministic, so any excess is a real regression,
      not noise.
    """
    problems = []
    overhead_bounds = overhead_bounds or {}
    for row in rows:
        n, c = row["n"], row["counters"]
        layers = row["tracked_layers"]
        if c["heap_pushes"] != c["heap_pops"]:
            problems.append(
                f"n={n}: {c['heap_pushes']} pushes but {c['heap_pops']} pops"
            )
        if c["expired"] + c["lazy_discards"] != c["heap_pops"]:
            problems.append(
                f"n={n}: expired {c['expired']} + lazy {c['lazy_discards']}"
                f" != pops {c['heap_pops']}"
            )
        if c["max_stop_overhead"] > 2 * layers:
            problems.append(
                f"n={n}: max per-stop overhead {c['max_stop_overhead']}"
                f" exceeds 2 x {layers} tracked layers"
            )
        bound = overhead_bounds.get(n)
        if bound is not None and c["max_stop_overhead"] > bound:
            problems.append(
                f"n={n}: max per-stop overhead {c['max_stop_overhead']}"
                f" exceeds the committed baseline bound {bound}"
            )
        budget = c["heap_pops"] + 2 * layers * row["stops"]
        if c["intervals_scanned"] > budget:
            problems.append(
                f"n={n}: {c['intervals_scanned']} intervals scanned"
                f" exceeds event budget {budget}"
            )
    by_size: dict[int, dict] = {}
    for row in rows:
        seen = by_size.setdefault(row["n"], row["counters"])
        if row["counters"] != seen:
            problems.append(
                f"n={row['n']}: engine {row['engine']} counters diverge "
                "from the first engine's -- strip engines must drive the "
                "event machinery identically"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.scanline", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--sizes",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=DEFAULT_SIZES,
        help="comma-separated mesh sizes (default %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed runs per size, best-of (default %(default)s)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "python", "numpy", "both"),
        default="both",
        help="strip engine(s) to benchmark (default %(default)s: every "
        "engine available in this interpreter)",
    )
    parser.add_argument(
        "--out", default="BENCH_scanline.json",
        help="report path (default %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON (default: the committed capture)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on event-heap counter invariant violations (including "
        "per-stop overhead regressions against the committed baseline)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each (size, engine) once more with the host's "
        "per-phase profiler and write the schedule/expire/insert/strip/"
        "finalize breakdown to <out-stem>_profile.json next to --out",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="also run the banded-streaming axis: in-memory vs streamed "
        "extraction at several band heights, wall time plus allocator "
        "peak per row",
    )
    parser.add_argument(
        "--stream-sizes",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=DEFAULT_STREAM_SIZES,
        help="mesh sizes for the --stream axis (default %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        engines, notes = resolve_bench_engines(args.engine)
        baseline = load_baseline(args.baseline)
        overhead_bounds = load_baseline_overheads(args.baseline)
    except (BaselineError, EngineUnavailable, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"note: {note}")

    rows = bench_scanline(
        sizes=args.sizes,
        repeats=args.repeats,
        baseline=baseline,
        engines=engines,
        profile=args.profile,
    )
    stream_rows: list[dict] = []
    if args.stream:
        stream_rows = bench_stream(
            sizes=args.stream_sizes, repeats=args.repeats, engines=engines
        )

    report = {
        "benchmark": "scanline worst-case mesh (engine only)",
        "workload": "poly_diff_mesh: 2n boxes, n^2 transistors",
        "baseline": str(BASELINE_PATH),
        "engines": engines,
        "rows": rows,
        "stream_rows": stream_rows,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    profile_path: Path | None = None
    if args.profile:
        # A sibling artifact CI can upload next to the main report.
        profile_path = out_path.with_name(
            out_path.stem + "_profile" + (out_path.suffix or ".json")
        )
        profile_path.write_text(
            json.dumps(
                {
                    "benchmark": report["benchmark"],
                    "phases": list(PROFILE_PHASES),
                    "rows": [
                        {
                            "n": row["n"],
                            "engine": row["engine"],
                            "seconds": row["seconds"],
                            "profile": row.get("profile", {}),
                        }
                        for row in rows
                    ],
                },
                indent=2,
            )
            + "\n"
        )

    for row in rows:
        speed = (
            f"{row['speedup']:.2f}x vs baseline {row['baseline_seconds']:.4f}s"
            if row["speedup"]
            else "no baseline"
        )
        cross = (
            f"  {row['speedup_vs_python']:.2f}x vs python"
            if row["engine"] != "python" and row["speedup_vs_python"]
            else ""
        )
        c = row["counters"]
        print(
            f"n={row['n']:>4}  {row['engine']:>6}  "
            f"{row['devices']:>6} devices  "
            f"{row['seconds']:.4f}s  ({speed}){cross}  "
            f"overhead<={c['max_stop_overhead']}/stop"
        )
    for row in stream_rows:
        plan = (
            f"band={row['band_height']:>6} ({row['bands']:>3} bands)"
            if row["mode"] == "stream"
            else "in-memory          "
        )
        print(
            f"n={row['n']:>4}  {row['engine']:>6}  {plan}  "
            f"{row['seconds']:.4f}s  "
            f"peak {row['peak_alloc'] / 1e6:.1f}MB"
        )
    if args.profile:
        header = "  ".join(f"{phase:>9}" for phase in PROFILE_PHASES)
        print("per-phase profile (seconds):")
        print(f"{'n':>6}  {'engine':>6}  {header}")
        for row in rows:
            cells = "  ".join(
                f"{row.get('profile', {}).get(phase, 0.0):>9.4f}"
                for phase in PROFILE_PHASES
            )
            print(f"n={row['n']:>4}  {row['engine']:>6}  {cells}")
    print(f"wrote {args.out}")
    if profile_path is not None:
        print(f"wrote {profile_path}")

    if args.check:
        problems = check_rows(
            rows + stream_rows, overhead_bounds=overhead_bounds
        )
        if problems:
            for p in problems:
                print(f"INVARIANT VIOLATION: {p}", file=sys.stderr)
            return 1
        print("event-heap counter invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
