"""Scanline event-heap micro-benchmark: ``python -m repro.bench.scanline``.

Times the :class:`~repro.core.scanline.ScanlineEngine` alone — front-end
stream construction and CIF parsing excluded, matching the paper's phase
split — on the worst-case poly/diffusion mesh of section 4, and writes a
``BENCH_scanline.json`` report with before/after wall clock per size plus
the event-heap counters from :class:`~repro.core.stats.ScanStats`.

"Before" numbers come from ``benchmarks/results/scanline_baseline.json``,
a committed one-off capture of the pre-event-heap engine on the same
harness; wall-clock speedups are therefore only meaningful on comparable
hardware.  The counters are not: ``--check`` asserts machine-independent
invariants of the event-heap design (every scheduled interval is popped
exactly once, per-stop scheduling overhead is bounded by the number of
tracked layers, never by the active-list population), so CI can run the
benchmark without timing flakiness.  See docs/SCANLINE_PERF.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.scanline import ScanlineEngine
from ..frontend.stream import GeometryStream
from ..tech import NMOS
from ..workloads.mesh import poly_diff_mesh
from .harness import timed

#: Mesh sizes (n lines per direction -> n^2 transistors).  The largest
#: size is where the asymptotic win over the O(stops x active) engine
#: shows; the smaller ones keep the scaling trend visible.
DEFAULT_SIZES = (32, 64, 128, 256)

#: Default number of timed runs per size (best-of).
DEFAULT_REPEATS = 3

#: Committed capture of the pre-event-heap engine, relative to repo root.
BASELINE_PATH = Path("benchmarks") / "results" / "scanline_baseline.json"


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def load_baseline(path: Path | None = None) -> dict[int, float]:
    """Map mesh size -> legacy-engine seconds, or {} if uncaptured."""
    path = path or _repo_root() / BASELINE_PATH
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return {int(row["n"]): float(row["seconds"]) for row in payload["rows"]}


def bench_scanline(
    sizes=DEFAULT_SIZES,
    repeats: int = DEFAULT_REPEATS,
    baseline: dict[int, float] | None = None,
) -> list[dict]:
    """Benchmark each mesh size; returns one JSON-ready row per size."""
    if baseline is None:
        baseline = load_baseline()
    tech = NMOS()
    rows = []
    for n in sizes:
        layout = poly_diff_mesh(n)
        # The engine consumes its stream destructively, so each repeat
        # rebuilds stream and engine OUTSIDE the timer: the measurement
        # covers engine.run alone, not the paper's parse/sort phase.
        seconds = float("inf")
        engine = None
        for _ in range(max(1, repeats)):
            stream = GeometryStream(layout)
            engine = ScanlineEngine(tech)
            seconds = min(seconds, timed(engine.run, stream).seconds)
        stats = engine.stats
        before = baseline.get(n)
        rows.append(
            {
                "n": n,
                "boxes": stats.boxes_in,
                "stops": stats.stops,
                "devices": stats.devices_created,
                "peak_active": stats.peak_active,
                "seconds": seconds,
                "baseline_seconds": before,
                "speedup": (before / seconds) if before else None,
                "tracked_layers": len(engine._heaps),
                "counters": {
                    "heap_pushes": stats.heap_pushes,
                    "heap_pops": stats.heap_pops,
                    "lazy_discards": stats.lazy_discards,
                    "expired": stats.expired,
                    "intervals_scanned": stats.intervals_scanned,
                    "max_stop_overhead": stats.max_stop_overhead,
                },
            }
        )
    return rows


def check_rows(rows: list[dict]) -> list[str]:
    """Machine-independent event-heap invariants; returns violations.

    * conservation: every push is eventually popped, and every pop is
      either a real expiry or a lazy discard of a merge-consumed entry;
    * bounded overhead: at any stop the engine examines at most two
      heap heads per tracked layer beyond the entries it removes, so
      scheduling work per stop is O(layers), not O(active intervals);
    * the aggregate corollary: total examinations are bounded by total
      removals plus that per-stop allowance.
    """
    problems = []
    for row in rows:
        n, c = row["n"], row["counters"]
        layers = row["tracked_layers"]
        if c["heap_pushes"] != c["heap_pops"]:
            problems.append(
                f"n={n}: {c['heap_pushes']} pushes but {c['heap_pops']} pops"
            )
        if c["expired"] + c["lazy_discards"] != c["heap_pops"]:
            problems.append(
                f"n={n}: expired {c['expired']} + lazy {c['lazy_discards']}"
                f" != pops {c['heap_pops']}"
            )
        if c["max_stop_overhead"] > 2 * layers:
            problems.append(
                f"n={n}: max per-stop overhead {c['max_stop_overhead']}"
                f" exceeds 2 x {layers} tracked layers"
            )
        budget = c["heap_pops"] + 2 * layers * row["stops"]
        if c["intervals_scanned"] > budget:
            problems.append(
                f"n={n}: {c['intervals_scanned']} intervals scanned"
                f" exceeds event budget {budget}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.scanline", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--sizes",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=DEFAULT_SIZES,
        help="comma-separated mesh sizes (default %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed runs per size, best-of (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="BENCH_scanline.json",
        help="report path (default %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON (default: the committed capture)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on event-heap counter invariant violations",
    )
    args = parser.parse_args(argv)

    rows = bench_scanline(
        sizes=args.sizes,
        repeats=args.repeats,
        baseline=load_baseline(args.baseline),
    )
    report = {
        "benchmark": "scanline worst-case mesh (engine only)",
        "workload": "poly_diff_mesh: 2n boxes, n^2 transistors",
        "baseline": str(BASELINE_PATH),
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in rows:
        speed = (
            f"{row['speedup']:.2f}x vs baseline {row['baseline_seconds']:.4f}s"
            if row["speedup"]
            else "no baseline"
        )
        c = row["counters"]
        print(
            f"n={row['n']:>4}  {row['devices']:>6} devices  "
            f"{row['seconds']:.4f}s  ({speed})  "
            f"overhead<={c['max_stop_overhead']}/stop"
        )
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows)
        if problems:
            for p in problems:
                print(f"INVARIANT VIOLATION: {p}", file=sys.stderr)
            return 1
        print("event-heap counter invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
