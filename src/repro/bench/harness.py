"""Timing helpers shared by the benchmark modules."""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass


@dataclass
class Timed:
    """Result of timing one callable."""

    result: object
    seconds: float


def timed(fn, *args, **kwargs) -> Timed:
    """Run ``fn`` once under a wall-clock timer.

    The cyclic collector is paused for the timed region (the same policy
    as :mod:`timeit`): extraction allocates hundreds of thousands of
    objects, and letting generational collections land in some runs but
    not others swamps the effect being measured.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        seconds = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return Timed(result=result, seconds=seconds)


def best_of(n: int, fn, *args, **kwargs) -> Timed:
    """Best (minimum) wall-clock of ``n`` runs; result from the last."""
    best = float("inf")
    result = None
    for _ in range(max(1, n)):
        run = timed(fn, *args, **kwargs)
        result = run.result
        best = min(best, run.seconds)
    return Timed(result=result, seconds=best)
