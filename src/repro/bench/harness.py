"""Timing helpers shared by the benchmark modules."""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass


@dataclass
class Timed:
    """Result of timing one callable."""

    result: object
    seconds: float
    #: tracemalloc peak (bytes) over the call, when tracking was on.
    #: Allocator peak, not RSS: deterministic, per-call, and comparable
    #: across modes within one process -- RSS is monotone per process,
    #: so it cannot distinguish a streamed sweep from the in-memory one
    #: that ran before it.
    peak_alloc: "int | None" = None


def timed(fn, *args, track_alloc: bool = False, **kwargs) -> Timed:
    """Run ``fn`` once under a wall-clock timer.

    The cyclic collector is paused for the timed region (the same policy
    as :mod:`timeit`): extraction allocates hundreds of thousands of
    objects, and letting generational collections land in some runs but
    not others swamps the effect being measured.

    With ``track_alloc`` the call also records the tracemalloc peak.
    Tracing slows allocation several-fold, so wall clock and allocator
    peak should come from *separate* runs when both matter: time with
    tracking off, then measure one tracked run and discard its seconds.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    peak: "int | None" = None
    started_tracing = False
    try:
        if track_alloc:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        seconds = time.perf_counter() - start
        if track_alloc:
            _, peak = tracemalloc.get_traced_memory()
    finally:
        if started_tracing:
            tracemalloc.stop()
        if was_enabled:
            gc.enable()
    return Timed(result=result, seconds=seconds, peak_alloc=peak)


def best_of(n: int, fn, *args, **kwargs) -> Timed:
    """Best (minimum) wall-clock of ``n`` runs; result from the last."""
    best = float("inf")
    result = None
    for _ in range(max(1, n)):
        run = timed(fn, *args, **kwargs)
        result = run.result
        best = min(best, run.seconds)
    return Timed(result=result, seconds=best)


def measured(fn, *args, repeats: int = 1, **kwargs) -> Timed:
    """Best-of wall clock plus allocator peak from one extra tracked run.

    The timing repeats run untracked (comparable to any untracked
    capture); a final run under tracemalloc contributes only
    ``peak_alloc``.  The result comes from the tracked run.
    """
    run = best_of(repeats, fn, *args, **kwargs)
    tracked = timed(fn, *args, track_alloc=True, **kwargs)
    return Timed(
        result=tracked.result,
        seconds=run.seconds,
        peak_alloc=tracked.peak_alloc,
    )
