"""Timing helpers shared by the benchmark modules."""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class Timed:
    """Result of timing one callable."""

    result: object
    seconds: float


def timed(fn, *args, **kwargs) -> Timed:
    """Run ``fn`` once under a wall-clock timer."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return Timed(result=result, seconds=time.perf_counter() - start)


def best_of(n: int, fn, *args, **kwargs) -> Timed:
    """Best (minimum) wall-clock of ``n`` runs; result from the last."""
    best = float("inf")
    result = None
    for _ in range(max(1, n)):
        run = timed(fn, *args, **kwargs)
        result = run.result
        best = min(best, run.seconds)
    return Timed(result=result, seconds=best)
