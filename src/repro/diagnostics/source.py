"""Attribution of layout-coordinate findings to CIF symbols.

The scanline checkers see only placed geometry; this index maps a
finding's coordinates back to the symbol call whose expansion produced
the offending artwork (via
:func:`repro.frontend.instantiate.instantiate_with_origins`).  Built
lazily -- attribution only runs over the (few) findings, never over the
geometry stream itself.
"""

from __future__ import annotations

from ..cif.layout import Layout
from ..frontend.instantiate import instantiate_with_origins
from ..geometry import Box
from .model import CheckReport, Diagnostic, SourceRef


class SourceIndex:
    """Per-layer placed boxes with their defining symbol."""

    def __init__(self, layout: Layout, resolution: int = 50) -> None:
        self._layout = layout
        self._resolution = resolution
        self._by_layer: "dict[str, list[tuple[Box, SourceRef]]] | None" = None

    def _index(self) -> dict[str, list[tuple[Box, SourceRef]]]:
        if self._by_layer is None:
            by_layer: dict[str, list[tuple[Box, SourceRef]]] = {}
            refs: dict[tuple[int, tuple[int, ...]], SourceRef] = {}
            for layer, box, symbol, path in instantiate_with_origins(
                self._layout, self._resolution
            ):
                key = (symbol, path)
                ref = refs.get(key)
                if ref is None:
                    name = self._layout.symbol(symbol).name
                    ref = SourceRef(symbol=symbol, name=name, path=path)
                    refs[key] = ref
                by_layer.setdefault(layer, []).append((box, ref))
            self._by_layer = by_layer
        return self._by_layer

    def locate(
        self, layer: "str | None", box: "tuple[int, int, int, int] | None"
    ) -> "SourceRef | None":
        """The source of the smallest placed box touching ``box``.

        Spacing violations flag the *gap* between two shapes, so mere
        edge contact counts as a hit; the smallest toucher wins because
        it is the most specific piece of artwork.
        """
        if box is None:
            return None
        probe = Box(*box)
        best: "tuple[int, SourceRef] | None" = None
        layers = [layer] if layer else list(self._index())
        for name in layers:
            for placed, ref in self._index().get(name, ()):
                if placed.touches(probe):
                    if best is None or placed.area < best[0]:
                        best = (placed.area, ref)
        return best[1] if best else None

    def attribute(self, report: CheckReport) -> CheckReport:
        """``report`` with every located diagnostic carrying a source."""
        out: list[Diagnostic] = []
        for diag in report.diagnostics:
            if diag.source is None and diag.box is not None:
                out.append(diag.located(self.locate(diag.layer, diag.box)))
            else:
                out.append(diag)
        return CheckReport(
            diagnostics=out,
            artifact=report.artifact,
            suppressed=report.suppressed,
        )
