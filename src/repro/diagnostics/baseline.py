"""Baseline suppression: committed lists of known findings.

A baseline file records the fingerprints of findings that are accepted
(legacy artwork, deliberate fixtures) so CI can fail only on *new*
findings.  Fingerprints come from :meth:`Diagnostic.fingerprint`, which
hashes the geometric identity of a finding rather than its message, so
message rewording does not churn baselines.

The file is JSON::

    {
      "version": 1,
      "entries": {
        "<artifact or *>": ["<fingerprint>", ...]
      }
    }

An artifact key of ``"*"`` suppresses the fingerprint in every file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .model import CheckReport

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Known-finding fingerprints, keyed by artifact."""

    entries: dict[str, set[str]] = field(default_factory=dict)

    def covers(self, artifact: "str | None", fingerprint: str) -> bool:
        if fingerprint in self.entries.get("*", ()):
            return True
        if artifact is None:
            return False
        return fingerprint in self.entries.get(artifact, ())

    def add_report(self, report: CheckReport) -> None:
        key = report.artifact or "*"
        bucket = self.entries.setdefault(key, set())
        for diag in report.diagnostics:
            bucket.add(diag.fingerprint())

    def to_json(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "entries": {
                key: sorted(values)
                for key, values in sorted(self.entries.items())
                if values
            },
        }

    def dump(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


def baseline_from_json(data: dict) -> Baseline:
    version = data.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version {version}")
    return Baseline(
        entries={
            key: set(values)
            for key, values in data.get("entries", {}).items()
        }
    )


def load_baseline(path: str) -> Baseline:
    with open(path) as handle:
        return baseline_from_json(json.load(handle))


def write_baseline(path: str, reports: "list[CheckReport]") -> Baseline:
    baseline = Baseline()
    for report in reports:
        baseline.add_report(report)
    with open(path, "w") as handle:
        handle.write(baseline.dump())
    return baseline


def apply_baseline(report: CheckReport, baseline: Baseline) -> CheckReport:
    """``report`` minus baselined findings; counts the suppressions."""
    kept = []
    suppressed = 0
    for diag in report.diagnostics:
        if baseline.covers(report.artifact, diag.fingerprint()):
            suppressed += 1
        else:
            kept.append(diag)
    return CheckReport(
        diagnostics=kept,
        artifact=report.artifact,
        suppressed=report.suppressed + suppressed,
    )


def stale_entries(
    reports: "list[CheckReport]", baseline: Baseline
) -> dict[str, list[str]]:
    """Baseline fingerprints no current finding matches (fixed or moved).

    Only artifacts present in ``reports`` are audited; the wildcard
    bucket is audited against the union of all reports.
    """
    seen_by_artifact: dict[str, set[str]] = {}
    all_seen: set[str] = set()
    for report in reports:
        prints = {d.fingerprint() for d in report.diagnostics}
        all_seen |= prints
        if report.artifact:
            seen_by_artifact[report.artifact] = prints

    stale: dict[str, list[str]] = {}
    for key, fingerprints in baseline.entries.items():
        if key == "*":
            missing = sorted(fingerprints - all_seen)
        elif key in seen_by_artifact:
            missing = sorted(fingerprints - seen_by_artifact[key])
        else:
            continue
        if missing:
            stale[key] = missing
    return stale
