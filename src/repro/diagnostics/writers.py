"""Text, JSON, and SARIF renderings of a :class:`CheckReport`.

The JSON form round-trips (:func:`report_to_json` /
:func:`report_from_json`) so reports can be archived and diffed; the
SARIF form targets code-scanning UIs (one ``run`` per report, layout
coordinates carried in each result's property bag) and also parses back
via :func:`reports_from_sarif` for baseline tooling.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .model import CheckReport, Diagnostic, Severity, SourceRef

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


# ----------------------------------------------------------------------
# text
# ----------------------------------------------------------------------


def format_diagnostic(diag: Diagnostic, artifact: "str | None" = None) -> str:
    """One human-readable line per finding."""
    prefix = f"{artifact}: " if artifact else ""
    where = ""
    if diag.box is not None:
        x1, y1, x2, y2 = diag.box
        where = f" at ({x1},{y1})..({x2},{y2})"
        if diag.layer:
            where += f" on {diag.layer}"
    elif diag.layer:
        where = f" on {diag.layer}"
    source = f" [{diag.source.describe()}]" if diag.source else ""
    return (
        f"{prefix}{diag.severity.value}: [{diag.rule}] "
        f"{diag.message}{where}{source}"
    )


def format_text(report: CheckReport) -> str:
    """The full text report, deterministic order, trailing summary."""
    ordered = report.sorted()
    lines = [
        format_diagnostic(diag, ordered.artifact)
        for diag in ordered.diagnostics
    ]
    summary = (
        f"{len(ordered.errors)} error(s), "
        f"{len(ordered.warnings)} warning(s)"
    )
    if ordered.infos:
        summary += f", {len(ordered.infos)} info(s)"
    if ordered.suppressed:
        summary += f", {ordered.suppressed} suppressed by baseline"
    prefix = f"{ordered.artifact}: " if ordered.artifact else ""
    lines.append(prefix + summary)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------


def diagnostic_to_json(diag: Diagnostic) -> dict:
    data: dict = {
        "severity": diag.severity.value,
        "rule": diag.rule,
        "message": diag.message,
        "tool": diag.tool,
    }
    if diag.layer is not None:
        data["layer"] = diag.layer
    if diag.box is not None:
        data["box"] = list(diag.box)
    if diag.device is not None:
        data["device"] = diag.device
    if diag.net is not None:
        data["net"] = diag.net
    if diag.source is not None:
        data["source"] = {
            "symbol": diag.source.symbol,
            "name": diag.source.name,
            "path": list(diag.source.path),
        }
    return data


def diagnostic_from_json(data: dict) -> Diagnostic:
    source = None
    if "source" in data:
        source = SourceRef(
            symbol=data["source"]["symbol"],
            name=data["source"].get("name"),
            path=tuple(data["source"].get("path", ())),
        )
    box = data.get("box")
    return Diagnostic(
        severity=Severity(data["severity"]),
        rule=data["rule"],
        message=data["message"],
        tool=data.get("tool", "erc"),
        layer=data.get("layer"),
        box=tuple(box) if box is not None else None,
        device=data.get("device"),
        net=data.get("net"),
        source=source,
    )


def report_to_json(report: CheckReport) -> dict:
    ordered = report.sorted()
    return {
        "version": 1,
        "artifact": ordered.artifact,
        "suppressed": ordered.suppressed,
        "diagnostics": [
            diagnostic_to_json(d) for d in ordered.diagnostics
        ],
    }


def report_from_json(data: dict) -> CheckReport:
    return CheckReport(
        diagnostics=[
            diagnostic_from_json(d) for d in data.get("diagnostics", ())
        ],
        artifact=data.get("artifact"),
        suppressed=data.get("suppressed", 0),
    )


def write_json(reports: "CheckReport | Sequence[CheckReport]") -> str:
    if isinstance(reports, CheckReport):
        reports = [reports]
    payload = {
        "version": 1,
        "reports": [report_to_json(r) for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def reports_from_json(text: str) -> list[CheckReport]:
    data = json.loads(text)
    return [report_from_json(entry) for entry in data.get("reports", ())]


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}
_SEVERITY_OF_LEVEL = {v: k for k, v in _SARIF_LEVEL.items()}


def _sarif_result(diag: Diagnostic, artifact: "str | None") -> dict:
    properties = diagnostic_to_json(diag)
    result: dict = {
        "ruleId": diag.rule,
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": diag.message},
        "properties": properties,
    }
    location: dict = {}
    if artifact:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": artifact},
        }
    if diag.source is not None:
        location["logicalLocations"] = [
            {
                "name": diag.source.name or f"symbol-{diag.source.symbol}",
                "kind": "module",
                "fullyQualifiedName": diag.source.describe(),
            }
        ]
    if location:
        result["locations"] = [location]
    return result


def write_sarif(
    reports: "CheckReport | Sequence[CheckReport]",
    *,
    tool_name: str = "repro-lint",
    tool_version: str = "1.0.0",
    rule_help: "dict[str, str] | None" = None,
) -> str:
    """Render one SARIF log; each report becomes one run."""
    if isinstance(reports, CheckReport):
        reports = [reports]
    runs = []
    for report in reports:
        ordered = report.sorted()
        rules = [
            {
                "id": rule,
                "shortDescription": {
                    "text": (rule_help or {}).get(rule, rule)
                },
            }
            for rule in ordered.rule_ids()
        ]
        runs.append(
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": (
                            "https://github.com/paper-repro/ace"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(d, ordered.artifact)
                    for d in ordered.diagnostics
                ],
                "properties": {
                    "artifact": ordered.artifact,
                    "suppressed": ordered.suppressed,
                },
            }
        )
    log = {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": runs}
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


def reports_from_sarif(text: str) -> list[CheckReport]:
    """Parse a SARIF log produced by :func:`write_sarif` back."""
    log = json.loads(text)
    reports = []
    for run in log.get("runs", ()):
        diagnostics = []
        for result in run.get("results", ()):
            properties = result.get("properties")
            if properties and "rule" in properties:
                diagnostics.append(diagnostic_from_json(properties))
            else:  # a foreign SARIF file: recover what is recoverable
                diagnostics.append(
                    Diagnostic(
                        severity=_SEVERITY_OF_LEVEL.get(
                            result.get("level", "warning"),
                            Severity.WARNING,
                        ),
                        rule=result.get("ruleId", "unknown"),
                        message=result.get("message", {}).get("text", ""),
                    )
                )
        run_properties = run.get("properties", {})
        reports.append(
            CheckReport(
                diagnostics=diagnostics,
                artifact=run_properties.get("artifact"),
                suppressed=run_properties.get("suppressed", 0),
            )
        )
    return reports


def iter_diagnostics(
    reports: Iterable[CheckReport],
) -> "Iterable[tuple[str | None, Diagnostic]]":
    for report in reports:
        for diag in report.diagnostics:
            yield report.artifact, diag
