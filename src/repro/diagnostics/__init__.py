"""Shared diagnostics: one model, writers, baselines, attribution.

Every checker in the repository -- the geometric DRC
(:mod:`repro.drc`) and the electrical static checker
(:mod:`repro.analysis.static_check`) -- emits into this framework, so
``repro-lint`` can merge, suppress, and serialize findings uniformly.
"""

from .baseline import (
    Baseline,
    apply_baseline,
    baseline_from_json,
    load_baseline,
    stale_entries,
    write_baseline,
)
from .model import CheckReport, Diagnostic, Severity, SourceRef
from .source import SourceIndex
from .writers import (
    format_diagnostic,
    format_text,
    report_from_json,
    report_to_json,
    reports_from_json,
    reports_from_sarif,
    write_json,
    write_sarif,
)

__all__ = [
    "Baseline",
    "CheckReport",
    "Diagnostic",
    "Severity",
    "SourceIndex",
    "SourceRef",
    "apply_baseline",
    "baseline_from_json",
    "format_diagnostic",
    "format_text",
    "load_baseline",
    "report_from_json",
    "report_to_json",
    "reports_from_json",
    "reports_from_sarif",
    "stale_entries",
    "write_baseline",
    "write_json",
    "write_sarif",
]
