"""The shared diagnostics model every checker emits into.

Both the geometric design-rule checker (:mod:`repro.drc`) and the
electrical static checker (:mod:`repro.analysis.static_check`) produce
:class:`Diagnostic` records collected in a :class:`CheckReport`.  One
model means one set of writers (text, JSON, SARIF), one baseline
suppression format, and one exit-code policy for every lint front-end.

A diagnostic names the *rule* that fired (a stable id such as
``drc.width`` or ``ratio``), the severity, a human message, and -- where
the checker knows them -- the layout coordinates of the offending
artwork, the CIF layer, the net or device index, and a
:class:`SourceRef` pointing at the CIF symbol whose expansion produced
the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"
    #: advisory findings (SARIF "note"): worth seeing, never load-bearing.
    INFO = "info"


@dataclass(frozen=True, slots=True)
class SourceRef:
    """Attribution of a finding to the CIF symbol that produced it.

    ``symbol`` is the CIF symbol number (-1 for top-level geometry);
    ``path`` is the call chain of symbol numbers from the top symbol
    down to (and including) ``symbol``, so nested instantiations stay
    traceable.
    """

    symbol: int
    name: "str | None" = None
    path: "tuple[int, ...]" = ()

    def describe(self) -> str:
        where = f"symbol {self.symbol}" if self.symbol >= 0 else "top level"
        if self.name:
            where += f" ({self.name})"
        if len(self.path) > 1:
            chain = " > ".join(str(n) for n in self.path)
            where += f" via {chain}"
        return where


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One checker finding."""

    severity: Severity
    rule: str
    message: str
    device: "int | None" = None
    net: "int | None" = None
    tool: str = "erc"
    layer: "str | None" = None
    #: layout coordinates (xmin, ymin, xmax, ymax) in CIF centimicrons.
    box: "tuple[int, int, int, int] | None" = None
    source: "SourceRef | None" = None

    def located(self, source: "SourceRef | None") -> "Diagnostic":
        """A copy carrying ``source`` attribution."""
        if source is None:
            return self
        return replace(self, source=source)

    def fingerprint(self) -> str:
        """Stable identity used by baseline suppression.

        Built from the rule and the geometric/structural identity of
        the finding, not the message text, so message rewording does
        not invalidate a committed baseline.
        """
        parts = [self.tool, self.rule, self.layer or "-"]
        if self.box is not None:
            parts.append(",".join(str(v) for v in self.box))
        else:
            parts.append("-")
        parts.append("-" if self.device is None else f"D{self.device}")
        parts.append("-" if self.net is None else f"N{self.net}")
        return ":".join(parts)

    def sort_key(self) -> tuple:
        return (
            self.tool,
            self.rule,
            self.layer or "",
            self.box or (0, 0, 0, 0),
            self.device if self.device is not None else -1,
            self.net if self.net is not None else -1,
            self.message,
        )


@dataclass
class CheckReport:
    """All findings for one artifact (a layout / CIF file)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    artifact: "str | None" = None
    #: number of findings removed by baseline suppression, if applied.
    suppressed: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rule_ids(self) -> list[str]:
        """Distinct rule ids present, sorted."""
        return sorted({d.rule for d in self.diagnostics})

    def extend(self, other: "CheckReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed

    def sorted(self) -> "CheckReport":
        """A copy with diagnostics in deterministic order."""
        return CheckReport(
            diagnostics=sorted(self.diagnostics, key=Diagnostic.sort_key),
            artifact=self.artifact,
            suppressed=self.suppressed,
        )
