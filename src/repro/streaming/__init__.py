"""Out-of-core banded streaming extraction (docs/STREAMING.md).

The streaming pipeline runs the same scanline over the same geometry as
the in-memory extractor, but produces it band by band, retires finished
state to a disk spill store as the sweep descends, and can checkpoint
and resume a partial sweep.  Output is byte-identical to the in-memory
path; the band-equivalence harness in ``tests/streaming/`` enforces it.
"""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .extract import StreamReport, stream_extract
from .spill import SpillStore

__all__ = [
    "CheckpointError",
    "SpillStore",
    "StreamReport",
    "load_checkpoint",
    "save_checkpoint",
    "stream_extract",
]
