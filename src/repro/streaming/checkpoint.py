"""Checkpoint files for banded streaming sweeps.

A checkpoint captures everything a fresh process needs to continue a
partial sweep at the band boundary it was written at:

* an identity block (layout digest + extraction options) so a resume
  against the wrong layout or options fails loudly instead of emitting
  garbage;
* the band plan and the index of the next band to process;
* the scanline host's full suspension state
  (:meth:`~repro.core.scanline.ScanlineEngine.snapshot_state`, which
  embeds the strip engine's state), exact heaps included;
* the emission-order maps accumulated so far (net/device root ->
  location and spill band), which are the only retired state that has
  to stay in RAM.

Geometry never appears here -- the heavy retired payloads live in the
:class:`~repro.streaming.spill.SpillStore`, and the sweep always writes
the band's spill file *before* its checkpoint.  A crash between the two
re-processes the band on resume and overwrites the spill file with
identical bytes, so the commit point is the checkpoint replace.

The file itself reuses the cache-envelope discipline: a checksummed JSON
envelope written via temp file + ``os.replace``.  A SIGKILL at any
moment leaves the previous checkpoint or the new one, never a torn
file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..cif import Layout, write as write_cif
from ..parallel.serialize import canonical_json

#: Bump to invalidate every older checkpoint on load.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """A checkpoint cannot be used to resume this invocation."""


def layout_digest(layout: Layout, resolution: int, lambda_: int) -> str:
    """Identity of one extraction input: artwork + scale options.

    The digest hashes the layout's canonical CIF text, so the same
    artwork parsed from differently formatted sources still matches.
    """
    body = f"{resolution}|{lambda_}|{write_cif(layout)}"
    return hashlib.sha256(body.encode()).hexdigest()


def run_key(digest: str, options: dict) -> str:
    """Spill-store key prefix for one (layout, options) sweep."""
    body = canonical_json({"digest": digest, "options": options})
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def save_checkpoint(path: "str | os.PathLike", state: dict) -> None:
    """Atomically replace ``path`` with a checksummed envelope."""
    body = canonical_json(state)
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "checksum": hashlib.sha256(body.encode()).hexdigest(),
        "state": state,
    }
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    os.replace(tmp, path)


def load_checkpoint(path: "str | os.PathLike") -> dict:
    """Load and verify a checkpoint, raising :class:`CheckpointError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CheckpointError(f"malformed checkpoint {path}")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {envelope.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT}; it was written by an "
            f"incompatible version and cannot be resumed"
        )
    state = envelope.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"checkpoint {path} is missing its state")
    checksum = hashlib.sha256(canonical_json(state).encode()).hexdigest()
    if envelope.get("checksum") != checksum:
        raise CheckpointError(
            f"checkpoint {path} failed its checksum; the file is corrupt"
        )
    return state


def check_identity(state: dict, digest: str, options: dict, path) -> None:
    """Refuse to resume against a different layout or different options."""
    if state.get("digest") != digest:
        raise CheckpointError(
            f"checkpoint {path} was written for a different layout "
            f"(digest {state.get('digest')!r}, expected {digest!r})"
        )
    if state.get("options") != options:
        raise CheckpointError(
            f"checkpoint {path} was written with different extraction "
            f"options ({state.get('options')!r}, expected {options!r}); "
            f"resume with the original options or start a fresh sweep"
        )
