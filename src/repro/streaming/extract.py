"""Out-of-core banded streaming extraction with checkpoint/resume.

:func:`stream_extract` is the streaming twin of
:func:`repro.core.extractor.extract_report`: same circuit, byte-identical
wirelist, but the sweep runs band by band --

1. the :class:`~repro.frontend.bands.BandSource` pulls the geometry
   stream one y-band at a time (optionally on a producer thread);
2. :meth:`ScanlineEngine.advance` sweeps until the next natural stop
   would fall at or below the band floor (floors never force stops, so
   every counter and strip matches the in-memory run exactly);
3. nets and devices no longer reachable from above the scanline are
   retired: their folded payloads leave RAM for the
   :class:`~repro.streaming.spill.SpillStore`, and only their order
   keys (location + spill band) stay resident;
4. with a checkpoint path configured, the host's full suspension state
   is atomically written after the band's spill -- the checkpoint
   replace is the commit point, so a SIGKILL anywhere leaves a sweep
   that resumes to byte-identical output.

Resume rebuilds the parse/instantiate front-end, fast-forwards the
geometry stream past the stops the checkpoint already covers (the
stream is deterministic, so the replayed prefix leaves the stream in
the exact paused state, released labels included), restores the host,
and continues the band loop.

The memory contract (docs/STREAMING.md): peak residency is O(band) --
active intervals, heaps, pending continuations, the current band's
boxes, and per-live-net accumulators -- plus the O(nets) order-key maps
(a few ints per retired net/device), **not** O(chip geometry).  With
``keep_geometry`` a net's artwork stays resident until the net dies, so
a chip-spanning net degrades the bound to O(band + largest live net).
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from io import StringIO
from typing import IO, Callable

from ..cif import Layout, parse
from ..core.scanline import ScanlineEngine
from ..core.stats import PhaseTimer, ScanStats
from ..frontend.bands import BandFeed, BandSource, plan_bands
from ..frontend.stream import GeometryStream
from ..tech import NMOS, Technology
from ..wirelist.model import primitives_for
from . import checkpoint as ckpt
from .emit import emit_wirelist
from .spill import SpillStore

#: Crash-injection hooks for the kill-and-resume harness: SIGKILL the
#: process after N bands have committed, either after the band's
#: checkpoint (default) or in the torn window between spill and
#: checkpoint (``ACE_STREAM_KILL_PHASE=spill``).
KILL_AFTER_ENV = "ACE_STREAM_KILL_AFTER_BANDS"
KILL_PHASE_ENV = "ACE_STREAM_KILL_PHASE"

#: called after each band: (bands_done, total_bands, stats)
ProgressFn = Callable[[int, int, ScanStats], None]


@dataclass
class StreamReport:
    """Outcome of one streaming extraction."""

    stats: ScanStats
    timer: PhaseTimer
    frontend_stats: object
    warnings: list[str]
    nets: int
    devices: int
    bands: int
    band_plan: list
    engine: str
    resumed: bool
    options: dict = field(default_factory=dict)
    text: str | None = None  #: the wirelist, when no ``out`` was given


def stream_extract(
    source: "str | Layout",
    tech: "Technology | None" = None,
    *,
    name: str = "chip",
    out: "IO[str] | None" = None,
    keep_geometry: bool = False,
    resolution: int = 50,
    engine: str = "auto",
    band_height: "int | None" = None,
    boundaries: "list[int] | None" = None,
    spill_dir: "str | os.PathLike | None" = None,
    checkpoint: "str | os.PathLike | None" = None,
    resume: "bool | str" = False,
    prefetch: int = 1,
    strip_consumers: tuple = (),
    progress: "ProgressFn | None" = None,
    profile: bool = False,
) -> StreamReport:
    """Extract ``source`` band by band, writing the wirelist to ``out``.

    Args:
        band_height: uniform band height in layout units (None with no
            ``boundaries``: a single band, i.e. the in-memory schedule
            with streaming bookkeeping).
        boundaries: explicit band floor list (overrides band_height).
        spill_dir: directory for retired-state envelopes; defaults to
            ``<checkpoint>.spill`` next to the checkpoint, else a
            temporary directory that is removed after emission.
        checkpoint: path to write the resume checkpoint at every band
            boundary (and to read it from with ``resume=True``).
        resume: continue the sweep recorded at ``checkpoint`` instead
            of starting over; the layout and options must match.  The
            string ``"auto"`` resumes when a checkpoint file exists and
            starts fresh otherwise -- the right mode for a supervisor
            that relaunches after crashes, since a kill before the
            first checkpoint leaves nothing to resume.
        prefetch: bands the producer thread pulls ahead (0 = pull
            inline on the consumer thread).
        progress: callback after each band, for job-status reporting.
        profile: arm the scanline host's per-phase timers; the
            breakdown rides ``report.stats.profile`` and survives
            checkpoint/resume.
    """
    tech = tech or NMOS()
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if resume == "auto":
        resume = bool(checkpoint is not None and os.path.exists(checkpoint))

    timer = PhaseTimer()
    timer.start("frontend")
    layout = parse(source) if isinstance(source, str) else source
    stream = GeometryStream(layout, resolution=resolution)
    scan = ScanlineEngine(
        tech,
        keep_geometry=keep_geometry,
        timer=timer,
        strip_consumers=strip_consumers,
        engine=engine,
        profile=profile,
    )

    digest = ckpt.layout_digest(layout, resolution, tech.lambda_)
    options = {
        "keep_geometry": bool(keep_geometry),
        "resolution": int(resolution),
        "lambda": int(tech.lambda_),
        "engine": scan.engine_name,
    }
    run_key = ckpt.run_key(digest, options)

    tmp_spill = None
    if spill_dir is None:
        if checkpoint is not None:
            spill_dir = f"{checkpoint}.spill"
        else:
            import tempfile

            tmp_spill = tempfile.TemporaryDirectory(prefix="ace-spill-")
            spill_dir = tmp_spill.name
    spill = SpillStore(spill_dir, run_key)

    net_locs: dict[int, tuple[int, int]] = {}
    dev_locs: dict[int, "tuple[int, int] | None"] = {}
    net_bands: dict[int, int] = {}
    dev_bands: dict[int, int] = {}

    if resume:
        state = ckpt.load_checkpoint(checkpoint)
        ckpt.check_identity(state, digest, options, checkpoint)
        floors = [f if f is None else int(f) for f in state["floors"]]
        start_band = int(state["band"])
        net_locs = {r: (y, nx) for r, y, nx in state["net_locs"]}
        dev_locs = {
            r: tuple(loc) if loc else None for r, loc in state["dev_locs"]
        }
        net_bands = {r: b for r, b in state["net_bands"]}
        dev_bands = {r: b for r, b in state["dev_bands"]}
        scan.restore_state(state["host"])
        # Fast-forward the fresh stream past every stop the restored
        # sweep has consumed.  The final next_top() reproduces the peek
        # the sweep paused on, so cell-expansion state (and with it the
        # released-label prefix) is exactly the pause-time state.
        next_y = scan._y
        t = stream.next_top()
        while t is not None and (next_y is None or t > next_y):
            stream.fetch(t)
            t = stream.next_top()
    else:
        bbox = stream.chip_bbox
        floors = plan_bands(
            bbox.ymax if bbox else None,
            bbox.ymin if bbox else None,
            band_height=band_height,
            boundaries=boundaries,
        )
        start_band = 0

    bands = BandSource(stream, floors, start=start_band, prefetch=prefetch)
    feed = BandFeed(bands)

    try:
        _run_bands(
            scan,
            feed,
            floors,
            start_band,
            spill=spill,
            checkpoint=checkpoint,
            digest=digest,
            options=options,
            net_locs=net_locs,
            dev_locs=dev_locs,
            net_bands=net_bands,
            dev_bands=dev_bands,
            timer=timer,
            progress=progress,
        )
    finally:
        bands.close()

    # Close the sweep the way ScanlineEngine.finish does, minus the
    # in-memory finalize: consumers flush, then emission streams the
    # spilled state back in canonical order.
    timer.start("output")
    for consumer in scan.strip_consumers:
        consumer.finish()

    sink: IO[str] = out if out is not None else StringIO()
    emitted = emit_wirelist(
        sink,
        name,
        nets=scan._nets,
        devs=scan._devs,
        net_locs=net_locs,
        dev_locs=dev_locs,
        net_bands=net_bands,
        dev_bands=dev_bands,
        spill=spill,
        kind_enh=tech.device_name(False),
        kind_dep=tech.device_name(True),
        primitives=primitives_for(tech),
        include_geometry=keep_geometry,
    )
    timer.stop()

    # Warning order matches the in-memory finalize: host warnings, then
    # malformed-device warnings in device order, then unattached labels.
    warnings = list(scan._warnings)
    warnings.extend(emitted.warnings)
    for label in [*scan._unattached, *scan._labels]:
        warnings.append(
            f"label {label.name!r} at ({label.x}, {label.y}) "
            f"matches no conducting geometry"
        )

    if tmp_spill is not None:
        tmp_spill.cleanup()

    return StreamReport(
        stats=scan.stats,
        timer=timer,
        frontend_stats=stream.stats,
        warnings=warnings,
        nets=emitted.nets,
        devices=emitted.devices,
        bands=len(floors),
        band_plan=floors,
        engine=scan.engine_name,
        resumed=resume,
        options={
            **options,
            "band_height": band_height,
            "boundaries": boundaries,
            "stream": True,
        },
        text=sink.getvalue() if out is None else None,
    )


def _run_bands(
    scan: ScanlineEngine,
    feed: BandFeed,
    floors: "list[int | None]",
    start_band: int,
    *,
    spill: SpillStore,
    checkpoint: "str | os.PathLike | None",
    digest: str,
    options: dict,
    net_locs: "dict[int, tuple[int, int]]",
    dev_locs: "dict[int, tuple[int, int] | None]",
    net_bands: "dict[int, int]",
    dev_bands: "dict[int, int]",
    timer: PhaseTimer,
    progress: "ProgressFn | None",
) -> None:
    """The band loop: advance, retire, spill, checkpoint, repeat."""
    kill_after = int(os.environ.get(KILL_AFTER_ENV, 0) or 0)
    kill_phase = os.environ.get(KILL_PHASE_ENV, "checkpoint")
    committed = 0  # bands committed by THIS process

    for band in range(start_band, len(floors)):
        more = scan.advance(feed, floors[band])
        timer.start("output")
        if more:
            live_nets = scan.live_net_roots()
            eng_nets, live_devs = scan.strip_engine.live_roots()
            live_nets |= eng_nets
        else:
            # Exhausted: nothing above the scanline anymore, so the
            # engine's strip-above continuation state is dead too.
            live_nets, live_devs = set(), set()
        dead_locs, dead_recs = scan.strip_engine.retire(live_nets, live_devs)
        net_payload = scan.retire_net_payload(set(dead_locs))
        if net_payload or dead_recs:
            spill.put_band(band, net_payload, dead_recs)
        net_locs.update(dead_locs)
        for root in net_payload:
            net_bands[root] = band
        for root, rec in dead_recs.items():
            dev_locs[root] = rec["loc"]
            dev_bands[root] = band
        if progress is not None:
            progress(band + 1, len(floors), scan.stats)
        if not more:
            break
        committed += 1
        if kill_after and committed >= kill_after and kill_phase == "spill":
            os.kill(os.getpid(), signal.SIGKILL)
        if checkpoint is not None:
            ckpt.save_checkpoint(
                checkpoint,
                {
                    "digest": digest,
                    "options": options,
                    "floors": floors,
                    "band": band + 1,
                    "net_locs": [
                        [r, y, nx] for r, (y, nx) in net_locs.items()
                    ],
                    "dev_locs": [
                        [r, list(loc) if loc else None]
                        for r, loc in dev_locs.items()
                    ],
                    "net_bands": [[r, b] for r, b in net_bands.items()],
                    "dev_bands": [[r, b] for r, b in dev_bands.items()],
                    "host": scan.snapshot_state(),
                },
            )
        if kill_after and committed >= kill_after and kill_phase != "spill":
            os.kill(os.getpid(), signal.SIGKILL)
        timer.start("frontend")
