"""The band spill store: retired sweep state parked on disk.

A banded sweep retires nets and devices the moment nothing above the
scanline can reach them (their union-find roots are final from that
point on).  Retired payloads -- net names and kept geometry, folded
device attribute records -- leave RAM immediately and land here, one
JSON envelope per band, so in-memory state stays O(band) while the
eventual wirelist still comes out byte-identical.

The store is a :class:`~repro.parallel.cache.JsonEnvelopeStore`
subclass, which buys the established durability rules for free: one
file per key under a two-level fan-out, checksummed envelopes, atomic
temp-file + ``os.replace`` writes (a SIGKILL leaves the old band file
or the new one, never a torn one), and trust-nothing validation on read
back.  Keys combine the run key (layout + options digest) with the band
ordinal, so re-processing a band after a crash simply overwrites its
spill file -- retirement is deterministic, which makes the write
idempotent.
"""

from __future__ import annotations

from collections import OrderedDict

from ..geometry import Box
from ..parallel.cache import JsonEnvelopeStore
from ..parallel.serialize import SerializationError


def band_key(run_key: str, band: int) -> str:
    """Spill key for one band of one run."""
    return f"{run_key}{band:08d}"


def net_payload_rows(payload: "dict[int, dict]") -> list:
    """JSON rows for retired net payloads: ``[root, names, geo]``."""
    return [
        [
            root,
            rec.get("names", []),
            [
                [layer, b.xmin, b.ymin, b.xmax, b.ymax]
                for layer, b in rec.get("geo", [])
            ],
        ]
        for root, rec in payload.items()
    ]


def device_payload_rows(records: "dict[int, dict]") -> list:
    """JSON rows for retired device records: ``[root, record]``.

    Gate and terminal net ids are whatever the engine held at retire
    time -- possibly non-root for nets that were still live then.  The
    emitter resolves them through the *final* union-find, which is why
    intermediate resolution timing never shows in the output.
    """
    return [
        [
            root,
            {
                "area": rec["area"],
                "gates": sorted(rec["gates"]),
                "terms": [
                    [net, length] for net, length in rec["terms"].items()
                ],
                "geo": [
                    [b.xmin, b.ymin, b.xmax, b.ymax] for b in rec["geo"]
                ],
                "loc": list(rec["loc"]) if rec["loc"] else None,
                "impl": bool(rec["impl"]),
            },
        ]
        for root, rec in records.items()
    ]


class SpillStore(JsonEnvelopeStore):
    """Per-band retired-state envelopes, plus an emission-time reader.

    Writing happens once per band during the sweep.  Reading happens
    during emission, which walks nets and devices in *wirelist* order --
    roots from different bands interleave, so decoded band payloads are
    kept in a small LRU keyed by band ordinal rather than re-parsed per
    root.
    """

    format_version = 1
    payload_field = "band"

    #: decoded band payloads kept during emission
    reader_cache_size = 8

    def __init__(self, root, run_key: str) -> None:
        super().__init__(root)
        self.run_key = run_key
        self._decoded: "OrderedDict[int, tuple[dict, dict]]" = OrderedDict()

    def validate_payload(self, payload: dict) -> None:
        if not isinstance(payload.get("nets"), list) or not isinstance(
            payload.get("devices"), list
        ):
            raise SerializationError("band payload missing nets/devices")

    # -- sweep side ----------------------------------------------------

    def put_band(
        self,
        band: int,
        net_payload: "dict[int, dict]",
        device_records: "dict[int, dict]",
    ) -> None:
        """Persist one band's retired state (atomic, idempotent)."""
        self.put_payload(
            band_key(self.run_key, band),
            {
                "band": band,
                "nets": net_payload_rows(net_payload),
                "devices": device_payload_rows(device_records),
            },
        )

    # -- emission side -------------------------------------------------

    def _band(self, band: int) -> "tuple[dict, dict]":
        cached = self._decoded.get(band)
        if cached is not None:
            self._decoded.move_to_end(band)
            return cached
        payload = self.get_payload(band_key(self.run_key, band))
        if payload is None:
            raise SerializationError(
                f"spill store is missing band {band} for run "
                f"{self.run_key}; the spill directory and checkpoint "
                f"no longer describe the same sweep"
            )
        nets = {
            int(root): {
                "names": list(names),
                "geo": [
                    (layer, Box(x1, y1, x2, y2))
                    for layer, x1, y1, x2, y2 in geo
                ],
            }
            for root, names, geo in payload["nets"]
        }
        devices = {
            int(root): {
                "area": int(rec["area"]),
                "gates": list(rec["gates"]),
                "terms": {
                    int(net): int(length) for net, length in rec["terms"]
                },
                "geo": [
                    Box(x1, y1, x2, y2) for x1, y1, x2, y2 in rec["geo"]
                ],
                "loc": tuple(rec["loc"]) if rec["loc"] else None,
                "impl": bool(rec["impl"]),
            }
            for root, rec in payload["devices"]
        }
        decoded = (nets, devices)
        self._decoded[band] = decoded
        while len(self._decoded) > self.reader_cache_size:
            self._decoded.popitem(last=False)
        return decoded

    def net_payload(self, band: int, root: int) -> "dict | None":
        """A retired net's names/geometry payload, or None if bare."""
        return self._band(band)[0].get(root)

    def device_record(self, band: int, root: int) -> dict:
        """A retired device's folded attribute record."""
        return self._band(band)[1][root]
