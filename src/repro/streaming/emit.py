"""Incremental wirelist emission from retired (spilled) sweep state.

The in-memory pipeline materializes a full :class:`Circuit`, converts
it to a :class:`Wirelist`, and renders that
(:mod:`repro.wirelist.writer`).  A streamed sweep never holds the whole
circuit: at the end of the sweep everything has been retired, and what
remains in RAM are the order-key maps (net/device root -> location and
spill band) plus the union-finds.  This module walks those maps in
canonical wirelist order, pages each root's payload in from the
:class:`~repro.streaming.spill.SpillStore`, and writes the flat
single-DefPart format of Figure 3-4 directly to the output stream.

Byte identity with ``write_wirelist(to_wirelist(circuit, ...))`` is the
hard contract (the band-equivalence harness enforces it on every golden
and fuzzed layout), so every formatting quirk of the in-memory path is
reproduced deliberately: ``N<i>``-then-aliases name lists with
first-occurrence dedup, ``(Location x y)`` suppressed only for ``None``,
the two-space ``(Local  )`` of an empty chip, gate/terminal resolution
through the *final* union-find, and malformed-transistor warnings in
device order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO

from ..core.sizing import size_device
from ..core.unionfind import UnionFind
from ..wirelist.model import PRIMITIVE_PARTS
from ..wirelist.writer import _num, geometry_to_cif
from .spill import SpillStore

#: The flat format indents every body line one space (single DefPart
#: whose name matches the wirelist).
_INDENT = " "


@dataclass
class EmitResult:
    """What emission learned while writing."""

    nets: int = 0
    devices: int = 0
    #: malformed-transistor warnings, in device order
    warnings: list = field(default_factory=list)


def emit_wirelist(
    out: "IO[str]",
    name: str,
    *,
    nets: UnionFind,
    devs: UnionFind,
    net_locs: "dict[int, tuple[int, int]]",
    dev_locs: "dict[int, tuple[int, int] | None]",
    net_bands: "dict[int, int]",
    dev_bands: "dict[int, int]",
    spill: SpillStore,
    kind_enh: str,
    kind_dep: str,
    include_geometry: bool,
    primitives: "dict | None" = None,
) -> EmitResult:
    """Write the flat wirelist for a fully retired sweep.

    ``net_locs``/``dev_locs`` hold every retired root's folded location
    ``(ymax, -xmin)``; ``net_bands``/``dev_bands`` say which spill band
    holds a root's heavy payload (roots with no names and no kept
    geometry have no spill entry at all).
    """
    result = EmitResult()
    net_find = nets.find
    dev_find = devs.find

    # Canonical net order: topmost, then leftmost, then root id -- the
    # same sort the engines' net_order() performs at finalize.
    roots = sorted(
        net_locs, key=lambda r: (-net_locs[r][0], -net_locs[r][1], r)
    )
    index_of = {root: i + 1 for i, root in enumerate(roots)}
    result.nets = len(roots)

    out.write(f'(DefPart "{name}"\n')
    for kind, exports in (primitives or PRIMITIVE_PARTS).items():
        out.write(f" (DefPart {kind} (Export {' '.join(exports)}))\n")

    # -- devices -------------------------------------------------------

    dev_order = sorted(
        dev_locs,
        key=lambda r: (
            (-dev_locs[r][0], -dev_locs[r][1]) if dev_locs[r] else (0, 0),
            r,
        ),
    )
    result.devices = len(dev_order)
    for i, root in enumerate(dev_order):
        rec = spill.device_record(dev_bands[root], dev_find(root))
        # Terminal and gate ids were frozen at retire time, possibly
        # before their nets stopped merging; resolve through the final
        # union-find exactly as the in-memory finalize does.
        terms: dict[int, int] = {}
        for net, length in rec["terms"].items():
            idx = index_of.get(net_find(net))
            if idx is not None:
                terms[idx] = terms.get(idx, 0) + length
        gate_roots = {net_find(g) for g in rec["gates"]}
        gate_indices = [index_of[g] for g in gate_roots if g in index_of]
        if len(gate_indices) > 1:
            gate_indices.sort()
        sized = size_device(rec["area"], terms)
        loc = rec["loc"]
        location = (-loc[1], loc[0]) if loc else None
        gate = gate_indices[0] if gate_indices else None

        kind = kind_dep if rec["impl"] else kind_enh
        out.write(f"{_INDENT}(Part {kind} (InstName D{i})")
        if location:
            out.write(f" (Location {location[0]} {location[1]})")
        out.write("\n")
        gate_name = f"N{gate}" if gate else None
        source_name = f"N{sized.source}" if sized.source else None
        drain_name = f"N{sized.drain}" if sized.drain else None
        out.write(
            f"{_INDENT} (T Gate {gate_name or 'NONE'})"
            f" (T Source {source_name or 'NONE'})"
            f" (T Drain {drain_name or 'NONE'})\n"
        )
        out.write(
            f"{_INDENT} (Channel (Length {_num(sized.length)}) "
            f"(Width {_num(sized.width)})"
        )
        if include_geometry and rec["geo"]:
            cif = geometry_to_cif(
                [("__channel__", box) for box in rec["geo"]],
                channel_layer=True,
            )
            out.write(f'\n{_INDENT}  ( CIF " {cif} ")')
        out.write(")")
        out.write(")\n")

        if sized.source is None or sized.drain is None or len(
            gate_indices
        ) != 1:
            result.warnings.append(
                f"malformed transistor at {location}: "
                f"{len(gate_indices)} gate nets, {len(terms)} terminals"
            )

    # -- nets ----------------------------------------------------------

    for i, root in enumerate(roots):
        band = net_bands.get(root)
        payload = (
            spill.net_payload(band, root) if band is not None else None
        )
        names = [f"N{i + 1}"]
        if payload:
            seen: set[str] = set()
            names.extend(
                n
                for n in payload["names"]
                if not (n in seen or seen.add(n))
            )
        y, nx = net_locs[root]
        out.write(f"{_INDENT}(Net {' '.join(names)}")
        out.write(f" (Location {-nx} {y})")
        if include_geometry and payload and payload["geo"]:
            cif = geometry_to_cif(payload["geo"])
            out.write(f'\n{_INDENT} ( CIF " {cif} ")')
        out.write(")\n")

    out.write(
        f"{_INDENT}(Local "
        f"{' '.join(f'N{i + 1}' for i in range(len(roots)))} )\n"
    )
    out.write(")\n")
    return result
