"""The content-addressed result cache: (payload digest, options) -> result.

Two layers:

* a bounded in-memory LRU for the hot set (a daemon serving repeated
  submissions of the same layout answers from here without touching
  disk), and
* optionally, a :class:`~repro.parallel.cache.JsonEnvelopeStore` on
  disk, reusing the fragment cache's trust-nothing envelope discipline
  (format version, key echo, payload checksum, atomic replace), so
  results survive daemon restarts and a corrupted entry is re-extracted
  rather than served.

The key deliberately excludes ``jobs`` and ``timeout``: how a result
was computed cannot change its bytes (the equivalence guarantees of
:mod:`repro.parallel`), so a serial submission hits a result cached by
a parallel one.  Everything that *can* change the bytes — payload
digest, wirelist name, lambda, flat/hierarchical, lint, geometry — is
in :meth:`repro.service.jobs.JobOptions.cache_facet`.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict

from ..parallel.cache import JsonEnvelopeStore
from ..parallel.serialize import SerializationError, canonical_json
from .jobs import JobOptions

#: Bump to orphan every previously stored result envelope.
RESULT_FORMAT_VERSION = 1


def payload_digest(cif_text: str) -> str:
    """Content digest of a submitted CIF payload."""
    return hashlib.sha256(cif_text.encode("utf-8")).hexdigest()


def result_cache_key(digest: str, options: JobOptions) -> str:
    """The cache key for one (payload, options) submission."""
    body = canonical_json(
        {
            "format": RESULT_FORMAT_VERSION,
            "payload": digest,
            "options": options.cache_facet(),
        }
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class ResultStore(JsonEnvelopeStore):
    """On-disk half of the result cache."""

    format_version = RESULT_FORMAT_VERSION
    payload_field = "result"

    def validate_payload(self, payload: dict) -> None:
        if not isinstance(payload.get("wirelist"), str):
            raise SerializationError("result payload missing wirelist text")
        if not isinstance(payload.get("diagnostics"), list):
            raise SerializationError("result payload missing diagnostics")


class ResultCache:
    """Memory-over-disk result cache with one combined stats view.

    The disk half is a :class:`JsonEnvelopeStore` and may be *shared*:
    every shard of a daemon fleet can point at the same directory
    (atomic replace + lock-free reads make concurrent access safe), so
    a result extracted by one shard is a disk hit on every other, and a
    cold daemon warm-starts by :meth:`prime`-ing its memory LRU from
    the store's most recently used entries.  ``max_entries`` /
    ``max_bytes`` / ``ttl_seconds`` bound the shared store
    (LRU-by-mtime eviction, age expiry) — see ``repro.parallel.cache``.
    """

    def __init__(
        self,
        root: "str | os.PathLike | None" = None,
        *,
        memory_entries: int = 256,
        max_entries: "int | None" = None,
        max_bytes: "int | None" = None,
        ttl_seconds: "float | None" = None,
    ) -> None:
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._disk = (
            ResultStore(
                root,
                max_entries=max_entries,
                max_bytes=max_bytes,
                ttl_seconds=ttl_seconds,
            )
            if root is not None
            else None
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.primed = 0

    def get(self, key: str) -> "dict | None":
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return cached
        if self._disk is not None:
            payload = self._disk.get_payload(key)
            if payload is not None:
                with self._lock:
                    self._remember(key, payload)
                    self.hits += 1
                return payload
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, result: dict) -> None:
        with self._lock:
            self._remember(key, result)
            self.stores += 1
        if self._disk is not None:
            self._disk.put_payload(key, result)

    def _remember(self, key: str, result: dict) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def prime(self, limit: "int | None" = None) -> int:
        """Warm-start: load the disk store's hottest entries into memory.

        Returns how many entries were primed.  A daemon joining a fleet
        calls this before taking traffic so its first requests for the
        fleet's working set are memory hits, not disk reads (or, on a
        truly cold fleet, extractions).  Validation is the store's
        usual trust-nothing read, so a corrupt entry primes nothing.
        """
        if self._disk is None:
            return 0
        limit = self.memory_entries if limit is None else limit
        primed = 0
        for key in self._disk.recent_keys(min(limit, self.memory_entries)):
            payload = self._disk.get_payload(key)
            if payload is None:
                continue
            with self._lock:
                self._remember(key, payload)
            primed += 1
        with self._lock:
            self.primed += primed
        return primed

    def stats_snapshot(self) -> dict:
        with self._lock:
            snapshot = {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "primed": self.primed,
                "memory_entries": len(self._memory),
                "persistent": self._disk is not None,
            }
        if self._disk is not None:
            snapshot["disk"] = {
                "hits": self._disk.stats.hits,
                "misses": self._disk.stats.misses,
                "invalid": self._disk.stats.invalid,
                "stores": self._disk.stats.stores,
                "expired": self._disk.stats.expired,
                "evicted": self._disk.stats.evicted,
            }
        return snapshot
