"""The extraction engine: what a worker thread actually runs.

The engine owns everything worth keeping warm between requests — the
state a one-shot CLI pays to rebuild on every invocation:

* one :class:`~repro.hext.incremental.IncrementalExtractor` per
  technology, so the cross-run window memo recognizes windows any
  earlier request already extracted (two different chips sharing a
  standard cell pay for it once);
* one :class:`~repro.parallel.pool.PersistentPool` per (technology,
  worker count), so parallel hierarchical jobs reuse live worker
  processes instead of forking a pool per request;
* the :class:`~repro.service.cache.ResultCache`, keyed by (payload
  digest, option facet), which short-circuits repeat submissions
  entirely.

Cancellation is cooperative at two granularities.  Between stages
(parse / extract / wirelist / lint) every job checks its cancel event
and deadline.  Inside flat extraction a :class:`CancellationProbe`
rides the scanline as a strip consumer, so even a single huge chip
notices cancellation mid-sweep; hierarchical extraction is only
interruptible between stages (the window memo must never absorb a
half-extracted fragment).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from ..cif import parse
from ..core import extract_report
from ..core.scanline import StripConsumer
from ..diagnostics import SourceIndex
from ..diagnostics.writers import diagnostic_to_json
from ..hext.incremental import IncrementalExtractor
from ..hext.wirelist import to_hierarchical_wirelist
from ..parallel import PersistentPool, resolve_jobs
from ..tech import NMOS, Technology, compile_deck, deck_by_name
from ..wirelist import to_wirelist, write_wirelist
from .cache import ResultCache
from .jobs import Job
from .metrics import Metrics

if TYPE_CHECKING:
    from ..cif import Layout
    from ..drc import DrcChecker


class JobCancelled(Exception):
    """The job's cancel event was observed."""


class JobTimeout(Exception):
    """The job's deadline passed before it finished."""


#: How many strips the probe lets pass between checks; strip processing
#: is microseconds, so this keeps overhead invisible while bounding the
#: reaction latency to well under a second on any real layout.
PROBE_STRIDE = 64


class CancellationProbe(StripConsumer):
    """A strip consumer that aborts the sweep for a cancelled/late job."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self._countdown = PROBE_STRIDE

    def observe_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: "dict[str, list[tuple[int, int]]]",
        channels: "list[tuple[int, int, int]]",
    ) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = PROBE_STRIDE
        _raise_if_aborted(self.job)

    def finish(self) -> None:
        pass


def _raise_if_aborted(job: Job) -> None:
    if job.cancel_event.is_set():
        raise JobCancelled(f"job {job.ident} cancelled")
    if job.deadline is not None and time.monotonic() > job.deadline:
        raise JobTimeout(f"job {job.ident} exceeded its deadline")


class ExtractionEngine:
    """Turns jobs into result payloads, keeping hot state warm."""

    def __init__(
        self,
        *,
        result_cache_dir: "str | None" = None,
        memory_cache_entries: int = 256,
        cache_max_entries: "int | None" = None,
        cache_max_bytes: "int | None" = None,
        cache_ttl: "float | None" = None,
        prime_cache: int = 0,
        default_timeout: "float | None" = None,
        resolution: int = 50,
        metrics: "Metrics | None" = None,
        engine: str = "auto",
        profile: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self.results = ResultCache(
            result_cache_dir,
            memory_entries=memory_cache_entries,
            max_entries=cache_max_entries,
            max_bytes=cache_max_bytes,
            ttl_seconds=cache_ttl,
        )
        if prime_cache:
            # Warm-start: a daemon joining a fleet that shares a result
            # store serves the fleet's working set from memory at once.
            self.metrics.count(
                "cache_primed", self.results.prime(prime_cache)
            )
        self.default_timeout = default_timeout
        self.resolution = resolution
        # Strip-batch engine for every extraction this daemon runs —
        # results are byte-identical across engines, so the engine name
        # stays out of the result-cache facet on purpose.
        self.engine = engine
        # Arm the scanline host's per-phase profiler on flat jobs so
        # /metrics can decompose the extract stage (scan_* rows); a
        # handful of clock reads per stop, invisible next to the sweep.
        self.profile = profile
        self._state_lock = threading.Lock()
        self._incremental: "dict[tuple[str, int], IncrementalExtractor]" = {}
        self._memo_locks: "dict[tuple[str, int], threading.Lock]" = {}
        self._pools: "dict[tuple[str, int, int], PersistentPool]" = {}

    # -- warm state ------------------------------------------------------

    def _tech_for(
        self, lambda_: "int | None", deck: str = "nmos"
    ) -> Technology:
        if deck == "nmos":
            return NMOS(lambda_) if lambda_ is not None else NMOS()
        return compile_deck(
            deck_by_name(deck, lambda_) if lambda_ else deck_by_name(deck)
        )

    @staticmethod
    def _tech_key(tech: Technology) -> "tuple[str, int]":
        """Warm-state key: decks with equal lambda must never share."""
        deck = tech.deck
        return (deck.name if deck is not None else "nmos", tech.lambda_)

    def _incremental_for(
        self, tech: Technology
    ) -> "tuple[IncrementalExtractor, threading.Lock]":
        with self._state_lock:
            key = self._tech_key(tech)
            extractor = self._incremental.get(key)
            if extractor is None:
                extractor = IncrementalExtractor(
                    tech, resolution=self.resolution, engine=self.engine
                )
                self._incremental[key] = extractor
                self._memo_locks[key] = threading.Lock()
            return extractor, self._memo_locks[key]

    def _pool_for(
        self, tech: Technology, jobs: "int | None"
    ) -> "PersistentPool | None":
        workers = resolve_jobs(jobs)
        if workers <= 1:
            return None
        with self._state_lock:
            key = (*self._tech_key(tech), workers)
            pool = self._pools.get(key)
            if pool is None:
                pool = PersistentPool(
                    tech, self.resolution, workers, self.engine
                )
                self._pools[key] = pool
            return pool

    def memo_snapshot(self) -> dict:
        """Warm-state gauges for the metrics plane."""
        with self._state_lock:
            return {
                "window_memos": {
                    f"{deck}:{lambda_}": len(extractor)
                    for (deck, lambda_), extractor in self._incremental.items()
                },
                "worker_pools": [
                    {"deck": deck, "lambda": lam, "workers": workers}
                    for (deck, lam, workers) in self._pools
                ],
            }

    def prune_memos(self) -> int:
        """Drop memo entries unused by each technology's latest run."""
        with self._state_lock:
            extractors = list(self._incremental.items())
            locks = dict(self._memo_locks)
        removed = 0
        for key, extractor in extractors:
            with locks[key]:
                removed += extractor.prune()
        return removed

    def close(self) -> None:
        with self._state_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    # -- the job body ----------------------------------------------------

    def lookup(self, cache_key: str) -> "dict | None":
        """Result-cache probe; feeds the hit/miss counters."""
        cached = self.results.get(cache_key)
        if cached is not None:
            self.metrics.count("cache_hits")
        else:
            self.metrics.count("cache_misses")
        return cached

    def run_job(self, job: Job) -> dict:
        """Execute ``job`` to a result payload and cache it.

        Raises :class:`JobCancelled` / :class:`JobTimeout` when the job
        aborts cooperatively; any other exception is an extraction
        failure the worker records verbatim.
        """
        options = job.options
        tech = self._tech_for(options.lambda_, options.deck)
        probe = CancellationProbe(job)

        self._enter_stage(job, "parse")
        started = time.perf_counter()
        layout = parse(job.cif)
        self.metrics.observe_stage("parse", time.perf_counter() - started)

        if options.stream:
            return self._run_streaming(job, tech, layout, probe)

        self._enter_stage(job, "extract")
        started = time.perf_counter()
        if options.hext:
            extractor, memo_lock = self._incremental_for(tech)
            pool = self._pool_for(tech, options.jobs)
            with memo_lock:
                hext_result = extractor.extract(layout, pool=pool)
                circuit = hext_result.circuit
            self.metrics.fold_hext_stats(hext_result.stats)
        else:
            drc_inline = self._drc_checker(tech) if options.lint else None
            consumers: "tuple[StripConsumer, ...]" = (
                (probe, drc_inline) if drc_inline is not None else (probe,)
            )
            report = extract_report(
                layout,
                tech,
                keep_geometry=options.keep_geometry,
                resolution=self.resolution,
                strip_consumers=consumers,
                engine=self.engine,
                profile=self.profile,
            )
            circuit = report.circuit
            self.metrics.fold_scan_stats(report.stats)
        self.metrics.observe_stage("extract", time.perf_counter() - started)

        self._enter_stage(job, "wirelist")
        started = time.perf_counter()
        if options.hext:
            wirelist = to_hierarchical_wirelist(hext_result, name=options.name)
        else:
            wirelist = to_wirelist(
                circuit,
                name=options.name,
                include_geometry=options.keep_geometry,
                tech=tech,
            )
        text = write_wirelist(wirelist)
        self.metrics.observe_stage("wirelist", time.perf_counter() - started)

        diagnostics: "list[dict]" = []
        lint_errors = 0
        if options.lint:
            self._enter_stage(job, "lint")
            started = time.perf_counter()
            if options.hext:
                # The hierarchical extractor works window by window; the
                # DRC needs the whole-chip strip feed, so one flat pass.
                drc = self._drc_checker(tech)
                extract_report(
                    layout,
                    tech,
                    resolution=self.resolution,
                    strip_consumers=(probe, drc),
                    engine=self.engine,
                )
            else:
                drc = drc_inline
            lint_report = drc.report(artifact=options.name)
            if lint_report.diagnostics:
                lint_report = SourceIndex(layout).attribute(lint_report)
            diagnostics = [
                diagnostic_to_json(d) for d in lint_report.diagnostics
            ]
            lint_errors = len(lint_report.errors)
            self.metrics.observe_stage("lint", time.perf_counter() - started)

        _raise_if_aborted(job)
        result = {
            "name": options.name,
            "digest": job.digest,
            "wirelist": text,
            "diagnostics": diagnostics,
            "lint_errors": lint_errors,
            "warnings": list(circuit.warnings),
            "devices": len(circuit.devices),
            "nets": len(circuit.nets),
        }
        self.results.put(job.cache_key, result)
        self.metrics.count("cache_stores")
        return result

    def _run_streaming(
        self,
        job: Job,
        tech: Technology,
        layout: "Layout",
        probe: CancellationProbe,
    ) -> dict:
        """The streaming job body: banded sweep, incremental emission.

        The streamed wirelist is byte-identical to the in-memory one, so
        the result payload has the same shape and the same cache key as
        a flat job's — a streamed submission can be served from (and
        populate) the same cache entry.  Band progress is surfaced two
        ways: the job's ``stage`` while running, and the live
        ``streaming`` gauge in ``GET /metrics``.
        """
        from ..streaming import stream_extract

        options = job.options
        self._enter_stage(job, "extract")
        self.metrics.count("stream_jobs")
        started = time.perf_counter()
        drc_inline = self._drc_checker(tech) if options.lint else None
        consumers: "tuple[StripConsumer, ...]" = (
            (probe, drc_inline) if drc_inline is not None else (probe,)
        )

        def observe_band(band: int, bands: int, stats: object) -> None:
            job.stage = f"extract band {band}/{bands}"
            self.metrics.stream_progress(job.ident, band, bands)

        try:
            report = stream_extract(
                layout,
                tech,
                name=options.name,
                keep_geometry=options.keep_geometry,
                resolution=self.resolution,
                engine=self.engine,
                band_height=options.band_height,
                strip_consumers=consumers,
                progress=observe_band,
                profile=self.profile,
            )
        finally:
            self.metrics.stream_finished(job.ident)
        self.metrics.fold_scan_stats(report.stats)
        # Streaming emits the wirelist during the sweep, so extract and
        # wirelist are one stage here.
        self.metrics.observe_stage("extract", time.perf_counter() - started)

        diagnostics: "list[dict]" = []
        lint_errors = 0
        if options.lint:
            self._enter_stage(job, "lint")
            started = time.perf_counter()
            lint_report = drc_inline.report(artifact=options.name)
            if lint_report.diagnostics:
                lint_report = SourceIndex(layout).attribute(lint_report)
            diagnostics = [
                diagnostic_to_json(d) for d in lint_report.diagnostics
            ]
            lint_errors = len(lint_report.errors)
            self.metrics.observe_stage("lint", time.perf_counter() - started)

        _raise_if_aborted(job)
        result = {
            "name": options.name,
            "digest": job.digest,
            "wirelist": report.text,
            "diagnostics": diagnostics,
            "lint_errors": lint_errors,
            "warnings": list(report.warnings),
            "devices": report.devices,
            "nets": report.nets,
        }
        self.results.put(job.cache_key, result)
        self.metrics.count("cache_stores")
        return result

    def _drc_checker(self, tech: Technology) -> "DrcChecker":
        from ..drc import DrcChecker

        return DrcChecker(tech)

    def _enter_stage(self, job: Job, stage: str) -> None:
        job.stage = stage
        _raise_if_aborted(job)
