"""Command-line front ends: ``repro-serve`` and ``repro-submit``.

``repro-serve`` runs the daemon in the foreground and drains cleanly on
SIGTERM/SIGINT: admission closes immediately, every accepted job
finishes (bounded by ``--drain-grace``), then the process exits 0 — or
2 when the grace period expired with work still in flight.

``repro-submit`` is the one-shot client: submit a CIF file (inline by
default, by path with ``--by-path`` when client and daemon share a
filesystem), block until the wirelist is ready, and print it — the same
contract as ``ace-extract``, minus the cold start.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import types

from ..cli import add_version_argument
from ..core.stripengine import (
    ENGINE_CHOICES,
    EngineUnavailable,
    resolve_engine,
)
from .client import JobFailed, ServiceClient, ServiceError
from .server import DEFAULT_PORT, ExtractionService, ServiceConfig


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived extraction daemon: JSON job API over "
        "HTTP with a result cache, warm window memo, and metrics plane.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 binds an ephemeral port (default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="extraction worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=64,
        metavar="N",
        help="job queue capacity before 429 backpressure "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--result-cache",
        metavar="DIR",
        help="persist results on disk here (default: memory only); "
        "several daemons may share one directory (the fleet's shared "
        "artifact store)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="evict the disk result store LRU-first beyond N entries",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="evict the disk result store LRU-first beyond this size",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire disk result entries older than this",
    )
    parser.add_argument(
        "--prime-cache",
        type=int,
        default=0,
        metavar="N",
        help="warm-start: preload the N most recently used disk "
        "results into memory before serving (default %(default)s)",
    )
    parser.add_argument(
        "--shard-id",
        default=None,
        metavar="NAME",
        help="fleet shard identity, echoed in /healthz and /metrics "
        "(set by repro-fleet; default: solo daemon)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="default per-job timeout (default %(default)s)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight jobs at shutdown (default %(default)s)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="strip-batch engine for every extraction this daemon runs "
        "(default %(default)s: numpy when importable).  Results are "
        "byte-identical across engines, so the choice never splits the "
        "result cache.",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress structured logs"
    )
    return parser


def serve_main(argv: "list[str] | None" = None) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        engine = resolve_engine(args.engine)
    except EngineUnavailable as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    service = ExtractionService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_capacity=args.queue,
            result_cache_dir=args.result_cache,
            cache_max_entries=args.cache_max_entries,
            cache_max_bytes=args.cache_max_bytes,
            cache_ttl=args.cache_ttl,
            prime_cache=args.prime_cache,
            shard=args.shard_id,
            default_timeout=args.timeout,
            drain_grace=args.drain_grace,
            quiet=args.quiet,
            engine=engine,
        )
    )
    stop = threading.Event()

    def _handle(signum: int, frame: "types.FrameType | None") -> None:
        service.log(event="signal", signal=signal.Signals(signum).name)
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    service.start()
    stop.wait()
    clean = service.drain()
    return 0 if clean else 2


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit CIF layouts to a running extraction daemon "
        "and print the wirelist.",
    )
    add_version_argument(parser)
    parser.add_argument("cif", help="input CIF file")
    parser.add_argument(
        "--host", default="127.0.0.1", help="daemon host (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="daemon port (default %(default)s)",
    )
    parser.add_argument(
        "-o", "--output", help="wirelist output file (default: stdout)"
    )
    parser.add_argument(
        "--hierarchical",
        action="store_true",
        help="hierarchical extraction (HEXT) with the daemon's warm memo",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan hierarchical window extraction over N worker "
        "processes daemon-side (0 = one per CPU)",
    )
    parser.add_argument(
        "--lambda",
        dest="lambda_",
        type=int,
        default=None,
        metavar="CENTIMICRONS",
        help="process lambda in centimicrons (default 250)",
    )
    parser.add_argument(
        "--deck",
        default=None,
        metavar="NAME",
        help="builtin technology deck the daemon extracts under "
        "(nmos, cmos; default nmos)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the design-rule checker; diagnostics go to stderr",
    )
    parser.add_argument(
        "--geometry",
        action="store_true",
        help="include per-net and per-device geometry (flat mode only)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout enforced daemon-side",
    )
    parser.add_argument(
        "--wait",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="how long to poll before giving up (default %(default)s)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry the submission up to N times on 429/503 "
        "backpressure or connection failure, honoring Retry-After "
        "with jittered exponential backoff (default %(default)s)",
    )
    parser.add_argument(
        "--by-path",
        action="store_true",
        help="send the file path instead of its contents (daemon must "
        "share the filesystem)",
    )
    return parser


def submit_main(argv: "list[str] | None" = None) -> int:
    args = build_submit_parser().parse_args(argv)
    client = ServiceClient(
        args.host, args.port, timeout=args.wait + 10.0, retries=args.retries
    )
    options: dict = {"name": args.cif.rsplit("/", 1)[-1]}
    if args.hierarchical:
        options["hext"] = True
    if args.jobs is not None:
        options["jobs"] = args.jobs
    if args.lambda_ is not None:
        options["lambda"] = args.lambda_
    if args.deck is not None:
        options["deck"] = args.deck
    if args.lint:
        options["lint"] = True
    if args.geometry:
        options["keep_geometry"] = True
    if args.timeout is not None:
        options["timeout"] = args.timeout

    try:
        if args.by_path:
            result = client.extract(
                path=args.cif, wait_timeout=args.wait, **options
            )
        else:
            with open(args.cif, "r", encoding="utf-8") as handle:
                text = handle.read()
            result = client.extract(
                text, wait_timeout=args.wait, **options
            )
    except JobFailed as exc:
        print(f"repro-submit: job failed: {exc}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError, OSError) as exc:
        print(f"repro-submit: {exc}", file=sys.stderr)
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result["wirelist"])
    else:
        sys.stdout.write(result["wirelist"])
    for warning in result.get("warnings", ()):
        print(f"warning: {warning}", file=sys.stderr)
    for diag in result.get("diagnostics", ()):
        severity = diag.get("severity", "warning")
        rule = diag.get("rule", "?")
        message = diag.get("message", "")
        print(f"{severity}: [{rule}] {message}", file=sys.stderr)
    errors = int(result.get("lint_errors", 0))
    if errors:
        print(f"lint: {errors} error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
