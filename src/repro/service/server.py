"""The extraction daemon: HTTP front end, worker pool, graceful drain.

JSON API (see docs/SERVICE.md for the full reference)::

    POST   /jobs            submit {"cif": ...| "path": ..., "options": {...}}
    GET    /jobs/<id>       job status
    GET    /jobs/<id>/result  the wirelist + diagnostics payload
    DELETE /jobs/<id>       cancel (cooperative once running)
    GET    /metrics         the metrics plane (one JSON document)
    GET    /healthz         liveness + drain state

Backpressure contract: admission control happens at submit time and
never blocks.  A full queue answers ``429`` with a ``Retry-After``
header estimated from observed mean latency; a draining daemon answers
``503``.  Accepted jobs are never dropped: SIGTERM closes admission,
the workers finish every queued and in-flight job (bounded by the drain
grace period), and only then does the process exit — a result either
appears complete or not at all, never torn.

The HTTP layer is the stdlib ``ThreadingHTTPServer``; handler threads
only touch the queue, the store, and the result cache, so a slow
extraction can never starve status polls or metrics scrapes.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any

from .engine import ExtractionEngine, JobCancelled, JobTimeout
from .cache import payload_digest, result_cache_key
from .jobs import (
    Job,
    JobOptions,
    JobQueue,
    JobState,
    JobStore,
    OptionsError,
    QueueClosed,
    QueueFull,
)

#: Default TCP port; pass 0 to bind an ephemeral port (tests, bench).
DEFAULT_PORT = 8731

#: Largest request body accepted, bytes.  CIF is compact; a layout
#: bigger than this should go through the "path" submission form.
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class ServiceConfig:
    """Everything tunable about one daemon instance."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2  #: worker threads (0 = admit but never run: tests)
    queue_capacity: int = 64
    result_cache_dir: "str | None" = None
    memory_cache_entries: int = 256
    cache_max_entries: "int | None" = None  #: disk store entry budget
    cache_max_bytes: "int | None" = None  #: disk store byte budget
    cache_ttl: "float | None" = None  #: disk entry max age, seconds
    prime_cache: int = 0  #: warm-start this many entries from disk
    shard: "str | None" = None  #: fleet shard identity (None = solo)
    default_timeout: "float | None" = 300.0  #: per-job seconds
    drain_grace: float = 30.0  #: max seconds to wait for drain
    retain_jobs: int = 256
    allow_paths: bool = True  #: accept {"path": ...} submissions
    resolution: int = 50
    engine: str = "auto"  #: strip-batch engine for every extraction
    log_stream: "IO[str] | None" = field(default=None, repr=False)
    quiet: bool = False  #: suppress structured logs entirely


class ExtractionService:
    """A long-lived extraction daemon bound to one TCP port."""

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config or ServiceConfig()
        self.engine = ExtractionEngine(
            result_cache_dir=self.config.result_cache_dir,
            memory_cache_entries=self.config.memory_cache_entries,
            cache_max_entries=self.config.cache_max_entries,
            cache_max_bytes=self.config.cache_max_bytes,
            cache_ttl=self.config.cache_ttl,
            prime_cache=self.config.prime_cache,
            default_timeout=self.config.default_timeout,
            resolution=self.config.resolution,
            engine=self.config.engine,
        )
        self.metrics = self.engine.metrics
        self.queue = JobQueue(self.config.queue_capacity)
        self.store = JobStore(retain=self.config.retain_jobs)
        self.draining = threading.Event()
        self._drained = threading.Event()
        self._workers: "list[threading.Thread]" = []
        self._log_lock = threading.Lock()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._serve_thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start worker threads and serve HTTP in the background."""
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"extract-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._serve_thread.start()
        self.log(
            event="ready",
            address=self.address,
            shard=self.config.shard,
            workers=self.config.workers,
            queue_capacity=self.config.queue_capacity,
        )

    def serve_forever(self) -> None:
        """Start, then block until :meth:`drain` completes (CLI path)."""
        self.start()
        self._drained.wait()

    def drain(self, grace: "float | None" = None) -> bool:
        """Stop admitting, finish outstanding jobs, stop the server.

        Returns True when every admitted job reached a terminal state
        within the grace period; False means the period expired with
        work still in flight (the daemon still shuts down, and those
        jobs never produce a partial result — their state simply stays
        non-terminal in this process's dying memory).
        """
        grace = self.config.drain_grace if grace is None else grace
        self.draining.set()
        self.queue.close()
        deadline = time.monotonic() + grace
        clean = True
        while self.store.pending():
            if time.monotonic() > deadline:
                clean = False
                break
            time.sleep(0.02)
        if self._serve_thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        self.engine.close()
        self.log(event="drained", clean=clean)
        self._drained.set()
        return clean

    def close(self) -> None:
        """Immediate teardown for tests: drain with a short grace."""
        if not self._drained.is_set():
            self.drain(grace=5.0)

    # -- submission ------------------------------------------------------

    def submit(self, body: dict) -> "tuple[int, dict, dict[str, str]]":
        """Admit one submission; returns (status, payload, headers)."""
        if self.draining.is_set():
            self.metrics.count("rejected_draining")
            return 503, {"error": "daemon is draining"}, {}
        try:
            cif, options = self._parse_submission(body)
        except OptionsError as exc:
            return 400, {"error": str(exc)}, {}

        digest = payload_digest(cif)
        cache_key = result_cache_key(digest, options)
        self.metrics.count("submitted")

        cached = self.engine.lookup(cache_key)
        if cached is not None:
            job = Job.new(
                cif="",  # the payload is not retained for cached answers
                options=options,
                digest=digest,
                cache_key=cache_key,
                default_timeout=None,
            )
            job.cached = True
            self.store.add(job)
            self.store.finish(job, JobState.DONE, result=cached)
            self.metrics.count("completed")
            self.metrics.observe_completion(0.0, 0.0)
            self.log(event="job", job=job.ident, state="done", cached=True)
            payload = job.status_payload()
            return 200, payload, {}

        job = Job.new(
            cif,
            options,
            digest,
            cache_key,
            default_timeout=self.config.default_timeout,
        )
        try:
            self.queue.put(job, retry_after=self._retry_after())
        except QueueClosed:
            self.metrics.count("rejected_draining")
            return 503, {"error": "daemon is draining"}, {}
        except QueueFull as exc:
            self.metrics.count("rejected_full")
            return (
                429,
                {
                    "error": str(exc),
                    "queue_depth": exc.depth,
                    "queue_capacity": exc.capacity,
                    "retry_after_seconds": exc.retry_after,
                },
                {"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        self.store.add(job)
        self.log(
            event="job",
            job=job.ident,
            state="queued",
            digest=digest[:12],
            hext=options.hext,
        )
        return 202, job.status_payload(), {}

    def _parse_submission(self, body: dict) -> "tuple[str, JobOptions]":
        if not isinstance(body, dict):
            raise OptionsError("submission must be a JSON object")
        unknown = sorted(set(body) - {"cif", "path", "options"})
        if unknown:
            raise OptionsError(f"unknown field(s): {', '.join(unknown)}")
        cif = body.get("cif")
        path = body.get("path")
        if (cif is None) == (path is None):
            raise OptionsError("provide exactly one of 'cif' or 'path'")
        options = JobOptions.from_payload(body.get("options"))
        if path is not None:
            if not self.config.allow_paths:
                raise OptionsError("path submissions are disabled")
            if not isinstance(path, str):
                raise OptionsError("'path' must be a string")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    cif = handle.read()
            except OSError as exc:
                raise OptionsError(f"cannot read {path!r}: {exc}") from exc
            if options.name == "layout.cif":
                options = JobOptions.from_payload(
                    {**options.to_payload(), "name": path.rsplit("/", 1)[-1]}
                )
        if not isinstance(cif, str):
            raise OptionsError("'cif' must be a string")
        return cif, options

    def _retry_after(self) -> float:
        """Estimated seconds until a queue slot frees up."""
        mean = self.metrics.mean_latency() or 1.0
        workers = max(1, self.config.workers)
        return max(1.0, self.queue.depth * mean / workers)

    # -- the worker loop -------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self.draining.is_set() and self.queue.depth == 0:
                    return
                continue
            if not self.store.claim(job):
                continue  # cancelled while queued
            started = time.monotonic()
            try:
                result = self.engine.run_job(job)
            except JobCancelled as exc:
                self.store.finish(
                    job,
                    JobState.CANCELLED,
                    error=str(exc),
                    error_kind="cancelled",
                )
                self.metrics.count("cancelled")
            except JobTimeout as exc:
                self.store.finish(
                    job,
                    JobState.FAILED,
                    error=str(exc),
                    error_kind="timeout",
                )
                self.metrics.count("timed_out")
            except Exception as exc:  # noqa: BLE001 - recorded verbatim
                self.store.finish(
                    job,
                    JobState.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    error_kind="error",
                )
                self.metrics.count("failed")
            else:
                self.store.finish(job, JobState.DONE, result=result)
                self.metrics.count("completed")
                finished = time.monotonic()
                self.metrics.observe_completion(
                    finished - job.submitted_monotonic, finished - started
                )
            self.log(
                event="job",
                job=job.ident,
                state=job.state.value,
                ms=round(1000 * (time.monotonic() - started), 1),
            )

    # -- observability ---------------------------------------------------

    def metrics_payload(self) -> dict:
        return self.metrics.snapshot(
            shard=self.config.shard,
            queue={
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "in_flight": self.store.in_flight(),
                "workers": self.config.workers,
            },
            result_cache=self.engine.results.stats_snapshot(),
            warm=self.engine.memo_snapshot(),
            draining=self.draining.is_set(),
        )

    def log(self, **fields: Any) -> None:
        """One structured JSON log line (stderr unless redirected)."""
        if self.config.quiet:
            return
        stream = self.config.log_stream or sys.stderr
        line = json.dumps({"ts": round(time.time(), 3), **fields})
        with self._log_lock:
            try:
                print(line, file=stream, flush=True)
            except ValueError:
                pass  # stream closed during interpreter shutdown


def _make_handler(service: ExtractionService) -> type:
    """Bind a BaseHTTPRequestHandler subclass to one service."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1.0"

        # -- plumbing ----------------------------------------------------

        def log_message(self, format: str, *args: Any) -> None:
            pass  # replaced by the structured request log below

        def _respond(
            self,
            status: int,
            payload: dict,
            headers: "dict[str, str] | None" = None,
        ) -> None:
            body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass
            service.log(
                event="request",
                method=self.command,
                path=self.path,
                status=status,
            )

        def _read_body(self) -> "dict | None":
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._respond(413, {"error": "request body too large"})
                return None
            raw = self.rfile.read(length) if length else b""
            if not raw:
                self._respond(400, {"error": "empty request body"})
                return None
            try:
                body = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                self._respond(400, {"error": "request body is not JSON"})
                return None
            if not isinstance(body, dict):
                self._respond(400, {"error": "request body must be an object"})
                return None
            return body

        # -- routes ------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            if self.path != "/jobs":
                self._respond(404, {"error": f"no such route {self.path}"})
                return
            body = self._read_body()
            if body is None:
                return
            status, payload, headers = service.submit(body)
            self._respond(status, payload, headers)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            if self.path == "/metrics":
                self._respond(200, service.metrics_payload())
                return
            if self.path == "/healthz":
                self._respond(
                    200,
                    {
                        "ok": True,
                        "shard": service.config.shard,
                        "draining": service.draining.is_set(),
                        "uptime_seconds": round(
                            time.monotonic()
                            - service.metrics.started_monotonic,
                            3,
                        ),
                    },
                )
                return
            parts = self.path.strip("/").split("/")
            if len(parts) >= 2 and parts[0] == "jobs":
                job = service.store.get(parts[1])
                if job is None:
                    self._respond(404, {"error": f"unknown job {parts[1]!r}"})
                    return
                if len(parts) == 2:
                    self._respond(200, job.status_payload())
                    return
                if len(parts) == 3 and parts[2] == "result":
                    if job.state is JobState.DONE:
                        assert job.result is not None
                        self._respond(
                            200,
                            {**job.status_payload(), "result": job.result},
                        )
                    elif job.state in (JobState.QUEUED, JobState.RUNNING):
                        self._respond(202, job.status_payload())
                    else:
                        self._respond(409, job.status_payload())
                    return
            self._respond(404, {"error": f"no such route {self.path}"})

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
            parts = self.path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "jobs":
                job = service.store.cancel(parts[1])
                if job is None:
                    self._respond(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._respond(200, job.status_payload())
                return
            self._respond(404, {"error": f"no such route {self.path}"})

    return Handler
