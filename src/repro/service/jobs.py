"""Job model, options, and the bounded admission-controlled queue.

A *job* is one extraction request: a CIF payload plus
:class:`JobOptions`.  Jobs move through a strict lifecycle::

    queued -> running -> done | failed
    queued -> cancelled            (cancel before a worker claims it)
    running -> cancelled           (cooperative, at stage boundaries)

The queue is deliberately dumb: a bounded FIFO whose only policy is
admission control — when full it refuses immediately with
:class:`QueueFull` rather than blocking the submitter, and the HTTP
layer turns that into ``429`` plus a ``Retry-After`` estimate.  All
scheduling subtlety (cache lookups, warm memos, worker pools) lives in
:mod:`repro.service.engine`.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from enum import Enum


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job can never move again.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


class OptionsError(ValueError):
    """The submitted options payload is malformed."""


@dataclass(frozen=True)
class JobOptions:
    """Extraction options, mirroring the ``ace-extract`` surface.

    ``jobs`` and ``timeout`` steer *how* a job runs, never what it
    produces (parallel and serial extraction are wirelist-equivalent by
    the guarantees of :mod:`repro.parallel`), so they are excluded from
    the result-cache key (:meth:`cache_facet`).  ``stream`` and
    ``band_height`` are excluded for the same reason: the banded
    streaming pipeline (:mod:`repro.streaming`) is byte-identical to the
    in-memory path at every band plan, so a streamed job may serve -- and
    be served by -- a cached in-memory result.
    """

    name: str = "layout.cif"  #: DefPart name stamped into the wirelist
    lambda_: "int | None" = None
    deck: str = "nmos"  #: builtin technology deck name
    hext: bool = False
    jobs: "int | None" = None
    lint: bool = False
    keep_geometry: bool = False
    timeout: "float | None" = None
    stream: bool = False  #: out-of-core banded streaming extraction
    band_height: "int | None" = None  #: band height in layout units

    _FIELDS = frozenset(
        {
            "name",
            "lambda",
            "deck",
            "hext",
            "jobs",
            "lint",
            "keep_geometry",
            "timeout",
            "stream",
            "band_height",
        }
    )

    @classmethod
    def from_payload(cls, data: object) -> "JobOptions":
        """Validate and build options from a request's JSON object."""
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise OptionsError("options must be a JSON object")
        unknown = sorted(set(data) - cls._FIELDS)
        if unknown:
            raise OptionsError(f"unknown option(s): {', '.join(unknown)}")

        def _flag(key: str) -> bool:
            value = data.get(key, False)
            if not isinstance(value, bool):
                raise OptionsError(f"option {key!r} must be a boolean")
            return value

        def _int(key: str) -> "int | None":
            value = data.get(key)
            if value is None:
                return None
            if not isinstance(value, int) or isinstance(value, bool):
                raise OptionsError(f"option {key!r} must be an integer")
            if value < 0:
                raise OptionsError(f"option {key!r} must be >= 0")
            return value

        name = data.get("name", "layout.cif")
        if not isinstance(name, str) or not name:
            raise OptionsError("option 'name' must be a non-empty string")
        deck = data.get("deck", "nmos")
        if not isinstance(deck, str) or not deck:
            raise OptionsError("option 'deck' must be a non-empty string")
        from ..tech import BUILTIN_DECKS

        if deck not in BUILTIN_DECKS:
            raise OptionsError(
                f"unknown deck {deck!r}; the daemon serves builtin decks "
                f"only: {', '.join(sorted(BUILTIN_DECKS))}"
            )
        timeout = data.get("timeout")
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(
                timeout, (int, float)
            ):
                raise OptionsError("option 'timeout' must be a number")
            if timeout < 0:
                raise OptionsError("option 'timeout' must be >= 0")
            timeout = float(timeout)
        stream = _flag("stream")
        hext = _flag("hext")
        if stream and hext:
            raise OptionsError(
                "options 'stream' and 'hext' are mutually exclusive"
            )
        band_height = _int("band_height")
        if band_height is not None and band_height < 1:
            raise OptionsError("option 'band_height' must be >= 1")
        if band_height is not None and not stream:
            raise OptionsError("option 'band_height' requires 'stream'")
        return cls(
            name=name,
            lambda_=_int("lambda"),
            deck=deck,
            hext=hext,
            jobs=_int("jobs"),
            lint=_flag("lint"),
            keep_geometry=_flag("keep_geometry"),
            timeout=timeout,
            stream=stream,
            band_height=band_height,
        )

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "lambda": self.lambda_,
            "deck": self.deck,
            "hext": self.hext,
            "jobs": self.jobs,
            "lint": self.lint,
            "keep_geometry": self.keep_geometry,
            "timeout": self.timeout,
            "stream": self.stream,
            "band_height": self.band_height,
        }

    def cache_facet(self) -> dict:
        """The subset of options that can change the result bytes."""
        return {
            "name": self.name,
            "lambda": self.lambda_,
            "deck": self.deck,
            "hext": self.hext,
            "lint": self.lint,
            "keep_geometry": self.keep_geometry,
        }


@dataclass
class Job:
    """One extraction request and everything observed about it."""

    ident: str
    cif: str
    options: JobOptions
    digest: str  #: sha256 of the CIF payload
    cache_key: str  #: result-cache key (digest + option facet)
    state: JobState = JobState.QUEUED
    stage: "str | None" = None  #: current engine stage while running
    submitted_monotonic: float = field(default_factory=time.monotonic)
    submitted_wall: float = field(default_factory=time.time)
    started_monotonic: "float | None" = None
    finished_monotonic: "float | None" = None
    deadline: "float | None" = None  #: monotonic per-job deadline
    cached: bool = False  #: served straight from the result cache
    result: "dict | None" = None
    error: "str | None" = None
    error_kind: "str | None" = None  #: "timeout" | "cancelled" | "error"
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @classmethod
    def new(
        cls,
        cif: str,
        options: JobOptions,
        digest: str,
        cache_key: str,
        *,
        default_timeout: "float | None" = None,
    ) -> "Job":
        job = cls(
            ident=uuid.uuid4().hex[:12],
            cif=cif,
            options=options,
            digest=digest,
            cache_key=cache_key,
        )
        timeout = (
            options.timeout if options.timeout is not None else default_timeout
        )
        if timeout is not None:
            job.deadline = job.submitted_monotonic + timeout
        return job

    @property
    def latency_seconds(self) -> "float | None":
        """Submit-to-finish wall time, once the job is terminal."""
        if self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.submitted_monotonic

    def status_payload(self) -> dict:
        """The JSON body of ``GET /jobs/<id>``."""
        payload: dict = {
            "job": self.ident,
            "state": self.state.value,
            "digest": self.digest,
            "cached": self.cached,
            "options": self.options.to_payload(),
            "submitted_at": self.submitted_wall,
        }
        if self.stage is not None and self.state is JobState.RUNNING:
            payload["stage"] = self.stage
        if self.started_monotonic is not None:
            payload["queue_seconds"] = round(
                self.started_monotonic - self.submitted_monotonic, 6
            )
        latency = self.latency_seconds
        if latency is not None:
            payload["latency_seconds"] = round(latency, 6)
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        return payload


class QueueFull(RuntimeError):
    """Admission control refused the job; retry after ``retry_after``."""

    def __init__(self, depth: int, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"job queue full ({depth}/{capacity}); "
            f"retry after {retry_after:.1f}s"
        )
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class QueueClosed(RuntimeError):
    """The daemon is draining; no new work is admitted."""


class JobQueue:
    """Bounded FIFO of queued jobs with immediate-refusal admission."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: "deque[Job]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, job: Job, *, retry_after: float = 1.0) -> None:
        """Admit ``job`` or refuse: QueueFull / QueueClosed, never block."""
        with self._lock:
            if self._closed:
                raise QueueClosed("daemon is draining")
            if len(self._items) >= self.capacity:
                raise QueueFull(
                    len(self._items), self.capacity, retry_after
                )
            self._items.append(job)
            self._not_empty.notify()

    def get(self, timeout: "float | None" = None) -> "Job | None":
        """Next queued job, or None on timeout / closed-and-empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop admitting; wake every waiting worker."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()


class JobStore:
    """Thread-safe registry of every job the daemon has seen.

    Finished jobs are retained (result included) up to ``retain``
    entries so clients can poll after completion; beyond that the oldest
    terminal jobs are evicted and their ids answer 404.
    """

    def __init__(self, retain: int = 256) -> None:
        self.retain = retain
        self._jobs: "dict[str, Job]" = {}
        self._finished: "deque[str]" = deque()
        self._lock = threading.Lock()

    def add(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.ident] = job

    def get(self, ident: str) -> "Job | None":
        with self._lock:
            return self._jobs.get(ident)

    def claim(self, job: Job) -> bool:
        """Atomically move QUEUED -> RUNNING; False if no longer queued."""
        with self._lock:
            if job.state is not JobState.QUEUED:
                return False
            job.state = JobState.RUNNING
            job.started_monotonic = time.monotonic()
            return True

    def finish(
        self,
        job: Job,
        state: JobState,
        *,
        result: "dict | None" = None,
        error: "str | None" = None,
        error_kind: "str | None" = None,
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"{state} is not terminal")
        with self._lock:
            if job.state in TERMINAL_STATES:
                return
            job.state = state
            job.result = result
            job.error = error
            job.error_kind = error_kind
            job.finished_monotonic = time.monotonic()
            job.stage = None
            self._finished.append(job.ident)
            while len(self._finished) > self.retain:
                evicted = self._finished.popleft()
                self._jobs.pop(evicted, None)

    def cancel(self, ident: str) -> "Job | None":
        """Request cancellation; returns the job, or None if unknown.

        A queued job is cancelled outright.  A running job gets its
        cancel event set and is cancelled by its worker at the next
        stage boundary (cooperative — the scanline is not preempted
        mid-strip).
        """
        with self._lock:
            job = self._jobs.get(ident)
            if job is None:
                return None
            job.cancel_event.set()
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_monotonic = time.monotonic()
                job.error = "cancelled while queued"
                job.error_kind = "cancelled"
                self._finished.append(job.ident)
        return job

    def in_flight(self) -> int:
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.state is JobState.RUNNING
            )

    def pending(self) -> int:
        """Jobs not yet terminal (queued + running)."""
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.state not in TERMINAL_STATES
            )
