"""The metrics plane: counters, latency quantiles, per-stage timings.

Everything the daemon exposes at ``GET /metrics`` funnels through one
:class:`Metrics` instance.  Design points:

* **Ring, not reservoir** — tail latency is computed over a fixed-size
  ring of the most recent job latencies.  A long-lived daemon must not
  let hour-old outliers pin p99 forever; the ring gives a sliding
  window with O(size log size) snapshot cost and O(1) memory.
* **Counters are monotonic** — scrape deltas, not levels, for rates.
* **Per-stage timings fold the extractor's own accounting in** — flat
  jobs contribute :class:`~repro.core.stats.ScanStats` event counters,
  hierarchical jobs contribute
  :class:`~repro.hext.extractor.HextStats` phase timers, so the service
  view decomposes the same way the paper's Table 5 splits do.
"""

from __future__ import annotations

import threading
import time
from collections import Counter


def quantile(ordered: "list[float]", q: float) -> float:
    """Linear-interpolated quantile of an ascending-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class LatencyRing:
    """Fixed-size ring of recent latencies with quantile snapshots."""

    def __init__(self, size: int = 512) -> None:
        if size < 1:
            raise ValueError(f"ring size must be >= 1, got {size}")
        self.size = size
        self._values: "list[float]" = []
        self._next = 0
        self.observed = 0  #: total observations ever (not just windowed)
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.observed += 1
        self.total_seconds += seconds
        if len(self._values) < self.size:
            self._values.append(seconds)
        else:
            self._values[self._next] = seconds
        self._next = (self._next + 1) % self.size

    def snapshot(self) -> dict:
        ordered = sorted(self._values)
        return {
            "window": len(ordered),
            "observed": self.observed,
            "mean_seconds": (
                self.total_seconds / self.observed if self.observed else 0.0
            ),
            "p50_seconds": quantile(ordered, 0.50),
            "p95_seconds": quantile(ordered, 0.95),
            "p99_seconds": quantile(ordered, 0.99),
            "max_seconds": ordered[-1] if ordered else 0.0,
        }


#: ScanStats fields folded into the metrics plane for flat jobs.
_SCAN_COUNTERS = (
    "boxes_in",
    "stops",
    "devices_created",
    "heap_pushes",
    "heap_pops",
    "lazy_discards",
    "expired",
)

#: HextStats fields folded in for hierarchical jobs.
_HEXT_COUNTERS = (
    "flat_calls",
    "compose_calls",
    "memo_hits",
    "windows_seen",
    "unique_windows",
    "cache_hits",
    "cache_misses",
)


class Metrics:
    """Thread-safe aggregate state behind ``GET /metrics``."""

    def __init__(self, ring_size: int = 512) -> None:
        self._lock = threading.Lock()
        self.started_wall = time.time()
        self.started_monotonic = time.monotonic()
        self.counters: Counter = Counter()
        self.latency = LatencyRing(ring_size)  #: submit -> finish
        self.run_latency = LatencyRing(ring_size)  #: claim -> finish
        self.stage_seconds: "dict[str, float]" = {}
        self.scan: Counter = Counter()
        self.hext: Counter = Counter()
        self.peak_active = 0
        #: live band progress of in-flight streaming jobs, by job ident
        self._stream_active: "dict[str, tuple[int, int]]" = {}

    def count(self, event: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[event] += amount

    def stream_progress(self, ident: str, band: int, bands: int) -> None:
        """Record a streaming job finishing one band of its sweep."""
        with self._lock:
            self._stream_active[ident] = (band, bands)
            self.counters["stream_bands"] += 1

    def stream_finished(self, ident: str) -> None:
        """Drop a streaming job from the live-progress gauge."""
        with self._lock:
            self._stream_active.pop(ident, None)

    def observe_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.stage_seconds[stage] = (
                self.stage_seconds.get(stage, 0.0) + seconds
            )

    def observe_completion(
        self, latency_seconds: float, run_seconds: float
    ) -> None:
        with self._lock:
            self.latency.observe(latency_seconds)
            self.run_latency.observe(run_seconds)

    def fold_scan_stats(self, scan: object) -> None:
        """Accumulate a flat run's ScanStats event counters.

        When the run carried the host's per-phase profiler
        (``ScanStats.profile``), the phase seconds fold into the stage
        table as ``scan_<phase>`` rows, decomposing the ``extract``
        stage the same way ``--profile`` does on the CLI.
        """
        with self._lock:
            for name in _SCAN_COUNTERS:
                self.scan[name] += int(getattr(scan, name, 0) or 0)
            self.peak_active = max(
                self.peak_active, int(getattr(scan, "peak_active", 0) or 0)
            )
            profile = getattr(scan, "profile", None)
            if profile:
                for phase, seconds in profile.items():
                    key = f"scan_{phase}"
                    self.stage_seconds[key] = self.stage_seconds.get(
                        key, 0.0
                    ) + float(seconds)

    def fold_hext_stats(self, stats: object) -> None:
        """Accumulate a hierarchical run's HextStats counters/timers."""
        with self._lock:
            for name in _HEXT_COUNTERS:
                self.hext[name] += int(getattr(stats, name, 0) or 0)
            for stage, attr in (
                ("hext_frontend", "frontend_seconds"),
                ("hext_execute", "flat_seconds"),
                ("hext_compose", "compose_seconds"),
            ):
                self.stage_seconds[stage] = self.stage_seconds.get(
                    stage, 0.0
                ) + float(getattr(stats, attr, 0.0) or 0.0)

    def mean_latency(self) -> float:
        with self._lock:
            ring = self.latency
            return (
                ring.total_seconds / ring.observed if ring.observed else 0.0
            )

    def snapshot(self, **gauges: object) -> dict:
        """One JSON-ready view of everything; ``gauges`` are spliced in."""
        with self._lock:
            counters = dict(self.counters)
            hits = counters.get("cache_hits", 0)
            misses = counters.get("cache_misses", 0)
            looked_up = hits + misses
            return {
                "uptime_seconds": round(
                    time.monotonic() - self.started_monotonic, 3
                ),
                "started_at": self.started_wall,
                "jobs": {
                    key: counters.get(key, 0)
                    for key in (
                        "submitted",
                        "completed",
                        "failed",
                        "cancelled",
                        "timed_out",
                        "rejected_full",
                        "rejected_draining",
                    )
                },
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "stores": counters.get("cache_stores", 0),
                    "hit_rate": (hits / looked_up) if looked_up else 0.0,
                },
                "latency": self.latency.snapshot(),
                "run_latency": self.run_latency.snapshot(),
                "stages": {
                    stage: round(seconds, 6)
                    for stage, seconds in sorted(self.stage_seconds.items())
                },
                "scanline": dict(self.scan) | {
                    "peak_active": self.peak_active
                },
                "hext": dict(self.hext),
                "streaming": {
                    "jobs": counters.get("stream_jobs", 0),
                    "bands": counters.get("stream_bands", 0),
                    "active": {
                        ident: {"band": band, "bands": bands}
                        for ident, (band, bands) in sorted(
                            self._stream_active.items()
                        )
                    },
                },
                **gauges,
            }
