"""A thin blocking client for the extraction daemon.

Pure stdlib (``http.client``), one connection per request, no retries
beyond what the caller asks for — the transport is boring on purpose so
the daemon's semantics (admission control, polling, cache hits) stay
visible to whoever is scripting against it.  The ``repro-submit`` CLI
and the difftest ``service`` oracle both sit on this class.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from .server import DEFAULT_PORT


class ServiceError(RuntimeError):
    """A non-2xx response (or transport failure) from the daemon."""

    def __init__(self, status: int, payload: "dict | None" = None) -> None:
        detail = (payload or {}).get("error", "")
        super().__init__(f"service answered {status}: {detail}")
        self.status = status
        self.payload = payload or {}

    @property
    def retry_after(self) -> "float | None":
        """Seconds to wait when the daemon applied backpressure (429)."""
        value = self.payload.get("retry_after_seconds")
        return float(value) if value is not None else None


class JobFailed(ServiceError):
    """The job reached a terminal state other than done."""


class ServiceClient:
    """Blocking JSON-over-HTTP access to one daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        *,
        ok: "tuple[int, ...]" = (200,),
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if encoded else {}
            )
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")[:200]}
        if response.status not in ok:
            raise ServiceError(response.status, payload)
        return payload

    # -- API -------------------------------------------------------------

    def submit(
        self,
        cif: "str | None" = None,
        *,
        path: "str | None" = None,
        **options: Any,
    ) -> dict:
        """Submit a payload; returns the submission's status payload.

        A result-cache hit answers with ``state == "done"`` and
        ``cached == true`` immediately; otherwise the job is queued and
        the caller polls (or uses :meth:`wait` / :meth:`extract`).
        Raises :class:`ServiceError` with status 429 when admission
        control refuses — ``exc.retry_after`` carries the daemon's
        estimate.
        """
        if "lambda_" in options:  # keyword-friendly alias for "lambda"
            options["lambda"] = options.pop("lambda_")
        body: dict = {"options": options} if options else {}
        if cif is not None:
            body["cif"] = cif
        if path is not None:
            body["path"] = path
        return self._request("POST", "/jobs", body, ok=(200, 202))

    def status(self, job: str) -> dict:
        return self._request("GET", f"/jobs/{job}")

    def result(self, job: str) -> dict:
        """The finished job's result payload (raises JobFailed otherwise)."""
        payload = self._request(
            "GET", f"/jobs/{job}/result", ok=(200, 202, 409)
        )
        state = payload.get("state")
        if state == "done":
            return payload["result"]
        if state in ("failed", "cancelled"):
            raise JobFailed(409, payload)
        raise ServiceError(202, {**payload, "error": "job not finished"})

    def cancel(self, job: str) -> dict:
        return self._request("DELETE", f"/jobs/{job}")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # -- conveniences ----------------------------------------------------

    def wait(
        self,
        job: str,
        *,
        timeout: "float | None" = 60.0,
        poll: float = 0.05,
    ) -> dict:
        """Poll until the job is terminal; returns its status payload."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            payload = self.status(job)
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll)

    def extract(
        self,
        cif: "str | None" = None,
        *,
        path: "str | None" = None,
        wait_timeout: "float | None" = 60.0,
        **options: Any,
    ) -> dict:
        """Submit, wait, and fetch the result in one blocking call."""
        receipt = self.submit(cif, path=path, **options)
        if receipt["state"] == "done":
            return self.result(receipt["job"])
        status = self.wait(receipt["job"], timeout=wait_timeout)
        if status["state"] != "done":
            raise JobFailed(409, status)
        return self.result(receipt["job"])
