"""A thin blocking client for the extraction daemon.

Pure stdlib (``http.client``), one connection per request — the
transport is boring on purpose so the daemon's semantics (admission
control, polling, cache hits) stay visible to whoever is scripting
against it.  The ``repro-submit`` CLI and the difftest ``service``
oracle both sit on this class.

The one concession to operability is bounded submission retry:
``ServiceClient(retries=N)`` makes :meth:`submit` absorb up to N
backpressure answers (``429``/``503``) and transport-level connection
failures, sleeping the daemon's own ``Retry-After`` estimate when one
is offered and a jittered exponential backoff when not.  The default is
``retries=0`` — identical behavior to before the knob existed.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any

from .server import DEFAULT_PORT

#: Status codes that mean "try the identical request again later".
RETRYABLE_STATUSES = (429, 503)


class ServiceError(RuntimeError):
    """A non-2xx response (or transport failure) from the daemon."""

    def __init__(
        self,
        status: int,
        payload: "dict | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        detail = (payload or {}).get("error", "")
        super().__init__(f"service answered {status}: {detail}")
        self.status = status
        self.payload = payload or {}
        self.headers = headers or {}

    @property
    def retry_after(self) -> "float | None":
        """Seconds to wait when the daemon applied backpressure.

        Prefers the precise ``retry_after_seconds`` payload field, then
        the integral ``Retry-After`` header; None when the daemon
        offered no estimate (e.g. ``503`` while draining).
        """
        value = self.payload.get("retry_after_seconds")
        if value is not None:
            return float(value)
        header = self.headers.get("Retry-After")
        if header is not None:
            try:
                return float(header)
            except ValueError:
                return None
        return None


class JobFailed(ServiceError):
    """The job reached a terminal state other than done."""


class ServiceClient:
    """Blocking JSON-over-HTTP access to one daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.25,
        backoff_cap: float = 8.0,
        jitter: float = 0.25,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        #: total submission retries this client has performed (tests,
        #: bench accounting)
        self.retries_performed = 0

    def _retry_delay(
        self, attempt: int, hint: "float | None"
    ) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered.

        A daemon-provided ``Retry-After`` hint wins over the exponential
        schedule; either way the delay is capped and gets a proportional
        random jitter so a thundering herd of identical clients spreads
        out instead of re-colliding.
        """
        base = hint if hint is not None else self.backoff * (2.0**attempt)
        base = min(base, self.backoff_cap)
        return base + random.uniform(0.0, self.jitter * base)

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        *,
        ok: "tuple[int, ...]" = (200,),
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if encoded else {}
            )
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")[:200]}
        if response.status not in ok:
            raise ServiceError(
                response.status, payload, dict(response.getheaders())
            )
        return payload

    # -- API -------------------------------------------------------------

    def submit(
        self,
        cif: "str | None" = None,
        *,
        path: "str | None" = None,
        **options: Any,
    ) -> dict:
        """Submit a payload; returns the submission's status payload.

        A result-cache hit answers with ``state == "done"`` and
        ``cached == true`` immediately; otherwise the job is queued and
        the caller polls (or uses :meth:`wait` / :meth:`extract`).
        Raises :class:`ServiceError` with status 429 when admission
        control refuses — ``exc.retry_after`` carries the daemon's
        estimate.  With ``retries > 0`` the client absorbs up to that
        many 429/503 answers and connection failures itself, honoring
        ``Retry-After`` and otherwise backing off exponentially with
        jitter; the last failure is re-raised once the budget is spent.
        """
        if "lambda_" in options:  # keyword-friendly alias for "lambda"
            options["lambda"] = options.pop("lambda_")
        body: dict = {"options": options} if options else {}
        if cif is not None:
            body["cif"] = cif
        if path is not None:
            body["path"] = path
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body, ok=(200, 202))
            except ServiceError as exc:
                if (
                    exc.status not in RETRYABLE_STATUSES
                    or attempt >= self.retries
                ):
                    raise
                delay = self._retry_delay(attempt, exc.retry_after)
            except OSError:
                if attempt >= self.retries:
                    raise
                delay = self._retry_delay(attempt, None)
            attempt += 1
            self.retries_performed += 1
            time.sleep(delay)

    def status(self, job: str) -> dict:
        return self._request("GET", f"/jobs/{job}")

    def result(self, job: str) -> dict:
        """The finished job's result payload (raises JobFailed otherwise)."""
        payload = self._request(
            "GET", f"/jobs/{job}/result", ok=(200, 202, 409)
        )
        state = payload.get("state")
        if state == "done":
            return payload["result"]
        if state in ("failed", "cancelled"):
            raise JobFailed(409, payload)
        raise ServiceError(202, {**payload, "error": "job not finished"})

    def cancel(self, job: str) -> dict:
        return self._request("DELETE", f"/jobs/{job}")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # -- conveniences ----------------------------------------------------

    def wait(
        self,
        job: str,
        *,
        timeout: "float | None" = 60.0,
        poll: float = 0.05,
    ) -> dict:
        """Poll until the job is terminal; returns its status payload."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            payload = self.status(job)
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll)

    def extract(
        self,
        cif: "str | None" = None,
        *,
        path: "str | None" = None,
        wait_timeout: "float | None" = 60.0,
        **options: Any,
    ) -> dict:
        """Submit, wait, and fetch the result in one blocking call."""
        receipt = self.submit(cif, path=path, **options)
        if receipt["state"] == "done":
            return self.result(receipt["job"])
        status = self.wait(receipt["job"], timeout=wait_timeout)
        if status["state"] != "done":
            raise JobFailed(409, status)
        return self.result(receipt["job"])
