"""The extraction service: a long-lived daemon over the extractors.

Every other entry point in this repository is a one-shot CLI that pays
the full cold-start bill — parse the technology, build a worker pool,
warm nothing — on each invocation.  This package hosts the extractors
the way the ROADMAP's serve-heavy-traffic goal wants them hosted:

* :mod:`repro.service.server` — the daemon: a JSON job API over
  stdlib HTTP, a bounded admission-controlled queue, worker threads,
  and graceful drain on SIGTERM;
* :mod:`repro.service.engine` — the job body, plus the state kept warm
  across requests: the incremental extractor's window memo, persistent
  process pools, and the content-addressed result cache;
* :mod:`repro.service.metrics` — the ``/metrics`` plane: counters,
  latency quantile rings, per-stage timings;
* :mod:`repro.service.client` — a thin blocking client, used by
  ``repro-submit``, the load benchmark, and the difftest oracle.

Quickstart::

    from repro.service import ExtractionService, ServiceConfig, ServiceClient

    service = ExtractionService(ServiceConfig(port=0, workers=2))
    service.start()
    client = ServiceClient(port=service.port)
    result = client.extract(open("chip.cif").read(), name="chip.cif")
    print(result["wirelist"])
    service.close()
"""

from .cache import ResultCache, payload_digest, result_cache_key
from .client import JobFailed, ServiceClient, ServiceError
from .engine import ExtractionEngine, JobCancelled, JobTimeout
from .jobs import (
    Job,
    JobOptions,
    JobQueue,
    JobState,
    JobStore,
    OptionsError,
    QueueClosed,
    QueueFull,
)
from .metrics import LatencyRing, Metrics, quantile
from .server import DEFAULT_PORT, ExtractionService, ServiceConfig

__all__ = [
    "DEFAULT_PORT",
    "ExtractionEngine",
    "ExtractionService",
    "Job",
    "JobCancelled",
    "JobFailed",
    "JobOptions",
    "JobQueue",
    "JobState",
    "JobStore",
    "JobTimeout",
    "LatencyRing",
    "Metrics",
    "OptionsError",
    "QueueClosed",
    "QueueFull",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "payload_digest",
    "quantile",
    "result_cache_key",
]
