"""Flatten hierarchical wirelists.

Most CAD tools -- simulators in particular -- require a flat wirelist
(HEXT paper, section 4), produced "by recursively instantiating all calls
to subparts of the top level cell"; the cost is linear in the number of
devices.  The flat form here is a :class:`FlatCircuit`: devices over
global net ids, with user names preserved, which is also the input to the
netlist comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.unionfind import UnionFind
from .model import DefPart, Wirelist


@dataclass(frozen=True, slots=True)
class FlatDevice:
    """One transistor over global net ids."""

    kind: str
    gate: int | None
    source: int | None
    drain: int | None


@dataclass
class FlatCircuit:
    """A flattened netlist: devices plus net name anchors."""

    devices: list[FlatDevice] = field(default_factory=list)
    net_names: dict[int, list[str]] = field(default_factory=dict)
    net_count: int = 0

    def named(self, name: str) -> int:
        for net, names in self.net_names.items():
            if name in names:
                return net
        raise KeyError(f"no net named {name!r}")


def flatten(wirelist: Wirelist) -> FlatCircuit:
    """Expand the top part recursively into a flat circuit.

    Net equivalences (``(Net a b)`` declarations and subpart net maps)
    are resolved through a union-find, so an alias chain across any
    number of composition levels collapses to a single net.
    """
    nets = UnionFind()
    names: dict[int, list[str]] = {}
    raw_devices: list[tuple[str, int | None, int | None, int | None]] = []

    def instantiate(part: DefPart, bindings: dict[str, int], depth: int) -> None:
        if depth > 1000:
            raise RecursionError(f"wirelist nesting too deep at {part.name}")
        local = dict(bindings)

        def net_id(name: str) -> int:
            ident = local.get(name)
            if ident is None:
                ident = nets.make()
                local[name] = ident
            return ident

        # A trailing name in a Net declaration is an *identifier* only if
        # it is referenced elsewhere in the part; otherwise it is a user
        # annotation ("(Net N2 VDD ...)" of Figure 3-4).  Two distinct
        # rails may legitimately carry the same user name.
        occurrences: dict[str, int] = {}

        def count(name: str | None) -> None:
            if name is not None:
                occurrences[name] = occurrences.get(name, 0) + 1

        for decl in part.nets:
            count(decl.names[0])
        for device in part.devices:
            count(device.gate)
            count(device.source)
            count(device.drain)
        for sub in part.subparts:
            for parent_name in sub.net_map.values():
                count(parent_name)
        for name in part.exports:
            count(name)
        for name in part.locals_:
            count(name)

        for decl in part.nets:
            canonical = net_id(decl.names[0])
            first = decl.names[0]
            if not (first.startswith("N") and first[1:].isdigit()):
                bucket = names.setdefault(canonical, [])
                if first not in bucket:
                    bucket.append(first)
            for name in decl.names[1:]:
                if occurrences.get(name, 0) >= 2 or name in local:
                    nets.union(canonical, net_id(name))
                if not (name.startswith("N") and name[1:].isdigit()):
                    bucket = names.setdefault(canonical, [])
                    if name not in bucket:
                        bucket.append(name)

        for device in part.devices:
            raw_devices.append(
                (
                    device.kind,
                    net_id(device.gate) if device.gate else None,
                    net_id(device.source) if device.source else None,
                    net_id(device.drain) if device.drain else None,
                )
            )

        for sub in part.subparts:
            child = wirelist.defpart(sub.part)
            child_bindings = {
                child_net: net_id(parent_net)
                for child_net, parent_net in sub.net_map.items()
            }
            instantiate(child, child_bindings, depth + 1)

    instantiate(wirelist.top_part, {}, 0)

    # Renumber roots densely.
    root_index: dict[int, int] = {}

    def dense(ident: int | None) -> int | None:
        if ident is None:
            return None
        root = nets.find(ident)
        index = root_index.get(root)
        if index is None:
            index = len(root_index)
            root_index[root] = index
        return index

    flat = FlatCircuit()
    for kind, gate, source, drain in raw_devices:
        flat.devices.append(
            FlatDevice(kind, dense(gate), dense(source), dense(drain))
        )
    for ident, name_list in names.items():
        index = dense(ident)
        assert index is not None
        bucket = flat.net_names.setdefault(index, [])
        for name in name_list:
            if name not in bucket:
                bucket.append(name)
    flat.net_count = len(root_index)
    return flat


def circuit_to_flat(circuit) -> FlatCircuit:
    """Adapt an extracted :class:`~repro.core.netlist.Circuit` directly.

    Convenience for comparing extractor outputs without a round trip
    through wirelist text.
    """
    flat = FlatCircuit()
    index_map: dict[int, int] = {}

    def dense(index: int | None) -> int | None:
        if index is None:
            return None
        mapped = index_map.get(index)
        if mapped is None:
            mapped = len(index_map)
            index_map[index] = mapped
        return mapped

    for device in circuit.devices:
        flat.devices.append(
            FlatDevice(
                device.kind,
                dense(device.gate),
                dense(device.source),
                dense(device.drain),
            )
        )
    for net in circuit.nets:
        if net.names:
            flat.net_names[dense(net.index)] = list(net.names)
    flat.net_count = max(len(index_map), len(circuit.nets))
    return flat
