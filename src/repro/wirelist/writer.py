"""Emit wirelists in the CMU LISP-like syntax, and build them from
extraction results.

:func:`to_wirelist` converts a :class:`~repro.core.netlist.Circuit` into
the flat single-DefPart form of Figure 3-4; :func:`write_wirelist`
renders any :class:`Wirelist` (flat or hierarchical) as text.
"""

from __future__ import annotations

from io import StringIO

from ..core.netlist import Circuit
from ..geometry import Box
from .model import (
    PRIMITIVE_PARTS,
    DefPart,
    DeviceInstance,
    NetDecl,
    Wirelist,
    primitives_for,
)


def to_wirelist(
    circuit: Circuit,
    name: str = "chip",
    include_geometry: bool = True,
    tech: object = None,
) -> Wirelist:
    """Build the flat wirelist for an extracted circuit.

    Net names follow the paper: the canonical name is ``N<index>`` with
    user-defined names listed as aliases.  Geometry (channel and net CIF
    strings) is included when the circuit was extracted with
    ``keep_geometry`` and ``include_geometry`` is left on.
    """
    part = DefPart(name=name)
    net_name = {net.index: f"N{net.index}" for net in circuit.nets}

    for i, device in enumerate(circuit.devices):
        channel_cif = None
        if include_geometry and device.geometry:
            channel_cif = geometry_to_cif(
                [("__channel__", box) for box in device.geometry],
                channel_layer=True,
            )
        part.devices.append(
            DeviceInstance(
                kind=device.kind,
                inst_name=f"D{i}",
                gate=net_name.get(device.gate) if device.gate else None,
                source=net_name.get(device.source) if device.source else None,
                drain=net_name.get(device.drain) if device.drain else None,
                location=device.location,
                length=device.length,
                width=device.width,
                channel_cif=channel_cif,
            )
        )

    for net in circuit.nets:
        cif = None
        if include_geometry and net.geometry:
            cif = geometry_to_cif(net.geometry)
        part.nets.append(
            NetDecl(
                names=[net_name[net.index], *net.names],
                location=net.location,
                cif=cif,
            )
        )

    # The flat format of Figure 3-4 lists every net as Local; user names
    # appear as aliases in the Net declarations.
    part.locals_ = [net_name[net.index] for net in circuit.nets]
    return Wirelist(
        name=name,
        defparts=[part],
        top=name,
        primitives=None if tech is None else primitives_for(tech),
    )


def geometry_to_cif(
    geometry: "list[tuple[str, Box]]", channel_layer: bool = False
) -> str:
    """Render a geometry list as the inline CIF strings the format uses.

    The paper prints ``L NX`` for channel geometry (a pseudo-layer) and
    the real mask layer otherwise.
    """
    chunks: list[str] = []
    for layer, box in geometry:
        name = "NX" if channel_layer else layer
        cx2, cy2 = box.xmin + box.xmax, box.ymin + box.ymax
        # Box centers landing on half coordinates are doubled per CIF
        # convention; our lambda grids keep them integral in practice.
        chunks.append(
            f"L {name}; B L{box.width} W{box.height} "
            f"C{cx2 // 2} {cy2 // 2};"
        )
    return " ".join(chunks)


def write_wirelist(wirelist: Wirelist) -> str:
    """Render a wirelist as text in the CMU format."""
    out = StringIO()
    out.write(f'(DefPart "{wirelist.name}"\n')
    for kind, exports in (wirelist.primitives or PRIMITIVE_PARTS).items():
        out.write(f" (DefPart {kind} (Export {' '.join(exports)}))\n")
    for part in wirelist.defparts:
        if len(wirelist.defparts) == 1 and part.name == wirelist.name:
            _write_body(out, part, indent=" ")
        else:
            out.write(f" (DefPart {part.name}\n")
            out.write(f"  (Exports {' '.join(part.exports)} )\n")
            _write_body(out, part, indent="  ")
            out.write(" )\n")
    if wirelist.top is not None and len(wirelist.defparts) > 1:
        out.write(f" (Part {wirelist.top} (Name Top))\n")
    out.write(")\n")
    return out.getvalue()


def _write_body(out: StringIO, part: DefPart, indent: str) -> None:
    for device in part.devices:
        out.write(f"{indent}(Part {device.kind} (InstName {device.inst_name})")
        if device.location:
            out.write(f" (Location {device.location[0]} {device.location[1]})")
        out.write("\n")
        out.write(
            f"{indent} (T Gate {device.gate or 'NONE'})"
            f" (T Source {device.source or 'NONE'})"
            f" (T Drain {device.drain or 'NONE'})\n"
        )
        if device.length is not None and device.width is not None:
            out.write(
                f"{indent} (Channel (Length {_num(device.length)}) "
                f"(Width {_num(device.width)})"
            )
            if device.channel_cif:
                out.write(f'\n{indent}  ( CIF " {device.channel_cif} ")')
            out.write(")")
        out.write(")\n")
    for sub in part.subparts:
        out.write(f"{indent}(Part {sub.part} (Name {sub.inst_name})")
        if sub.loc_offset:
            out.write(f" (LocOffset {sub.loc_offset[0]} {sub.loc_offset[1]})")
        out.write(")\n")
        for child, parent in sub.net_map.items():
            out.write(f"{indent}(Net {sub.inst_name}/{child} {parent})\n")
    for decl in part.nets:
        out.write(f"{indent}(Net {' '.join(decl.names)}")
        if decl.location:
            out.write(f" (Location {decl.location[0]} {decl.location[1]})")
        if decl.cif:
            out.write(f'\n{indent} ( CIF " {decl.cif} ")')
        out.write(")\n")
    out.write(f"{indent}(Local {' '.join(part.locals_)} )\n")


def _num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.2f}"
