"""Data model for the CMU hierarchical wirelist format.

The format (Frank, Ebeling & Sproull, CMU VLSI document V085) represents
circuits as *parts* and *nets* with a LISP-like syntax.  A flat ACE
wirelist is a single ``DefPart`` containing primitive transistor parts
and net declarations (Figure 3-4 of the paper); a HEXT wirelist nests
window ``DefPart``s that instantiate one another and equate nets across
their boundaries (Figure 2-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Export lists of the primitive NMOS transistor parts (the default
#: wirelist prolog; deck-compiled technologies may declare others).
PRIMITIVE_PARTS = {
    "nEnh": ("Source", "Gate", "Drain"),
    "nDep": ("Source", "Gate", "Drain"),
}

#: Every primitive part name the parser recognizes, across all decks.
KNOWN_PRIMITIVES = {
    **PRIMITIVE_PARTS,
    "pEnh": ("Source", "Gate", "Drain"),
}


def primitives_for(tech: object = None) -> dict:
    """The primitive-part prolog a technology's wirelists declare.

    Deck-compiled technologies declare one part per device type, in
    deck order; deckless (or ``None``) technologies keep the historical
    NMOS prolog.
    """
    deck = getattr(tech, "deck", None)
    if deck is None:
        return PRIMITIVE_PARTS
    return {
        rule.name: ("Source", "Gate", "Drain")
        for rule in deck.device_types
    }


@dataclass
class DeviceInstance:
    """A primitive transistor instance inside a DefPart."""

    kind: str  # "nEnh" | "nDep"
    inst_name: str  # D0, D1, ...
    gate: str | None
    source: str | None
    drain: str | None
    location: tuple[int, int] | None = None
    length: float | None = None
    width: float | None = None
    channel_cif: str | None = None

    def terminal(self, role: str) -> str | None:
        return {"Gate": self.gate, "Source": self.source, "Drain": self.drain}[
            role
        ]


@dataclass
class SubpartInstance:
    """An instance of another DefPart (HEXT window composition)."""

    part: str
    inst_name: str
    net_map: dict[str, str] = field(default_factory=dict)  # child -> parent
    loc_offset: tuple[int, int] | None = None


@dataclass
class NetDecl:
    """A ``(Net name alias... (Location x y) (CIF "..."))`` declaration.

    ``names`` holds the canonical name first, then aliases; a two-name
    declaration with no attributes is a pure equivalence, as used in the
    hierarchical format.
    """

    names: list[str]
    location: tuple[int, int] | None = None
    cif: str | None = None

    @property
    def canonical(self) -> str:
        return self.names[0]


@dataclass
class DefPart:
    """One circuit fragment definition."""

    name: str
    exports: list[str] = field(default_factory=list)
    devices: list[DeviceInstance] = field(default_factory=list)
    subparts: list[SubpartInstance] = field(default_factory=list)
    nets: list[NetDecl] = field(default_factory=list)
    locals_: list[str] = field(default_factory=list)

    def all_net_names(self) -> set[str]:
        names: set[str] = set(self.exports) | set(self.locals_)
        for decl in self.nets:
            names.update(decl.names)
        for device in self.devices:
            for net in (device.gate, device.source, device.drain):
                if net is not None:
                    names.add(net)
        for sub in self.subparts:
            names.update(sub.net_map.values())
        return names


@dataclass
class Wirelist:
    """A complete wirelist: DefParts in definition order plus a top part.

    ``top`` names the DefPart instantiated as the chip (the trailing
    ``(Part Window3 (Name Top))`` of Figure 2-2); for flat wirelists it is
    simply the single DefPart.
    """

    name: str
    defparts: list[DefPart] = field(default_factory=list)
    top: str | None = None
    #: primitive-part prolog; None means the NMOS PRIMITIVE_PARTS.
    primitives: dict | None = None

    def defpart(self, name: str) -> DefPart:
        for part in self.defparts:
            if part.name == name:
                return part
        raise KeyError(f"no DefPart named {name!r}")

    @property
    def top_part(self) -> DefPart:
        if self.top is not None:
            return self.defpart(self.top)
        if not self.defparts:
            raise ValueError("empty wirelist")
        return self.defparts[-1]
