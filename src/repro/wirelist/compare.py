"""Netlist comparison ("if the two are equivalent, the layout corresponds
to the original circuit" -- section 1 of the paper).

Equivalence is tested by Weisfeiler-Leman color refinement over the
bipartite device/net graph of the two circuits refined *jointly*, so
color identifiers are comparable across them.  Net names anchor the
refinement (a net named VDD can only match a net named VDD); source and
drain are treated as interchangeable, since extraction order must not
matter.  WL refinement is a complete decision procedure for the circuit
classes exercised here (anchored, sparse); for pathological symmetric
meshes it is a sound over-approximation: unequal multisets always mean
non-equivalent circuits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .flatten import FlatCircuit


@dataclass
class ComparisonReport:
    """Outcome of a netlist comparison."""

    equivalent: bool
    reason: str = ""
    device_counts: tuple[int, int] = (0, 0)
    net_counts: tuple[int, int] = (0, 0)


def netlists_equivalent(a: FlatCircuit, b: FlatCircuit) -> bool:
    return compare_netlists(a, b).equivalent


def compare_netlists(a: FlatCircuit, b: FlatCircuit) -> ComparisonReport:
    """Compare two flat circuits; see module docstring for semantics."""
    counts = (len(a.devices), len(b.devices))
    net_counts = (_used_nets(a), _used_nets(b))
    if counts[0] != counts[1]:
        return ComparisonReport(
            False,
            f"device counts differ: {counts[0]} vs {counts[1]}",
            counts,
            net_counts,
        )
    if net_counts[0] != net_counts[1]:
        return ComparisonReport(
            False,
            f"net counts differ: {net_counts[0]} vs {net_counts[1]}",
            counts,
            net_counts,
        )

    colors_a, colors_b = _joint_refinement(a, b)
    if Counter(colors_a[0]) != Counter(colors_b[0]):
        diff = _first_difference(colors_a[0], colors_b[0])
        return ComparisonReport(
            False, f"device structure differs ({diff})", counts, net_counts
        )
    if Counter(colors_a[1]) != Counter(colors_b[1]):
        return ComparisonReport(False, "net structure differs", counts, net_counts)
    return ComparisonReport(True, "", counts, net_counts)


def _used_nets(flat: FlatCircuit) -> int:
    used = set()
    for device in flat.devices:
        for net in (device.gate, device.source, device.drain):
            if net is not None:
                used.add(net)
    return len(used)


def _joint_refinement(a: FlatCircuit, b: FlatCircuit):
    """Refine both circuits with a shared color table.

    Returns ``((device_colors_a, net_colors_a), (device_colors_b,
    net_colors_b))`` where colors are small ints comparable across the
    two circuits.
    """
    sides = (a, b)
    # Initial net colors: sorted name tuple (names anchor the match).
    table: dict[object, int] = {}

    def intern(key: object) -> int:
        color = table.get(key)
        if color is None:
            color = len(table)
            table[key] = color
        return color

    net_colors = []
    dev_colors = []
    for flat in sides:
        nets: dict[int, tuple] = {}
        for device in flat.devices:
            for net in (device.gate, device.source, device.drain):
                if net is not None:
                    nets.setdefault(net, ())
        for net, names in flat.net_names.items():
            nets[net] = tuple(sorted(names))
        net_colors.append({net: intern(("net", key)) for net, key in nets.items()})
        dev_colors.append([intern(("dev", d.kind)) for d in flat.devices])

    def distinct() -> int:
        values = set()
        for side in (0, 1):
            values.update(dev_colors[side])
            values.update(net_colors[side].values())
        return len(values)

    rounds = 0
    previous_distinct = distinct()
    while True:
        rounds += 1
        new_dev_colors = []
        for side, flat in enumerate(sides):
            nc = net_colors[side]
            colors = []
            for device in flat.devices:
                gate = nc.get(device.gate, -1)
                sd = tuple(
                    sorted(
                        (nc.get(device.source, -1), nc.get(device.drain, -1))
                    )
                )
                colors.append(
                    intern(("dev", dev_colors[side][len(colors)], gate, sd))
                )
            new_dev_colors.append(colors)
        new_net_colors = []
        for side, flat in enumerate(sides):
            incident: dict[int, list[tuple[int, str]]] = {
                net: [] for net in net_colors[side]
            }
            for i, device in enumerate(flat.devices):
                color = new_dev_colors[side][i]
                if device.gate is not None:
                    incident[device.gate].append((color, "g"))
                if device.source is not None:
                    incident[device.source].append((color, "sd"))
                if device.drain is not None:
                    incident[device.drain].append((color, "sd"))
            new_net_colors.append(
                {
                    net: intern(
                        ("net", net_colors[side][net], tuple(sorted(edges)))
                    )
                    for net, edges in incident.items()
                }
            )
        dev_colors = new_dev_colors
        net_colors = new_net_colors
        now_distinct = distinct()
        if now_distinct == previous_distinct or rounds > max(
            8, len(a.devices).bit_length() * 4
        ):
            break
        previous_distinct = now_distinct

    return (
        (dev_colors[0], list(net_colors[0].values())),
        (dev_colors[1], list(net_colors[1].values())),
    )


def _first_difference(colors_a: list[int], colors_b: list[int]) -> str:
    ca, cb = Counter(colors_a), Counter(colors_b)
    only_a = sum((ca - cb).values())
    only_b = sum((cb - ca).values())
    return f"{only_a} device class(es) only in first, {only_b} only in second"
