"""Parse the LISP-like wirelist syntax back into the model.

The format "is easy to parse and extend because of its LISP like syntax"
(section 3); this module is the proof.  The reader is a standard
S-expression tokenizer; strings are double-quoted and may contain
semicolons (inline CIF).
"""

from __future__ import annotations

from .model import (
    KNOWN_PRIMITIVES,
    DefPart,
    DeviceInstance,
    NetDecl,
    SubpartInstance,
    Wirelist,
)


class WirelistParseError(Exception):
    """Raised when wirelist text does not follow the format."""


# ----------------------------------------------------------------------
# S-expressions
# ----------------------------------------------------------------------


def read_sexpr(text: str):
    """Parse one S-expression; atoms are strings, lists are Python lists."""
    tokens = _tokenize(text)
    expr, rest = _read(tokens, 0)
    if rest != len(tokens):
        raise WirelistParseError("trailing tokens after top-level expression")
    return expr


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = text.find('"', i + 1)
            if j == -1:
                raise WirelistParseError("unterminated string")
            tokens.append(text[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in '()"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _read(tokens: list[str], pos: int):
    if pos >= len(tokens):
        raise WirelistParseError("unexpected end of input")
    token = tokens[pos]
    if token == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _read(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise WirelistParseError("unbalanced '('")
        return items, pos + 1
    if token == ")":
        raise WirelistParseError("unbalanced ')'")
    return token, pos + 1


# ----------------------------------------------------------------------
# wirelist structure
# ----------------------------------------------------------------------


def parse_wirelist(text: str) -> Wirelist:
    """Parse wirelist text produced by :mod:`repro.wirelist.writer`."""
    expr = read_sexpr(text)
    if not isinstance(expr, list) or not expr or expr[0] != "DefPart":
        raise WirelistParseError("wirelist must start with (DefPart ...)")
    name = _unquote(expr[1])
    wirelist = Wirelist(name=name)

    # The outer DefPart may contain nested DefParts (primitives and
    # windows), Part instances, Nets and a Local list; any Part/Net/Local
    # content at the outer level forms an implicit DefPart of the same
    # name (the flat form of Figure 3-4).
    outer = DefPart(name=name)
    outer_used = False
    top: str | None = None
    for item in expr[2:]:
        if not isinstance(item, list) or not item:
            raise WirelistParseError(f"unexpected atom {item!r} in DefPart")
        head = item[0]
        if head == "DefPart":
            child_name = _unquote(item[1])
            if child_name in KNOWN_PRIMITIVES and _is_primitive_decl(item):
                continue  # primitive declarations carry no content
            wirelist.defparts.append(_parse_defpart(item))
        elif head == "Part":
            parsed = _parse_part(item, outer)
            if parsed is not None:
                top = parsed
            outer_used = True
        elif head in ("Net", "Local", "Exports", "Export"):
            _parse_body_item(item, outer)
            outer_used = True
        else:
            raise WirelistParseError(f"unknown form ({head} ...)")
    if outer_used and (outer.devices or outer.nets or outer.subparts):
        wirelist.defparts.append(outer)
        top = top or name
    wirelist.top = top or (wirelist.defparts[-1].name if wirelist.defparts else None)
    for part in wirelist.defparts:
        attach_net_equivalences(part)
    return wirelist


def _is_primitive_decl(item: list) -> bool:
    return all(
        isinstance(sub, list) and sub and sub[0] in ("Export", "Exports")
        for sub in item[2:]
    )


def _parse_defpart(expr: list) -> DefPart:
    part = DefPart(name=_unquote(expr[1]))
    for item in expr[2:]:
        if not isinstance(item, list) or not item:
            raise WirelistParseError(f"unexpected atom {item!r}")
        if item[0] == "Part":
            _parse_part(item, part)
        else:
            _parse_body_item(item, part)
    return part


def _parse_body_item(item: list, part: DefPart) -> None:
    head = item[0]
    if head in ("Exports", "Export"):
        part.exports.extend(a for a in item[1:] if isinstance(a, str))
    elif head == "Local":
        part.locals_.extend(a for a in item[1:] if isinstance(a, str))
    elif head == "Net":
        names = [a for a in item[1:] if isinstance(a, str)]
        location = None
        cif = None
        for sub in item[1:]:
            if isinstance(sub, list) and sub:
                if sub[0] == "Location":
                    location = (int(sub[1]), int(sub[2]))
                elif sub[0] == "CIF":
                    cif = _unquote(sub[1]).strip()
        part.nets.append(NetDecl(names=names, location=location, cif=cif))
    else:
        raise WirelistParseError(f"unknown form ({head} ...) in DefPart body")


def _parse_part(item: list, part: DefPart) -> str | None:
    """Parse a Part instance into ``part``.

    Returns the part name when this is the bare top-instantiation form
    ``(Part X (Name Top))``; otherwise None.
    """
    kind = item[1]
    attrs = {sub[0]: sub for sub in item[2:] if isinstance(sub, list) and sub}
    name_attr = attrs.get("Name") or attrs.get("InstName")
    inst_name = name_attr[1] if name_attr else f"anon{len(part.devices)}"

    if kind in KNOWN_PRIMITIVES:
        terminals: dict[str, str | None] = {"Gate": None, "Source": None, "Drain": None}
        for sub in item[2:]:
            if isinstance(sub, list) and sub and sub[0] == "T":
                role, net = sub[1], sub[2]
                role = {"G": "Gate", "S": "Source", "D": "Drain"}.get(role, role)
                terminals[role] = None if net == "NONE" else net
        location = None
        if "Location" in attrs:
            location = (int(attrs["Location"][1]), int(attrs["Location"][2]))
        elif "Loc" in attrs:
            location = (int(attrs["Loc"][1]), int(attrs["Loc"][2]))
        length = width = None
        channel_cif = None
        if "Channel" in attrs:
            for sub in attrs["Channel"][1:]:
                if isinstance(sub, list) and sub:
                    if sub[0] == "Length":
                        length = float(sub[1])
                    elif sub[0] == "Width":
                        width = float(sub[1])
                    elif sub[0] == "CIF":
                        channel_cif = _unquote(sub[1]).strip()
        part.devices.append(
            DeviceInstance(
                kind=kind,
                inst_name=inst_name,
                gate=terminals["Gate"],
                source=terminals["Source"],
                drain=terminals["Drain"],
                location=location,
                length=length,
                width=width,
                channel_cif=channel_cif,
            )
        )
        return None

    if inst_name == "Top" and len(item) == 3:
        return kind

    loc_offset = None
    if "LocOffset" in attrs:
        loc_offset = (int(attrs["LocOffset"][1]), int(attrs["LocOffset"][2]))
    part.subparts.append(
        SubpartInstance(part=kind, inst_name=inst_name, loc_offset=loc_offset)
    )
    return None


def attach_net_equivalences(part: DefPart) -> None:
    """Move ``inst/child -> parent`` Net declarations into subpart maps.

    The writer emits subpart net maps as ``(Net P1/N0 N13)`` lines; after
    parsing they sit in ``part.nets`` and this pass relocates them.
    """
    remaining: list[NetDecl] = []
    by_inst = {sub.inst_name: sub for sub in part.subparts}
    for decl in part.nets:
        if (
            len(decl.names) == 2
            and "/" in decl.names[0]
            and decl.location is None
            and decl.cif is None
        ):
            inst, child = decl.names[0].split("/", 1)
            sub = by_inst.get(inst)
            if sub is not None:
                sub.net_map[child] = decl.names[1]
                continue
        remaining.append(decl)
    part.nets = remaining


def _unquote(atom) -> str:
    if not isinstance(atom, str):
        raise WirelistParseError(f"expected atom, got {atom!r}")
    if atom.startswith('"') and atom.endswith('"') and len(atom) >= 2:
        return atom[1:-1]
    return atom
