"""The CMU hierarchical wirelist format: model, writer, parser,
flattener, and netlist comparator."""

from .compare import ComparisonReport, compare_netlists, netlists_equivalent
from .flatten import FlatCircuit, FlatDevice, circuit_to_flat, flatten
from .model import (
    KNOWN_PRIMITIVES,
    PRIMITIVE_PARTS,
    DefPart,
    DeviceInstance,
    NetDecl,
    SubpartInstance,
    Wirelist,
    primitives_for,
)
from .parser import WirelistParseError, parse_wirelist, read_sexpr
from .writer import geometry_to_cif, to_wirelist, write_wirelist

__all__ = [
    "KNOWN_PRIMITIVES",
    "PRIMITIVE_PARTS",
    "ComparisonReport",
    "DefPart",
    "DeviceInstance",
    "FlatCircuit",
    "FlatDevice",
    "NetDecl",
    "SubpartInstance",
    "Wirelist",
    "WirelistParseError",
    "circuit_to_flat",
    "compare_netlists",
    "flatten",
    "primitives_for",
    "geometry_to_cif",
    "netlists_equivalent",
    "parse_wirelist",
    "read_sexpr",
    "to_wirelist",
    "write_wirelist",
]
