"""Command-line interface: ``ace-extract``.

Mirrors how ACE was driven at CMU: point it at a CIF file, get a wirelist
on stdout (or to a file).  Options expose the paper's user-visible
features: geometry output per net/device, the hierarchical extractor,
extraction statistics, and the static checker.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import circuit_stats, static_check
from .cif import parse_file
from .core import extract_report
from .core.stripengine import ENGINE_CHOICES, EngineUnavailable
from .hext import hext_extract
from .hext.wirelist import to_hierarchical_wirelist
from .tech import NMOS
from .wirelist import to_wirelist, write_wirelist


def package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from . import __version__

        return __version__


def add_version_argument(parser: argparse.ArgumentParser) -> None:
    """Give ``parser`` the uniform ``--version`` flag every CLI shares."""
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ace-extract",
        description="Flat edge-based (and hierarchical) NMOS circuit "
        "extraction from CIF layouts.",
    )
    add_version_argument(parser)
    parser.add_argument("cif", help="input CIF file")
    parser.add_argument(
        "-o", "--output", help="wirelist output file (default: stdout)"
    )
    parser.add_argument(
        "--hierarchical",
        action="store_true",
        help="use the hierarchical extractor (HEXT) and emit a "
        "hierarchical wirelist",
    )
    parser.add_argument(
        "--geometry",
        action="store_true",
        help="include per-net and per-device geometry in the wirelist "
        "(flat mode only; suppressed by default, as in the paper)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="extract out-of-core: produce geometry in y-bands, retire "
        "finished nets/devices to a disk spill store, and emit the "
        "wirelist incrementally (flat mode only; output is "
        "byte-identical to the in-memory path)",
    )
    parser.add_argument(
        "--band-height",
        type=int,
        default=None,
        metavar="UNITS",
        help="streaming band height in layout units (default: one band, "
        "i.e. the in-memory schedule with streaming bookkeeping)",
    )
    parser.add_argument(
        "--spill",
        metavar="DIR",
        help="directory for streamed retired-state envelopes (default: "
        "<checkpoint>.spill, else a temporary directory)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="write a resume checkpoint at every streaming band boundary",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the streamed sweep recorded at --checkpoint if the "
        "checkpoint exists (same layout and options required); starts "
        "fresh otherwise",
    )
    parser.add_argument(
        "--lambda",
        dest="lambda_",
        type=int,
        default=None,
        metavar="CENTIMICRONS",
        help="process lambda in centimicrons (default 250)",
    )
    parser.add_argument(
        "--deck",
        default="nmos",
        metavar="NAME|PATH",
        help="technology deck: a builtin name (nmos, cmos) or a deck "
        "JSON file (default nmos)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="strip-batch engine for the scanline core: 'numpy' "
        "vectorizes per-strip work (requires the repro[fast] extra), "
        "'python' is the dependency-free reference, 'auto' picks numpy "
        "when importable (default).  Wirelists are byte-identical "
        "either way.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="extract unique windows over N worker processes "
        "(hierarchical mode; 0 = one per CPU; default serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent fragment cache directory; repeated hierarchical "
        "runs skip extraction of unchanged windows",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print extraction statistics to stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the scanline host's phases (schedule/expire/insert/"
        "strip/finalize) and print the per-phase breakdown to stderr "
        "(flat and --stream modes)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the static checker and print diagnostics to stderr",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the design-rule checker (sharing the extraction "
        "scanline in flat mode) and print diagnostics to stderr",
    )
    parser.add_argument(
        "--vdd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra VDD rail name for --check (repeatable, "
        "case-insensitive)",
    )
    parser.add_argument(
        "--gnd",
        action="append",
        default=None,
        metavar="NAME",
        help="extra GND rail name for --check (repeatable, "
        "case-insensitive)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="print an ASCII rendering of the artwork to stderr",
    )
    parser.add_argument(
        "--svg",
        metavar="PATH",
        help="write an SVG rendering of the artwork to PATH",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.deck == "nmos":
        tech = NMOS(args.lambda_) if args.lambda_ else NMOS()
    else:
        from .lint import resolve_deck
        from .tech import DeckError, compile_deck

        try:
            tech = compile_deck(resolve_deck(args.deck, args.lambda_))
        except (DeckError, KeyError, OSError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: --deck {args.deck}: {message}", file=sys.stderr)
            return 2
    layout = parse_file(args.cif)
    name = args.cif.rsplit("/", 1)[-1]
    drc_checker = None
    if args.lint:
        from .drc import DrcChecker

        drc_checker = DrcChecker(tech)

    if args.plot or args.svg:
        from .plot import ascii_plot, svg_plot

        if args.plot:
            print(ascii_plot(layout), file=sys.stderr)
        if args.svg:
            svg_plot(layout, args.svg)

    started = time.perf_counter()
    try:
        return _run_extraction(args, tech, layout, name, drc_checker, started)
    except EngineUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _print_profile(stats) -> None:
    """The ``--profile`` stderr line: per-phase seconds plus shares."""
    profile = getattr(stats, "profile", None)
    if not profile:
        return
    total = sum(profile.values())
    parts = ", ".join(
        f"{phase} {seconds:.3f}s"
        f" ({100.0 * seconds / total:.0f}%)" if total else f"{phase} 0s"
        for phase, seconds in profile.items()
    )
    print(f"ace profile: {parts}", file=sys.stderr)


def _run_extraction(args, tech, layout, name, drc_checker, started) -> int:
    if args.stream:
        return _run_streaming(args, tech, layout, name, drc_checker, started)
    if args.resume or args.checkpoint or args.band_height or args.spill:
        print(
            "note: --band-height/--spill/--checkpoint/--resume only "
            "apply with --stream",
            file=sys.stderr,
        )
    if args.hierarchical:
        if args.profile:
            print(
                "note: --profile times the flat scanline host and does "
                "not apply with --hierarchical",
                file=sys.stderr,
            )
        result = hext_extract(
            layout, tech, jobs=args.jobs, cache=args.cache,
            engine=args.engine,
        )
        circuit = result.circuit
        wirelist = to_hierarchical_wirelist(result, name=name)
        if args.stats:
            stats = result.stats
            print(
                f"hext: {stats.flat_calls} flat calls, "
                f"{stats.compose_calls} composes, "
                f"{stats.memo_hits} memo hits, "
                f"front-end {stats.frontend_seconds:.2f}s, "
                f"back-end {stats.backend_seconds:.2f}s",
                file=sys.stderr,
            )
            if args.jobs is not None:
                print(
                    f"hext: {stats.jobs} jobs, in-worker extraction "
                    f"{stats.worker_seconds:.2f}s",
                    file=sys.stderr,
                )
            if args.cache is not None:
                print(
                    f"hext: fragment cache {stats.cache_hits} hits, "
                    f"{stats.cache_misses} misses "
                    f"({stats.cache_invalid} invalid), "
                    f"hit rate {100 * stats.cache_hit_rate:.0f}%",
                    file=sys.stderr,
                )
    else:
        if args.jobs is not None or args.cache is not None:
            print(
                "note: --jobs/--cache parallelize unique-window "
                "extraction and only apply with --hierarchical; the "
                "flat scanline is serial",
                file=sys.stderr,
            )
        report = extract_report(
            layout, tech, keep_geometry=args.geometry,
            jobs=args.jobs, cache=args.cache,
            strip_consumers=(drc_checker,) if drc_checker else (),
            engine=args.engine, profile=args.profile,
        )
        circuit = report.circuit
        if args.profile:
            _print_profile(report.stats)
        wirelist = to_wirelist(
            circuit, name=name, include_geometry=args.geometry, tech=tech
        )
        if args.stats:
            scan = report.stats
            print(
                f"ace: {scan.boxes_in} boxes, {scan.stops} scanline stops, "
                f"mean active {scan.mean_active:.1f}, "
                f"peak active {scan.peak_active}",
                file=sys.stderr,
            )
            print(
                f"ace events: {scan.heap_pushes} heap pushes, "
                f"{scan.heap_pops} pops ({scan.lazy_discards} lazy), "
                f"{scan.expired} expired intervals, "
                f"max {scan.max_stop_overhead} scans/stop beyond removals",
                file=sys.stderr,
            )
    elapsed = time.perf_counter() - started

    text = write_wirelist(wirelist)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    if args.stats:
        summary = circuit_stats(circuit)
        rate = summary.devices / elapsed if elapsed else 0.0
        print(
            f"{summary.devices} devices, {summary.nets} nets in "
            f"{elapsed:.2f}s ({rate:.0f} devices/sec)",
            file=sys.stderr,
        )
    for warning in circuit.warnings:
        print(f"warning: {warning}", file=sys.stderr)

    failed = False
    if drc_checker is not None:
        from .diagnostics import SourceIndex, format_diagnostic

        if args.hierarchical:
            # The hierarchical extractor works window by window; the DRC
            # needs the whole-chip strip feed, so run one flat pass.
            extract_report(
                layout, tech, strip_consumers=(drc_checker,),
                engine=args.engine,
            )
        lint_report = drc_checker.report(artifact=name)
        if lint_report.diagnostics:
            lint_report = SourceIndex(layout).attribute(lint_report)
        for diag in lint_report.diagnostics:
            print(format_diagnostic(diag), file=sys.stderr)
        print(
            f"lint: {len(lint_report.errors)} error(s)", file=sys.stderr
        )
        if not lint_report.ok:
            failed = True

    if args.check:
        erc = tech.deck.erc
        report = static_check(
            circuit,
            tech=tech,
            vdd_names=tuple(erc.vdd_names) + tuple(args.vdd or ()),
            gnd_names=tuple(erc.gnd_names) + tuple(args.gnd or ()),
        )
        for diag in report.diagnostics:
            print(f"{diag.severity.value}: [{diag.rule}] {diag.message}", file=sys.stderr)
        if not report.ok:
            failed = True
    return 1 if failed else 0


def _run_streaming(args, tech, layout, name, drc_checker, started) -> int:
    """The --stream path: banded out-of-core extraction."""
    from .streaming import stream_extract

    if args.hierarchical:
        print(
            "error: --stream is flat-only; it cannot be combined with "
            "--hierarchical",
            file=sys.stderr,
        )
        return 2
    if args.check:
        print(
            "error: --check needs the in-memory circuit; run it without "
            "--stream",
            file=sys.stderr,
        )
        return 2
    if args.jobs is not None or args.cache is not None:
        print(
            "note: --jobs/--cache only apply with --hierarchical; the "
            "streamed scanline is serial",
            file=sys.stderr,
        )

    def run(out) -> "tuple[int, int, list[str]]":
        report = stream_extract(
            layout,
            tech,
            name=name,
            out=out,
            keep_geometry=args.geometry,
            engine=args.engine,
            band_height=args.band_height,
            spill_dir=args.spill,
            checkpoint=args.checkpoint,
            resume="auto" if args.resume else False,
            strip_consumers=(drc_checker,) if drc_checker else (),
            profile=args.profile,
        )
        if args.profile:
            _print_profile(report.stats)
        if args.stats:
            scan = report.stats
            print(
                f"ace: {scan.boxes_in} boxes, {scan.stops} scanline "
                f"stops, mean active {scan.mean_active:.1f}, "
                f"peak active {scan.peak_active}",
                file=sys.stderr,
            )
            print(
                f"ace events: {scan.heap_pushes} heap pushes, "
                f"{scan.heap_pops} pops ({scan.lazy_discards} lazy), "
                f"{scan.expired} expired intervals, "
                f"max {scan.max_stop_overhead} scans/stop beyond removals",
                file=sys.stderr,
            )
            resumed = " (resumed)" if report.resumed else ""
            print(
                f"stream: {report.bands} bands, band height "
                f"{args.band_height or 'whole-chip'}, "
                f"engine {report.engine}{resumed}",
                file=sys.stderr,
            )
        return report.devices, report.nets, report.warnings

    if args.output:
        with open(args.output, "w") as handle:
            devices, nets, warnings = run(handle)
    else:
        devices, nets, warnings = run(sys.stdout)

    if args.stats:
        elapsed = time.perf_counter() - started
        rate = devices / elapsed if elapsed else 0.0
        print(
            f"{devices} devices, {nets} nets in "
            f"{elapsed:.2f}s ({rate:.0f} devices/sec)",
            file=sys.stderr,
        )
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)

    failed = False
    if drc_checker is not None:
        from .diagnostics import SourceIndex, format_diagnostic

        lint_report = drc_checker.report(artifact=name)
        if lint_report.diagnostics:
            lint_report = SourceIndex(layout).attribute(lint_report)
        for diag in lint_report.diagnostics:
            print(format_diagnostic(diag), file=sys.stderr)
        print(f"lint: {len(lint_report.errors)} error(s)", file=sys.stderr)
        if not lint_report.ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
