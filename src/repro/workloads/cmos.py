"""Leaf cells for the p-well CMOS deck.

Same composition style as the NMOS cells in :mod:`.cells`, but in the
complementary idiom: vertical poly gate columns cross two horizontal
diffusion strips -- the lower one inside the p-well (n-channel devices),
the upper one outside it (p-channel) -- with metal rails top and bottom.
All cells are DRC-clean under the CMOS deck; the deliberate exception is
:func:`pseudo_nmos_inverter`, whose p-channel load has its gate tied to
GND so the complementary-pair ERC has a planted violation to catch.
"""

from __future__ import annotations

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder, SymbolBuilder

#: CMOS inverter footprint in lambda (width, height), rails included.
CMOS_INVERTER_SIZE = (14, 28)


def build_cmos_inverter_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """A CMOS inverter: one poly column gating an n and a p device.

    Local coordinates run x in [-6, 8], y in [-1, 27] lambda.  The
    n-channel strip sits inside the p-well near the GND rail; the
    p-channel strip sits in the bare substrate near the VDD rail; OUT
    metal ties the two drains on the right, the sources contact their
    rails through stubs on the left.
    """
    cell = builder.new_symbol()
    # p-well around the n-channel device (2-lambda coverage margin).
    cell.box("CW", -2, 2, 6, 8)
    # Diffusion strips: n (in well) and p (outside it).
    cell.box("CD", -4, 4, 6, 6)
    cell.box("CD", -4, 16, 6, 20)
    # The input gate column crossing both strips.
    cell.box("CP", 0, 1, 2, 23)
    # GND rail plus the n-source stub and contact.
    cell.box("CM", -6, -1, 8, 2)
    cell.box("CM", -5, -1, -1, 7)
    cell.box("CC", -4, 4, -2, 6)
    # VDD rail plus the p-source stub and contact.
    cell.box("CM", -6, 24, 8, 27)
    cell.box("CM", -5, 16, -1, 25)
    cell.box("CC", -4, 17, -2, 19)
    # OUT column tying the two drains.
    cell.box("CM", 3, 4, 7, 20)
    cell.box("CC", 4, 4, 6, 6)
    cell.box("CC", 4, 17, 6, 19)
    # Net names.
    cell.label("VDD", 0, 26, "CM")
    cell.label("GND", 0, 0, "CM")
    cell.label("IN", 1, 12, "CP")
    cell.label("OUT", 5, 10, "CM")
    return cell


def cmos_inverter(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A standalone CMOS inverter chip."""
    builder = LayoutBuilder(lambda_)
    cell = build_cmos_inverter_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()


def build_cmos_nand2_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """A CMOS two-input NAND: series n pair, parallel p pair.

    Local coordinates run x in [-6, 14], y in [-1, 27] lambda.  Gate
    columns A and B cross both strips; on the n strip GND contacts the
    left segment and OUT the right one (A and B in series); on the p
    strip VDD contacts the middle segment and OUT the two outer ones
    (A and B in parallel), with the left drain routed to the right on
    a metal bar between the strips.
    """
    cell = builder.new_symbol()
    cell.box("CW", -2, 2, 10, 8)
    cell.box("CD", -4, 4, 12, 6)
    cell.box("CD", -4, 16, 12, 20)
    # Gate columns A (left) and B (right).
    cell.box("CP", 0, 1, 2, 23)
    cell.box("CP", 6, 1, 8, 23)
    # GND rail and the n-source stub.
    cell.box("CM", -6, -1, 14, 2)
    cell.box("CM", -5, -1, -1, 7)
    cell.box("CC", -4, 4, -2, 6)
    # VDD rail and the p-source stub onto the middle p segment.
    cell.box("CM", -6, 24, 14, 27)
    cell.box("CM", 2, 16, 6, 25)
    cell.box("CC", 3, 17, 5, 19)
    # OUT: right column over the n drain and right p drain, plus the
    # left p drain picked up by a stub and a bar below the p strip.
    cell.box("CM", 9, 3, 13, 20)
    cell.box("CC", 10, 4, 12, 6)
    cell.box("CC", 10, 17, 12, 19)
    cell.box("CM", -5, 9, -1, 20)
    cell.box("CC", -4, 17, -2, 19)
    cell.box("CM", -5, 9, 13, 13)
    # Net names.
    cell.label("VDD", 0, 26, "CM")
    cell.label("GND", 0, 0, "CM")
    cell.label("A", 1, 14, "CP")
    cell.label("B", 7, 14, "CP")
    cell.label("OUT", 11, 10, "CM")
    return cell


def cmos_nand2(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A standalone CMOS two-input NAND chip."""
    builder = LayoutBuilder(lambda_)
    cell = build_cmos_nand2_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()


def build_pseudo_nmos_inverter_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """A ratioed pseudo-NMOS inverter: the planted ERC violation.

    Structurally the CMOS inverter, except the p-channel device has its
    own gate column tied to GND through a metal strap on the right --
    an always-on load.  DRC-clean, but the complementary-pair ERC must
    flag the p device whose gate sits on a rail (``erc.pseudo-nmos``).
    """
    cell = builder.new_symbol()
    cell.box("CW", -2, 2, 6, 8)
    cell.box("CD", -4, 4, 6, 6)
    cell.box("CD", -4, 16, 6, 20)
    # The input gates only the n device.
    cell.box("CP", 0, 1, 2, 11)
    # The p load's gate column, tied to GND via the top tab and strap.
    cell.box("CP", 0, 14, 2, 23)
    cell.box("CP", 0, 21, 12, 23)
    cell.box("CC", 10, 21, 12, 23)
    cell.box("CM", 9, -1, 13, 24)
    # GND rail (reaching the strap) plus the n-source stub.
    cell.box("CM", -6, -1, 13, 2)
    cell.box("CM", -5, -1, -1, 7)
    cell.box("CC", -4, 4, -2, 6)
    # VDD rail plus the p-source stub.
    cell.box("CM", -6, 26, 8, 29)
    cell.box("CM", -5, 16, -1, 27)
    cell.box("CC", -4, 17, -2, 19)
    # OUT column tying the two drains.
    cell.box("CM", 3, 4, 7, 20)
    cell.box("CC", 4, 4, 6, 6)
    cell.box("CC", 4, 17, 6, 19)
    # Net names.
    cell.label("VDD", 0, 28, "CM")
    cell.label("GND", 0, 0, "CM")
    cell.label("IN", 1, 9, "CP")
    cell.label("OUT", 5, 10, "CM")
    return cell


def pseudo_nmos_inverter(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A standalone pseudo-NMOS inverter chip (deliberate ERC bait)."""
    builder = LayoutBuilder(lambda_)
    cell = build_pseudo_nmos_inverter_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()
