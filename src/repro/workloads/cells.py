"""Leaf cells used throughout the examples, tests, and chip generators.

The inverter here reproduces the structure of Figure 3-3 of the paper: an
enhancement pulldown gated by the input poly, a depletion pullup whose
gate is tied to the output through a buried contact, metal VDD/GND rails,
and labels naming the four nets.
"""

from __future__ import annotations

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder, SymbolBuilder

#: Inverter cell footprint in lambda (width, height), rails included.
INVERTER_SIZE = (10, 30)


def build_inverter_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """Define the inverter as a symbol inside ``builder``'s layout.

    Local coordinates run x in [-4, 6] and y in [0, 30] lambda.  Exports:
    VDD rail (metal, top), GND rail (metal, bottom), IN (poly, extends to
    both cell edges), OUT (diffusion, mid).  The 2x2 pulldown under the
    8x2 depletion load gives the canonical 4:1 NMOS inverter ratio.
    """
    cell = builder.new_symbol()
    # Diffusion spine from GND contact to VDD contact.
    cell.box("ND", 0, 1, 2, 29)
    # GND rail, contact to diffusion bottom.
    cell.box("NM", -4, 0, 6, 4)
    cell.box("NC", 0, 1, 2, 3)
    # Enhancement gate: poly crossing the spine, reaching the cell edges.
    cell.box("NP", -4, 6, 6, 8)
    # Depletion pullup: buried contact ties the gate poly to the output.
    cell.box("NP", 0, 13, 2, 16)  # poly tab down to the buried contact
    cell.box("NB", 0, 13, 2, 16)
    cell.box("NP", -1, 16, 3, 24)  # depletion gate, 8 lambda long
    cell.box("NI", -2, 15, 4, 25)  # implant makes it a depletion device
    # VDD rail, contact to diffusion top.
    cell.box("NC", 0, 27, 2, 29)
    cell.box("NM", -4, 26, 6, 30)
    # Net names.
    cell.label("VDD", 1, 28, "NM")
    cell.label("GND", 1, 2, "NM")
    cell.label("OUT", 1, 10, "ND")
    cell.label("IN", -3, 7, "NP")
    return cell


def inverter(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A standalone inverter chip (one cell instantiated at the origin)."""
    builder = LayoutBuilder(lambda_)
    cell = build_inverter_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()


#: Chain-cell footprint in lambda (width, height).
CHAIN_CELL_SIZE = (10, 26)


def build_chain_inverter_cell(
    builder: LayoutBuilder,
    *,
    gate_y: int = 6,
    load_length: int = 4,
) -> SymbolBuilder:
    """An inverter cell that composes into chains by horizontal abutment.

    Footprint x in [0, 10], y in [0, 26] lambda.  The input arrives as
    metal at the left edge (dropping onto the gate poly through a
    contact); the output leaves as metal at the right edge, so placing
    cells at 10-lambda pitch builds an inverter chain.  VDD/GND rails run
    the full width and abut as well.

    ``gate_y`` (pulldown gate bottom, 5..7) and ``load_length`` (pullup
    channel length in lambda, 3..5) jitter the artwork without changing
    the circuit -- the chip generators use this to make layouts that are
    *structurally* irregular, which is what defeats hierarchical
    extraction (HEXT paper, section 5).
    """
    if not 5 <= gate_y <= 7:
        raise ValueError(f"gate_y {gate_y} outside jitter range 5..7")
    if not 3 <= load_length <= 5:
        raise ValueError(f"load_length {load_length} outside jitter range 3..5")
    cell = builder.new_symbol()
    dep_top = 16 + load_length
    # Diffusion spine.
    cell.box("ND", 4, 1, 6, 25)
    # GND rail and contact.
    cell.box("NM", 0, 0, 10, 4)
    cell.box("NC", 4, 1, 6, 3)
    # Input: metal stub at the left edge, contact down to the gate poly.
    cell.box("NM", 0, 8, 3, 12)
    cell.box("NC", 1, 9, 3, 11)
    cell.box("NP", 1, gate_y, 3, 11)  # poly tab under the input contact
    # Pulldown gate crossing the spine.
    cell.box("NP", 1, gate_y, 7, gate_y + 2)
    # Output: contact from the spine onto metal reaching the right edge.
    cell.box("NC", 4, 9, 6, 11)
    cell.box("NM", 4, 8, 10, 12)
    # Depletion pullup with buried gate-source tie.
    cell.box("NP", 4, 13, 6, 16)
    cell.box("NB", 4, 13, 6, 16)
    cell.box("NP", 3, 16, 7, dep_top)
    cell.box("NI", 2, 15, 8, dep_top + 1)
    # VDD rail and contact.
    cell.box("NC", 4, 22, 6, 24)
    cell.box("NM", 0, 22, 10, 26)
    return cell


def build_nand2_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """A two-input NAND: series pulldowns under one depletion load.

    Local coordinates x in [-6, 8], y in [0, 30] lambda.  Inputs A and B
    are the two poly gates (labeled at the left ends); OUT is the
    diffusion between the upper gate and the load; rails as usual.
    """
    cell = builder.new_symbol()
    cell.box("ND", 0, 1, 2, 29)
    cell.box("NM", -6, 0, 8, 4)
    cell.box("NC", 0, 1, 2, 3)
    # Series gates A (lower) and B (upper).
    cell.box("NP", -6, 6, 8, 8)
    cell.box("NP", -6, 10, 8, 12)
    # Buried tie and an 8-lambda load (ratio 2 per driver; the series
    # pair presents 2 squares, keeping the 4:1 composite ratio).
    cell.box("NP", 0, 15, 2, 18)
    cell.box("NB", 0, 15, 2, 18)
    cell.box("NP", -1, 18, 3, 26)
    cell.box("NI", -2, 17, 4, 27)
    cell.box("NC", 0, 27, 2, 29)
    cell.box("NM", -6, 26, 8, 30)
    cell.label("VDD", 1, 28, "NM")
    cell.label("GND", 1, 2, "NM")
    cell.label("A", -5, 7, "NP")
    cell.label("B", -5, 11, "NP")
    cell.label("OUT", 1, 13, "ND")
    return cell


def nand2(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A standalone two-input NAND gate chip."""
    builder = LayoutBuilder(lambda_)
    cell = build_nand2_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()


def build_transistor_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """The minimal cell of HEXT's Table 4-1: one transistor.

    A horizontal poly line crossing a vertical diffusion line, entirely
    inside the cell, with both lines reaching the cell boundary so that
    abutting cells connect.  Cell footprint: 8 x 8 lambda.
    """
    cell = builder.new_symbol()
    cell.box("ND", 3, 0, 5, 8)
    cell.box("NP", 0, 3, 8, 5)
    return cell


def single_transistor(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    builder = LayoutBuilder(lambda_)
    cell = build_transistor_cell(builder)
    builder.top.call(cell, 0, 0)
    return builder.done()
