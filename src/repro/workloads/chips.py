"""The synthetic chip suite standing in for Table 5-1's designs.

The paper's chips (cherry, dchip, schip2, testram, psc, scheme81, riscb)
were ARPA-community designs that are not archived; what the experiments
depend on is not their mask art but their *statistics*: device count,
boxes per device, and -- for the HEXT tables -- how regular the layout
is.  Each generator here is tuned along those axes:

* ``regular`` -- rows of one shared inverter-chain cell (cherry-like);
* ``array``   -- a dense transistor mesh plus a driver periphery, the
  memory-chip profile of testram;
* ``mixed``   -- a regular array block over irregular logic rows
  (dchip / scheme81 / riscb: datapath plus control);
* ``irregular`` -- per-row symbols, jittered cell variants, ragged row
  lengths (schip2 / psc), the profile on which HEXT loses to flat ACE.

``scale`` shrinks device counts for laptop-budget runs: a pure-Python
extractor is two-plus orders of magnitude slower per box than 1983 C, so
the default benchmarks run at ``scale=1/16`` and report the measured
counts alongside the paper's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder, SymbolBuilder
from .cells import CHAIN_CELL_SIZE, build_chain_inverter_cell


@dataclass(frozen=True)
class ChipSpec:
    """One entry of the synthetic suite."""

    name: str
    paper_devices: int
    paper_boxes_thousands: float
    style: str  # regular | array | mixed | irregular
    seed: int


CHIP_SPECS: tuple[ChipSpec, ...] = (
    ChipSpec("cherry", 881, 7.4, "regular", seed=1),
    ChipSpec("dchip", 4884, 50.7, "mixed", seed=2),
    ChipSpec("schip2", 9473, 109.0, "irregular", seed=3),
    ChipSpec("testram", 20480, 196.9, "array", seed=4),
    ChipSpec("psc", 25521, 251.5, "irregular", seed=5),
    ChipSpec("scheme81", 32031, 418.3, "mixed", seed=6),
    ChipSpec("riscb", 42084, 533.0, "mixed", seed=7),
)

SPEC_BY_NAME = {spec.name: spec for spec in CHIP_SPECS}

_CELL_W, _CELL_H = CHAIN_CELL_SIZE
_ROW_PITCH = _CELL_H + 2


def build_chip(
    name: str,
    scale: float = 1.0,
    lambda_: int = DEFAULT_LAMBDA,
    seed: "int | None" = None,
) -> Layout:
    """Build the named suite chip at the given device-count scale.

    ``seed`` overrides the spec's fixed seed, letting callers (the
    differential harness in particular) draw fresh jitter/strap layouts
    of the same statistical profile; ``None`` keeps the canonical chip
    so benchmarks and golden comparisons stay reproducible.
    """
    spec = SPEC_BY_NAME.get(name)
    if spec is None:
        raise KeyError(f"unknown chip {name!r}; choose from {sorted(SPEC_BY_NAME)}")
    target = max(8, int(spec.paper_devices * scale))
    rng = random.Random(spec.seed if seed is None else seed)
    # Suite chips draw on a 2-lambda grid: hand-drawn 1983 layouts used
    # boxes well above minimum feature size ("the average size of a box
    # used in the layout is much larger than size of the grid square",
    # section 5), which is precisely what separates the edge-based
    # extractor from the per-grid-cell raster scan.
    builder = LayoutBuilder(lambda_ * 2)
    if spec.style == "regular":
        _regular_block(builder, builder.top, target, origin=(0, 0))
    elif spec.style == "array":
        _array_block(builder, target, rng)
    elif spec.style == "mixed":
        _mixed_chip(builder, target, rng, spec.name)
    elif spec.style == "irregular":
        _irregular_block(builder, builder.top, target, rng, origin=(0, 0))
    else:  # pragma: no cover - specs are static
        raise AssertionError(spec.style)
    return builder.done()


def chip_suite(
    scale: float = 1.0,
    names: "tuple[str, ...] | None" = None,
    seed: "int | None" = None,
) -> dict[str, Layout]:
    """Build all (or the named subset of) suite chips.

    A non-None ``seed`` reseeds every chip as ``seed + spec.seed`` so the
    suite varies together while the chips stay mutually distinct.
    """
    selected = names or tuple(spec.name for spec in CHIP_SPECS)
    return {
        name: build_chip(
            name,
            scale,
            seed=None if seed is None else seed + SPEC_BY_NAME[name].seed,
        )
        for name in selected
    }


# ----------------------------------------------------------------------
# block generators
# ----------------------------------------------------------------------


def _grid_for(target_cells: int, aspect: float = 2.0) -> tuple[int, int]:
    """rows x cols covering ``target_cells``, with cols ~ aspect * rows."""
    rows = max(1, round(math.sqrt(target_cells / aspect)))
    cols = max(1, round(target_cells / rows))
    return rows, cols


def _regular_block(
    builder: LayoutBuilder,
    parent: SymbolBuilder,
    target_devices: int,
    origin: tuple[int, int],
) -> int:
    """Rows of a shared chain cell; returns the block height in lambda."""
    rows, cols = _grid_for(target_devices // 2)
    cell = build_chain_inverter_cell(builder)
    row = builder.new_symbol()
    for j in range(cols):
        row.call(cell, j * _CELL_W, 0)
    ox, oy = origin
    for i in range(rows):
        parent.call(row, ox, oy + i * _ROW_PITCH)
    _label_rows(parent, rows, cols, origin)
    return rows * _ROW_PITCH


def _irregular_block(
    builder: LayoutBuilder,
    parent: SymbolBuilder,
    target_devices: int,
    rng: random.Random,
    origin: tuple[int, int],
    strap_density: float = 1 / 3,
) -> int:
    """Per-row symbols with jittered cell variants and ragged lengths.

    Every row is a distinct symbol containing a distinct variant
    sequence; a hierarchical extractor finds almost nothing to memoize
    above the single-cell level and pays for thousands of composes.
    """
    rows, cols = _grid_for(target_devices // 2, aspect=3.0)
    variants: dict[tuple[int, int], SymbolBuilder] = {}

    def variant(gate_y: int, load_length: int) -> SymbolBuilder:
        key = (gate_y, load_length)
        cached = variants.get(key)
        if cached is None:
            cached = build_chain_inverter_cell(
                builder, gate_y=gate_y, load_length=load_length
            )
            variants[key] = cached
        return cached

    ox, oy = origin
    made = 0
    i = 0
    max_cols = 0
    while made < target_devices // 2:
        row_cols = max(2, cols + rng.randint(-cols // 4, cols // 4))
        max_cols = max(max_cols, row_cols)
        row = builder.new_symbol()
        for j in range(row_cols):
            cell = variant(rng.randint(5, 7), rng.randint(3, 5))
            row.call(cell, j * _CELL_W, 0)
        jitter_x = rng.randint(0, 4)
        parent.call(row, ox + jitter_x, oy + i * _ROW_PITCH)
        _label_rows(parent, 1, row_cols, (ox + jitter_x, oy + i * _ROW_PITCH), i)
        made += row_cols
        i += 1
    _overlay_straps(
        parent, rng, origin, rows=i, width_cells=max_cols,
        density=strap_density,
    )
    return i * _ROW_PITCH


#: Within-cell x offsets (lambda) where a vertical strap cannot cross a
#: transistor channel under ANY row jitter of 0..4 (the diffusion spine
#: runs at x 4..6 within the cell; a 2-wide strap at offset p overlaps it
#: in a row shifted by j iff p - j falls strictly inside (2, 6)).
_SAFE_STRAP_OFFSETS = (0, 1, 2)


def _overlay_straps(
    parent: SymbolBuilder,
    rng: random.Random,
    origin: tuple[int, int],
    rows: int,
    width_cells: int,
    density: float = 1 / 3,
) -> None:
    """Scatter electrically-inert implant straps over an irregular block.

    Full-custom control logic routes over its cells; for a hierarchical
    extractor the consequence is that window contents stop repeating
    ("the front-end divides these structures into a large number of
    small distinct windows", HEXT section 5).  The straps are vertical
    implant lines placed so they never cross a channel: they change no
    netlist, but they individualize the windows they overlay, which is
    the property that makes schip2/psc-class designs HEXT's bad case.
    """
    ox, oy = origin
    straps = max(1, int(rows * width_cells * density))
    for _ in range(straps):
        cell_index = rng.randrange(max(1, width_cells))
        offset = rng.choice(_SAFE_STRAP_OFFSETS)
        x = ox + cell_index * _CELL_W + offset
        start_row = rng.randrange(max(1, rows))
        span = min(rows - start_row, rng.randint(1, 3))
        y0 = oy + start_row * _ROW_PITCH
        y1 = oy + (start_row + span) * _ROW_PITCH - 2
        parent.box("NI", x, y0, x + 2, y1)


def _array_block(
    builder: LayoutBuilder, target_devices: int, rng: random.Random
) -> None:
    """A memory-style chip: transistor mesh core plus a driver periphery.

    ~90% of devices are the regular core (one shared row-of-cells
    symbol), ~10% are a chain-cell periphery, echoing testram.
    """
    core_target = int(target_devices * 0.9)
    # Memory arrays are drawn by doubling a block (cell -> pair -> quad
    # -> ...), the same binary-tree structure as HEXT Table 4-1's ideal
    # arrays -- which is what makes testram the hierarchical extractor's
    # best case in Table 5-1.
    n_side = 1
    while (2 * n_side) ** 2 <= core_target:
        n_side *= 2
    current = _ram_cell(builder)
    width = height = 8  # lambda units of the builder's grid
    cells = 1
    while cells < n_side * n_side:
        parent = builder.new_symbol()
        parent.call(current, 0, 0)
        if width <= height:
            parent.call(current, width, 0)
            width *= 2
        else:
            parent.call(current, 0, height)
            height *= 2
        current = parent
        cells *= 2
    builder.top.call(current, 0, 0)
    periphery_y = n_side * 8 + 4
    _regular_block(
        builder,
        builder.top,
        target_devices - n_side * n_side,
        origin=(0, periphery_y),
    )


#: Mixed-chip profiles: (datapath share of devices, control strap density).
#: Tuned so the win/loss pattern of HEXT Table 5-1 lands where the paper
#: put it: dchip a modest hierarchical win, riscb a substantial one.
_MIXED_PROFILE = {
    "dchip": (0.78, 1 / 8),
    "scheme81": (0.80, 1 / 8),
    "riscb": (0.90, 1 / 10),
}


def _mixed_chip(
    builder: LayoutBuilder,
    target_devices: int,
    rng: random.Random,
    name: str,
) -> None:
    """A repetitive bit-sliced datapath over irregular control logic.

    The datapath rows repeat and are stacked by doubling (designers drew
    register files and ALUs hierarchically), so HEXT's memo table eats
    them; the control logic fragments into distinct windows.  The blend
    sets where each chip lands in HEXT Table 5-1.
    """
    share, straps = _MIXED_PROFILE[name]
    regular_share = int(target_devices * share)
    height = _datapath_block(builder, builder.top, regular_share, origin=(0, 0))
    _irregular_block(
        builder,
        builder.top,
        target_devices - regular_share,
        rng,
        origin=(0, height + 4),
        strap_density=straps,
    )


def _datapath_block(
    builder: LayoutBuilder,
    parent: SymbolBuilder,
    target_devices: int,
    origin: tuple[int, int],
) -> int:
    """Identical chain-cell rows stacked by binary doubling.

    Returns the block height in lambda.  Rows are composed row -> pair
    -> quad ... so a hierarchical extractor handles the whole block in
    O(log rows) unique windows.
    """
    rows, cols = _grid_for(target_devices // 2)
    cell = build_chain_inverter_cell(builder)
    row = builder.new_symbol()
    for j in range(cols):
        row.call(cell, j * _CELL_W, 0)
    ox, oy = origin
    # Binary decomposition of the row count: doubled blocks per power.
    blocks: dict[int, SymbolBuilder] = {1: row}
    size = 1
    while size * 2 <= rows:
        pair = builder.new_symbol()
        pair.call(blocks[size], 0, 0)
        pair.call(blocks[size], 0, size * _ROW_PITCH)
        blocks[size * 2] = pair
        size *= 2
    y = 0
    remaining = rows
    power = size
    while remaining and power >= 1:
        if remaining >= power:
            parent.call(blocks[power], ox, oy + y)
            y += power * _ROW_PITCH
            remaining -= power
        power //= 2
    _label_rows(parent, rows, cols, origin)
    return rows * _ROW_PITCH


def _ram_cell(builder: LayoutBuilder) -> SymbolBuilder:
    """The mesh transistor cell dressed with a metal strap.

    8x8 lambda: vertical diffusion bitline, horizontal poly wordline
    (their crossing is the cell transistor), and a vertical metal column
    line, giving the box-per-device ratio of a real memory core.
    """
    cell = builder.new_symbol()
    cell.box("ND", 2, 0, 4, 8)
    cell.box("NP", 0, 3, 8, 5)
    cell.box("NM", 6, 0, 8, 8)
    return cell


def _label_rows(
    parent: SymbolBuilder,
    rows: int,
    cols: int,
    origin: tuple[int, int],
    index_base: int = 0,
) -> None:
    """Name the first row's nets.

    Only one row per block is labeled: per-row labels would make every
    otherwise-identical row window textually unique, and unlike real
    designers (who labeled a handful of top-level ports) that would deny
    the hierarchical extractor its window reuse for artificial reasons.
    """
    if rows < 1:
        return
    ox, oy = origin
    parent.label("VDD", ox + 5, oy + 24, "NM")
    parent.label("GND", ox + 5, oy + 2, "NM")
    parent.label(f"IN{index_base}", ox + 1, oy + 10, "NM")
    parent.label(f"OUT{index_base}", ox + cols * _CELL_W - 3, oy + 10, "NM")
