"""A functional one-transistor dynamic memory column.

The testram chip of Table 5-1 is a memory array; this generator draws a
*working* version of its storage principle: each bit is an access
transistor between a shared bitline and an isolated diffusion storage
node, gated by its own wordline.  With the simulator's charge-retention
model the column actually stores data, closing the loop from artwork to
verified memory behaviour.
"""

from __future__ import annotations

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder

#: Vertical pitch per bit, lambda.
BIT_PITCH = 10


def dram_column(bits: int, lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """``bits`` one-transistor cells hanging off one bitline.

    Nets: ``BL`` (the bitline), ``WL0..WLn-1`` (poly wordlines), and
    ``S0..Sn-1`` (the floating storage nodes).  Each access transistor
    is the crossing of a wordline with its bit's diffusion branch.
    """
    if bits < 1:
        raise ValueError("a memory column needs at least one bit")
    builder = LayoutBuilder(lambda_)
    top = builder.top
    height = bits * BIT_PITCH
    # Shared bitline.
    top.box("ND", 0, 0, 2, height)
    top.label("BL", 1, 1, "ND")
    for i in range(bits):
        base = i * BIT_PITCH + 2
        # Diffusion branch: bitline -> access channel -> storage node.
        top.box("ND", 2, base, 12, base + 2)
        # Wordline: vertical poly crossing the branch.
        top.box("NP", 5, base - 2, 7, base + 4)
        top.label(f"WL{i}", 6, base + 3, "NP")
        top.label(f"S{i}", 11, base + 1, "ND")
    return builder.done()
