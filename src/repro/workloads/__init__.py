"""Synthetic workload generators standing in for the paper's chips."""

from .arrays import (
    CELL_PITCH,
    inverter_rows,
    mirrored_array,
    transistor_array,
)
from .builder import LayoutBuilder, SymbolBuilder
from .cells import (
    CHAIN_CELL_SIZE,
    INVERTER_SIZE,
    build_chain_inverter_cell,
    build_inverter_cell,
    build_nand2_cell,
    build_transistor_cell,
    inverter,
    nand2,
    single_transistor,
)
from .chips import CHIP_SPECS, SPEC_BY_NAME, ChipSpec, build_chip, chip_suite
from .cmos import cmos_inverter, cmos_nand2, pseudo_nmos_inverter
from .memory import BIT_PITCH, dram_column
from .mesh import poly_diff_mesh
from .model import random_squares
from .pla import PlaSpec, pla

__all__ = [
    "CELL_PITCH",
    "CHAIN_CELL_SIZE",
    "CHIP_SPECS",
    "INVERTER_SIZE",
    "SPEC_BY_NAME",
    "ChipSpec",
    "LayoutBuilder",
    "SymbolBuilder",
    "build_chain_inverter_cell",
    "build_chip",
    "build_inverter_cell",
    "build_nand2_cell",
    "build_transistor_cell",
    "BIT_PITCH",
    "dram_column",
    "chip_suite",
    "cmos_inverter",
    "cmos_nand2",
    "inverter",
    "inverter_rows",
    "mirrored_array",
    "nand2",
    "PlaSpec",
    "pla",
    "poly_diff_mesh",
    "pseudo_nmos_inverter",
    "random_squares",
    "single_transistor",
    "transistor_array",
]
