"""The Bentley-Haken-Hon statistical layout model (section 4).

*"It assumes that in an N-rectangle design, the N rectangles are squares
with edge length 7.6 lambda, uniformly distributed over a region
[0.8 N^(1/2) lambda]^2 ... aligned to lambda boundaries."*  Under this
model the expected number of boxes intersecting the scanline and the
expected number of scanline stops are both O(N^(1/2)), which is what the
complexity benchmark verifies empirically.

The layout this produces is electrically meaningless (random squares
short and overlap freely); it exists to drive the engine's counters, not
to produce a sensible netlist.
"""

from __future__ import annotations

import random

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder

#: Rounded box edge from the model's 7.6 lambda.
BOX_EDGE = 8

#: Placement-region pitch per sqrt(box): the region side is
#: ``PITCH * sqrt(N)`` lambda.  Taken literally, the paper's
#: ``[0.8 N^(1/2) lambda]^2`` would stack ~90 boxes deep (58 lambda^2
#: of artwork per 0.64 lambda^2 of area), which saturates every layer
#: into one solid slab and destroys the O(sqrt N) statistics the model
#: is meant to produce; we read the 0.8 as applying in units of the box
#: pitch and use a ~65%-coverage region, which preserves both the
#: uniform-density assumption and every O(sqrt N) conclusion.
REGION_PITCH = 10

#: Layer mix for the random squares, roughly matching NMOS artwork.
LAYER_WEIGHTS = (("NM", 4), ("NP", 3), ("ND", 3))


def random_squares(
    n: int, seed: int = 0, lambda_: int = DEFAULT_LAMBDA
) -> Layout:
    """``n`` axis-aligned 8-lambda squares uniform over a sqrt(n) region."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    side = max(BOX_EDGE + 1, int(REGION_PITCH * n**0.5))
    builder = LayoutBuilder(lambda_)
    layers = [name for name, weight in LAYER_WEIGHTS for _ in range(weight)]
    top = builder.top
    for _ in range(n):
        x = rng.randint(0, side - 1)
        y = rng.randint(0, side - 1)
        layer = rng.choice(layers)
        top.box(layer, x, y, x + BOX_EDGE, y + BOX_EDGE)
    return builder.done()
